//! Write your own execution-driven workload against the public API: a
//! simple parallel histogram with locks, run under two protocols.
//!
//! Run: `cargo run --example custom_workload`

use dirtree::machine::{Machine, MachineConfig};
use dirtree::prelude::*;
use dirtree::workloads::layout::Alloc;
use dirtree::workloads::rendezvous::{AppFn, ThreadedWorkload};

fn histogram_workload(nprocs: u32) -> ThreadedWorkload {
    let mut alloc = Alloc::new();
    let input = alloc.array(256); // shared input vector
    let hist = alloc.array(16); // shared histogram (lock-protected bins)
    ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
        let program: AppFn = Box::new(move |env| {
            // Processor 0 publishes the input.
            if tid == 0 {
                let mut rng = SimRng::new(2026);
                for i in 0..input.len {
                    env.write(input.at(i), rng.gen_range(16));
                }
                for b in 0..hist.len {
                    env.write(hist.at(b), 0);
                }
            }
            env.barrier();
            // Each processor bins its slice of the input.
            let per = input.len / nprocs as u64;
            let lo = tid as u64 * per;
            let hi = if tid as u32 + 1 == nprocs {
                input.len
            } else {
                lo + per
            };
            for i in lo..hi {
                let v = env.read(input.at(i));
                let bin = v % hist.len;
                env.lock(bin as u32);
                let count = env.read(hist.at(bin));
                env.write(hist.at(bin), count + 1);
                env.unlock(bin as u32);
            }
            env.barrier();
        });
        program
    })
}

fn main() {
    for protocol in [
        ProtocolKind::FullMap,
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
    ] {
        let mut config = MachineConfig::paper_default(8);
        config.verify = true;
        let mut machine = Machine::new(config, protocol);
        let mut workload = histogram_workload(8);
        let out = machine.run(&mut workload);
        let total: u64 = (0..16).map(|b| workload.value_at(256 + b)).sum();
        println!(
            "{:<12} cycles={:<8} msgs={:<6} lock acquisitions={}  (histogram total = {total})",
            protocol.name(),
            out.cycles,
            out.stats.critical_messages(),
            out.stats.lock_acquires,
        );
        assert_eq!(total, 256, "every input element must be counted once");
    }
}
