//! Quickstart: simulate a small multiprocessor running the paper's
//! Dir₄Tree₂ protocol on a real workload and print what happened.
//!
//! Run: `cargo run --example quickstart`

use dirtree::prelude::*;

fn main() {
    // An 8-processor binary n-cube with the paper's Table 5 parameters
    // (16 KB fully-associative caches, 8-byte blocks, 5-cycle memory,
    // 8-bit wormhole links).
    let mut config = MachineConfig::paper_default(8);
    config.verify = true; // run the coherence witness

    // The paper's contribution: 4 directory pointers, binary trees.
    let protocol = ProtocolKind::DirTree {
        pointers: 4,
        arity: 2,
    };

    // Floyd-Warshall on a 16-vertex random graph: every processor reads
    // row k each iteration, so blocks are widely shared.
    let workload = WorkloadKind::Floyd {
        vertices: 16,
        seed: 42,
    };

    let outcome = run_workload(&config, protocol, workload);
    let s = &outcome.stats;

    println!("protocol          : {}", protocol.name());
    println!("simulated cycles  : {}", outcome.cycles);
    println!("memory references : {}", s.total_ops());
    println!(
        "cache misses      : {} ({:.2}% of references)",
        s.read_misses + s.write_misses,
        s.miss_rate() * 100.0
    );
    println!("protocol messages : {}", s.critical_messages());
    println!("invalidations     : {}", s.invalidations);
    println!("tree merges       : {}", s.tree_merges);
    println!("tree push-downs   : {}", s.tree_push_downs);
    println!(
        "read miss latency : {:.1} cycles mean, {} max",
        s.read_miss_latency.mean(),
        s.read_miss_latency.max()
    );
    println!(
        "network           : {} messages, {} bytes, mean latency {:.1} cycles",
        outcome.net.messages,
        outcome.net.bytes,
        outcome.net.latency.mean()
    );
    println!("\ncoherence verification passed (witness was enabled).");
}
