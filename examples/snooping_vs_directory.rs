//! The paper's §1 story in one example: snooping on a shared bus is
//! simple but stops scaling; directory protocols on a point-to-point
//! network keep going.
//!
//! Run: `cargo run --release --example snooping_vs_directory`

use dirtree::machine::MachineConfig;
use dirtree::net::NetworkConfig;
use dirtree::prelude::*;

fn main() {
    let w = WorkloadKind::Jacobi {
        grid: 24,
        sweeps: 4,
    };
    println!("Jacobi 24x24, snooping/bus vs Dir4Tree2/n-cube:");
    println!(
        "{:>6} {:>16} {:>16} {:>8}",
        "procs", "snoop-bus cyc", "tree-cube cyc", "ratio"
    );
    for nodes in [2u32, 4, 8, 16] {
        let mut bus = MachineConfig::paper_default(nodes);
        bus.net = NetworkConfig::bus();
        let snoop = run_workload(&bus, ProtocolKind::Snoop, w);
        let cube = MachineConfig::paper_default(nodes);
        let tree = run_workload(
            &cube,
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
            w,
        );
        println!(
            "{:>6} {:>16} {:>16} {:>8.2}",
            nodes,
            snoop.cycles,
            tree.cycles,
            snoop.cycles as f64 / tree.cycles as f64
        );
    }
    println!("\nThe bus serializes every transaction; the n-cube scales —");
    println!("hence directories (and hence this paper).");
}
