//! Compare all nine protocol configurations of the paper's figures on one
//! workload — a miniature Figure 10.
//!
//! Run: `cargo run --release --example protocol_comparison`

use dirtree::analysis::experiments::{figure_grid, render_grid};
use dirtree::machine::MachineConfig;
use dirtree::prelude::*;

fn main() {
    let workload = WorkloadKind::Floyd {
        vertices: 24,
        seed: 7,
    };
    let sizes = [8u32, 16];
    let protocols = ProtocolKind::figure_set();
    let cells = figure_grid(workload, &sizes, &protocols, MachineConfig::paper_default);
    println!(
        "{}",
        render_grid("Protocol comparison (full-map = 1.000)", &cells, &sizes)
    );
    println!("Lower is better. The paper's headline: Dir4Tree2 stays within a few");
    println!("percent of full-map while using far less directory memory, and the");
    println!("limited directories (L1/L2) degrade when sharing exceeds their pointers.");
}
