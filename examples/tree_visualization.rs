//! Visualize how Dir₄Tree₂ builds its forest (Figures 1 and 5): drive the
//! real protocol implementation read-by-read with a tiny in-process
//! context and dump the forest shape after every insertion.
//!
//! Run: `cargo run --example tree_visualization`

use dirtree::coherence::ctx::{ProtoCtx, ProtoEvent};
use dirtree::coherence::dir::dir_tree::DirTree;
use dirtree::coherence::msg::Msg;
use dirtree::coherence::protocol::{Protocol, ProtocolParams};
use dirtree::coherence::types::{Addr, LineState, NodeId, OpKind};
use dirtree::sim::FxHashMap;
use std::collections::VecDeque;

/// A minimal zero-latency context (like the crate-internal test mock).
#[derive(Default)]
struct MiniCtx {
    lines: FxHashMap<(NodeId, Addr), LineState>,
    queue: VecDeque<(NodeId, Msg)>,
    now: u64,
}

impl ProtoCtx for MiniCtx {
    fn now(&self) -> u64 {
        self.now
    }
    fn num_nodes(&self) -> u32 {
        32
    }
    fn home_of(&self, addr: Addr) -> NodeId {
        (addr % 32) as NodeId
    }
    fn send(&mut self, dst: NodeId, msg: Msg) {
        self.queue.push_back((dst, msg));
    }
    fn redeliver(&mut self, node: NodeId, msg: Msg, _delay: u64) {
        self.queue.push_back((node, msg));
    }
    fn occupy(&mut self, _node: NodeId, cycles: u64) {
        self.now += cycles;
    }
    fn line_state(&self, node: NodeId, addr: Addr) -> LineState {
        self.lines
            .get(&(node, addr))
            .copied()
            .unwrap_or(LineState::NotPresent)
    }
    fn set_line_state(&mut self, node: NodeId, addr: Addr, state: LineState) {
        self.lines.insert((node, addr), state);
    }
    fn complete(&mut self, _node: NodeId, _addr: Addr, _op: OpKind) {}
    fn note(&mut self, _event: ProtoEvent) {}
}

fn print_tree(p: &DirTree, root: NodeId, addr: Addr, depth: usize) {
    println!("{}node {root}", "    ".repeat(depth + 1));
    for &c in p.children_of(root, addr) {
        print_tree(p, c, addr, depth + 1);
    }
}

fn main() {
    const A: Addr = 0; // home = node 0
    let mut ctx = MiniCtx::default();
    let mut proto = DirTree::new(4, 2, ProtocolParams::default());

    for reader in 1..=15u32 {
        ctx.lines.insert((reader, A), LineState::RmIp);
        proto.start_miss(&mut ctx, reader, A, OpKind::Read);
        while let Some((node, msg)) = ctx.queue.pop_front() {
            ctx.now += 1;
            proto.handle(&mut ctx, node, msg);
        }
        println!("after read miss #{reader}:");
        for (i, ptr) in proto.forest(A).iter().enumerate() {
            match ptr {
                Some(p) => {
                    println!("  pointer {i} (level {}):", p.level);
                    print_tree(&proto, p.node, A, 0);
                }
                None => println!("  pointer {i}: null"),
            }
        }
        println!();
    }
    println!("Compare with the paper's Figure 1 (14 copies) and Figure 5 (the");
    println!("15th request adopting processors 11 and 13).");
}
