//! Timing-level integration tests: the latency *shapes* the paper's
//! argument rests on must emerge from the simulator — sequential vs
//! logarithmic invalidation, home-controller serialization, software-trap
//! occupancy, and network contention.

use dirtree::machine::{DriverOp, Machine, MachineConfig, ScriptDriver};
use dirtree::prelude::*;

/// Mean write-miss latency when one writer invalidates `sharers` copies.
fn write_latency(kind: ProtocolKind, sharers: u32) -> f64 {
    let nodes = 32;
    let mut active: Vec<(u32, Vec<DriverOp>)> = (1..=sharers)
        .map(|k| {
            (
                k,
                vec![DriverOp::Work(k as u64 * 50_000), DriverOp::Read(0)],
            )
        })
        .collect();
    active.push((
        nodes - 1,
        vec![DriverOp::Work(10_000_000), DriverOp::Write(0)],
    ));
    let mut m = Machine::new(MachineConfig::paper_default(nodes), kind);
    let mut d = ScriptDriver::sparse(nodes, active);
    let out = m.run(&mut d);
    out.stats.write_miss_latency.mean()
}

#[test]
fn full_map_invalidation_latency_grows_linearly() {
    let l4 = write_latency(ProtocolKind::FullMap, 4);
    let l16 = write_latency(ProtocolKind::FullMap, 16);
    // 4× the sharers should cost clearly more than 2× the latency for a
    // serialized scheme (acks converge on one controller).
    assert!(
        l16 > l4 * 1.8,
        "full-map latency should scale ~linearly: {l4} -> {l16}"
    );
}

#[test]
fn dir_tree_invalidation_latency_grows_sublinearly() {
    let kind = ProtocolKind::DirTree {
        pointers: 4,
        arity: 2,
    };
    let l4 = write_latency(kind, 4);
    let l16 = write_latency(kind, 16);
    assert!(
        l16 < l4 * 2.5,
        "tree fan-out should grow sublinearly: {l4} -> {l16}"
    );
}

#[test]
fn dir_tree_beats_full_map_at_high_sharing() {
    let fm = write_latency(ProtocolKind::FullMap, 24);
    let dt = write_latency(
        ProtocolKind::DirTree {
            pointers: 8,
            arity: 2,
        },
        24,
    );
    assert!(
        dt < fm,
        "Dir8Tree2 ({dt}) should beat full-map ({fm}) at 24 sharers"
    );
}

#[test]
fn sci_sequential_purge_is_slowest_shape() {
    let sci = write_latency(ProtocolKind::Sci, 16);
    let dt = write_latency(
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        16,
    );
    assert!(
        sci > dt,
        "SCI's one-at-a-time purge ({sci}) must exceed the tree fan-out ({dt})"
    );
}

#[test]
fn limitless_trap_occupancy_slows_overflowed_writes() {
    let ll = write_latency(ProtocolKind::LimitLess { pointers: 4 }, 12);
    let fm = write_latency(ProtocolKind::FullMap, 12);
    // 8 spilled pointers × 40-cycle traps must be visible.
    assert!(
        ll > fm + 100.0,
        "software handler delay missing: LimitLESS {ll} vs full-map {fm}"
    );
}

#[test]
fn network_contention_costs_cycles() {
    let run = |contention: bool| {
        let mut config = MachineConfig::paper_default(8);
        config.net.contention = contention;
        let mut m = Machine::new(config, ProtocolKind::FullMap);
        let scripts: Vec<Vec<DriverOp>> = (0..8u64)
            .map(|n| {
                (0..40u64)
                    .map(|i| DriverOp::Read((i * 8 + n) % 64))
                    .collect()
            })
            .collect();
        let mut d = ScriptDriver::new(scripts);
        m.run(&mut d).cycles
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with >= without,
        "contention cannot make runs faster: {with} vs {without}"
    );
}

#[test]
fn home_controller_serializes_independent_misses() {
    // 7 processors read 7 different blocks that all live at home 0: the
    // 5-cycle directory occupancy serializes them.
    let run = |same_home: bool| {
        let nodes = 8;
        let active: Vec<(u32, Vec<DriverOp>)> = (1..8u32)
            .map(|k| {
                let addr = if same_home {
                    k as u64 * 8 // all % 8 == 0 -> home 0
                } else {
                    k as u64 * 9 // spread across homes
                };
                (k, vec![DriverOp::Read(addr)])
            })
            .collect();
        let mut m = Machine::new(MachineConfig::paper_default(nodes), ProtocolKind::FullMap);
        let mut d = ScriptDriver::sparse(nodes, active);
        m.run(&mut d).stats.read_miss_latency.max()
    };
    let hot = run(true);
    let spread = run(false);
    assert!(
        hot > spread,
        "hot home must serialize: worst latency {hot} <= spread {spread}"
    );
}

#[test]
fn miss_latencies_are_physically_plausible() {
    for kind in [
        ProtocolKind::FullMap,
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
    ] {
        let lat = write_latency(kind, 8);
        // Floor: request + grant must at least cross the network and pay
        // memory latency twice; ceiling: sanity bound.
        assert!(
            (15.0..5_000.0).contains(&lat),
            "{} write latency {lat} implausible",
            kind.name()
        );
    }
}
