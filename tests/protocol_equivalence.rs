//! The applications compute *real results* through the simulated memory;
//! their data-flow is phase-structured, so the final architectural memory
//! must be bit-identical across every protocol — any divergence means a
//! protocol delivered stale data somewhere.

use dirtree::machine::{Machine, MachineConfig};
use dirtree::prelude::*;

fn protocols() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::FullMap,
        ProtocolKind::LimitedNB { pointers: 1 },
        ProtocolKind::LimitedB { pointers: 2 },
        ProtocolKind::LimitLess { pointers: 2 },
        ProtocolKind::SinglyList,
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
        ProtocolKind::SciTree,
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::DirTreeUpdate {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::Snoop,
    ]
}

fn final_memory(kind: ProtocolKind, workload: WorkloadKind, nodes: u32) -> Vec<u64> {
    let mut config = MachineConfig::paper_default(nodes);
    config.verify = true;
    let mut machine = Machine::new(config, kind);
    let mut driver = workload.build(nodes);
    machine.run(&mut driver);
    driver.values().to_vec()
}

#[test]
fn floyd_identical_across_protocols() {
    let w = WorkloadKind::Floyd {
        vertices: 16,
        seed: 11,
    };
    let reference = final_memory(ProtocolKind::FullMap, w, 4);
    for kind in protocols() {
        assert_eq!(
            final_memory(kind, w, 4),
            reference,
            "{} diverged on {}",
            kind.name(),
            w.name()
        );
    }
}

#[test]
fn fft_identical_across_protocols() {
    let w = WorkloadKind::Fft { points: 64 };
    let reference = final_memory(ProtocolKind::FullMap, w, 4);
    for kind in protocols() {
        assert_eq!(final_memory(kind, w, 4), reference, "{}", kind.name());
    }
}

#[test]
fn lu_identical_across_protocols() {
    let w = WorkloadKind::Lu { n: 12 };
    let reference = final_memory(ProtocolKind::FullMap, w, 4);
    for kind in protocols() {
        assert_eq!(final_memory(kind, w, 4), reference, "{}", kind.name());
    }
}

#[test]
fn mp3d_identical_across_protocols() {
    let w = WorkloadKind::Mp3d {
        particles: 60,
        steps: 3,
    };
    let reference = final_memory(ProtocolKind::FullMap, w, 4);
    for kind in protocols() {
        assert_eq!(final_memory(kind, w, 4), reference, "{}", kind.name());
    }
}

#[test]
fn jacobi_identical_across_protocols() {
    let w = WorkloadKind::Jacobi {
        grid: 10,
        sweeps: 3,
    };
    let reference = final_memory(ProtocolKind::FullMap, w, 4);
    for kind in protocols() {
        assert_eq!(final_memory(kind, w, 4), reference, "{}", kind.name());
    }
}

#[test]
fn blocked_lu_identical_across_protocols() {
    let w = WorkloadKind::LuBlocked { n: 12, block: 4 };
    let reference = final_memory(ProtocolKind::FullMap, w, 4);
    for kind in [
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::LimitedNB { pointers: 1 },
        ProtocolKind::Sci,
        ProtocolKind::Snoop,
    ] {
        assert_eq!(final_memory(kind, w, 4), reference, "{}", kind.name());
    }
}

#[test]
fn eight_processors_floyd_equivalence() {
    let w = WorkloadKind::Floyd {
        vertices: 12,
        seed: 23,
    };
    let reference = final_memory(ProtocolKind::FullMap, w, 8);
    for kind in [
        ProtocolKind::DirTree {
            pointers: 2,
            arity: 2,
        },
        ProtocolKind::SinglyList,
        ProtocolKind::SciTree,
    ] {
        assert_eq!(final_memory(kind, w, 8), reference, "{}", kind.name());
    }
}
