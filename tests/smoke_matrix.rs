//! Smoke matrix: every workload kind × a representative protocol set at
//! tiny scale, verification on. Breadth over depth — catches wiring
//! regressions anywhere in the stack.

use dirtree::machine::{Machine, MachineConfig};
use dirtree::prelude::*;

fn protocols() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::FullMap,
        ProtocolKind::LimitedNB { pointers: 2 },
        ProtocolKind::LimitedB { pointers: 2 },
        ProtocolKind::LimitLess { pointers: 2 },
        ProtocolKind::SinglyList,
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
        ProtocolKind::SciTree,
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::DirTree {
            pointers: 1,
            arity: 2,
        },
        ProtocolKind::DirTreeUpdate {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::Snoop,
    ]
}

fn workloads() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Mp3d {
            particles: 30,
            steps: 2,
        },
        WorkloadKind::Lu { n: 8 },
        WorkloadKind::Floyd {
            vertices: 8,
            seed: 5,
        },
        WorkloadKind::Fft { points: 32 },
        WorkloadKind::Jacobi { grid: 8, sweeps: 2 },
        WorkloadKind::Sharing {
            blocks: 4,
            rounds: 3,
        },
        WorkloadKind::Migratory {
            blocks: 4,
            rounds: 8,
        },
        WorkloadKind::Storm {
            words: 96,
            passes: 1,
        },
    ]
}

#[test]
fn every_workload_runs_on_every_protocol() {
    let mut config = MachineConfig::test_default(4);
    config.cache = dirtree_core::cache::CacheConfig {
        lines: 48,
        associativity: 48,
    };
    for w in workloads() {
        for kind in protocols() {
            let mut machine = Machine::new(config, kind);
            let mut driver = w.build(4);
            let out = machine.run(&mut driver);
            assert!(
                out.stats.total_ops() > 0,
                "{} on {} made no progress",
                w.name(),
                kind.name()
            );
        }
    }
}

#[test]
fn stats_are_internally_consistent() {
    for kind in protocols() {
        let out = dirtree::analysis::experiments::run_workload(
            &MachineConfig::test_default(4),
            kind,
            WorkloadKind::Floyd {
                vertices: 10,
                seed: 2,
            },
        );
        let s = &out.stats;
        assert_eq!(s.reads, s.read_hits + s.read_misses, "{}", kind.name());
        assert_eq!(s.writes, s.write_hits + s.write_misses, "{}", kind.name());
        assert!(s.fill_acks <= s.messages);
        assert_eq!(s.read_miss_latency.count(), s.read_misses);
        assert_eq!(s.write_miss_latency.count(), s.write_misses);
        assert_eq!(s.sharers_at_write.count(), s.writes);
        assert!(out.net.messages >= s.messages);
    }
}

#[test]
fn torus_topology_end_to_end() {
    // 4-ary 2-cube (16 nodes) instead of the hypercube.
    let mut config = MachineConfig::test_default(16);
    config.topology = dirtree::machine::TopologyKind::KaryNcube { radix: 4 };
    for kind in [
        ProtocolKind::FullMap,
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
    ] {
        let mut machine = Machine::new(config, kind);
        let mut driver = WorkloadKind::Floyd {
            vertices: 12,
            seed: 4,
        }
        .build(16);
        let out = machine.run(&mut driver);
        assert!(out.cycles > 0);
    }
}

#[test]
fn bus_fabric_end_to_end() {
    let mut config = MachineConfig::test_default(8);
    config.net = dirtree::net::NetworkConfig::bus();
    for kind in [ProtocolKind::Snoop, ProtocolKind::FullMap] {
        let mut machine = Machine::new(config, kind);
        let mut driver = WorkloadKind::Sharing {
            blocks: 4,
            rounds: 4,
        }
        .build(8);
        machine.run(&mut driver);
    }
}

#[test]
fn eight_processor_matrix_on_trees() {
    for w in [
        WorkloadKind::Floyd {
            vertices: 10,
            seed: 9,
        },
        WorkloadKind::Fft { points: 64 },
    ] {
        for pointers in [1u32, 2, 4, 8] {
            let mut machine = Machine::new(
                MachineConfig::test_default(8),
                ProtocolKind::DirTree { pointers, arity: 2 },
            );
            let mut driver = w.build(8);
            machine.run(&mut driver);
        }
    }
}
