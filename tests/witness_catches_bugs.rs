//! Mutation tests for the sequential-consistency witness: deliberately
//! sabotaged protocols must be *caught*. If these tests ever pass without
//! panicking, the verifier has lost its teeth and every other green test
//! means less.

use dirtree::coherence::ctx::{ProtoCtx, ProtoEvent};
use dirtree::coherence::msg::{Msg, MsgKind};
use dirtree::coherence::protocol::{build_protocol, Protocol, ProtocolKind, ProtocolParams};
use dirtree::coherence::types::{Addr, LineState, NodeId, OpKind};
use dirtree::machine::{DriverOp, Machine, MachineConfig, ScriptDriver};
use dirtree::sim::Cycle;

/// A context shim that forges acknowledgements: the first `Inv` a home
/// would send is swallowed and answered with a fake `InvAck`, leaving a
/// stale readable copy behind.
struct ForgeAck<'a> {
    inner: &'a mut dyn ProtoCtx,
    forged: &'a mut bool,
}

impl ProtoCtx for ForgeAck<'_> {
    fn now(&self) -> Cycle {
        self.inner.now()
    }
    fn num_nodes(&self) -> u32 {
        self.inner.num_nodes()
    }
    fn home_of(&self, addr: Addr) -> NodeId {
        self.inner.home_of(addr)
    }
    fn send(&mut self, dst: NodeId, msg: Msg) {
        if !*self.forged {
            if let MsgKind::Inv { from_dir: true, .. } = msg.kind {
                // Swallow the invalidation; forge the ack to its sender.
                *self.forged = true;
                let src = msg.src;
                self.inner.redeliver(
                    src,
                    Msg {
                        addr: msg.addr,
                        src: dst,
                        kind: MsgKind::InvAck { dir: true },
                    },
                    1,
                );
                return;
            }
        }
        self.inner.send(dst, msg);
    }
    fn broadcast(&mut self, msg: Msg) -> Cycle {
        self.inner.broadcast(msg)
    }
    fn redeliver(&mut self, node: NodeId, msg: Msg, delay: Cycle) {
        self.inner.redeliver(node, msg, delay);
    }
    fn occupy(&mut self, node: NodeId, cycles: Cycle) {
        self.inner.occupy(node, cycles);
    }
    fn line_state(&self, node: NodeId, addr: Addr) -> LineState {
        self.inner.line_state(node, addr)
    }
    fn set_line_state(&mut self, node: NodeId, addr: Addr, state: LineState) {
        self.inner.set_line_state(node, addr, state);
    }
    fn complete(&mut self, node: NodeId, addr: Addr, op: OpKind) {
        self.inner.complete(node, addr, op);
    }
    fn note(&mut self, event: ProtoEvent) {
        self.inner.note(event);
    }
}

/// Full-map with one forged invalidation acknowledgement.
struct Sabotaged {
    inner: Box<dyn Protocol>,
    forged: bool,
}

impl Sabotaged {
    fn new() -> Self {
        Self {
            inner: build_protocol(ProtocolKind::FullMap, ProtocolParams::default()),
            forged: false,
        }
    }
}

impl Protocol for Sabotaged {
    fn kind(&self) -> ProtocolKind {
        self.inner.kind()
    }
    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        let mut shim = ForgeAck {
            inner: ctx,
            forged: &mut self.forged,
        };
        self.inner.start_miss(&mut shim, node, addr, op);
    }
    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let mut shim = ForgeAck {
            inner: ctx,
            forged: &mut self.forged,
        };
        self.inner.handle(&mut shim, node, msg);
    }
    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        let mut shim = ForgeAck {
            inner: ctx,
            forged: &mut self.forged,
        };
        self.inner.evict(&mut shim, node, addr, state);
    }
    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        self.inner.dir_bits_per_mem_block(nodes)
    }
    fn cache_bits_per_line(&self, nodes: u32) -> u64 {
        self.inner.cache_bits_per_line(nodes)
    }
    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(Sabotaged {
            inner: self.inner.boxed_clone(),
            forged: self.forged,
        })
    }
    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        self.inner.fingerprint(h);
        h.write_u8(self.forged as u8);
    }
}

/// The same philosophy applied to the model checker: a protocol with one
/// injected bug ([`dirtree_check::MutantKind`]) must be caught by
/// exhaustive exploration, and the minimal counterexample must replay
/// deterministically to the *same* violation (proving `boxed_clone` /
/// `fingerprint` carry the complete state).
mod model_checker_catches_mutants {
    use dirtree::coherence::protocol::{ProtocolKind, ProtocolParams};
    use dirtree_check::{explore, replay, CheckConfig, CheckOutcome, MutantKind, Mutated};

    fn mutant_is_caught(proto: ProtocolKind, kind: MutantKind) {
        let cfg = CheckConfig::small(2, 1);
        let factory = Mutated::factory(proto, ProtocolParams::default(), kind);
        let outcome = explore(&cfg, &factory);
        let CheckOutcome::Violation(cx) = outcome else {
            panic!(
                "{kind:?} on {} survived exploration: {outcome:?}",
                proto.name()
            );
        };
        assert!(!cx.choices.is_empty(), "violation needs at least one step");
        let rep = replay(&cfg, &factory, &cx.choices, 256);
        assert_eq!(
            rep.violation.as_deref(),
            Some(cx.violation.as_str()),
            "replay diverged from the explorer's violation"
        );
        assert_eq!(rep.steps.len(), cx.choices.len());
    }

    #[test]
    fn dropped_invalidation_is_caught() {
        mutant_is_caught(ProtocolKind::FullMap, MutantKind::DropInv);
    }

    #[test]
    fn premature_ack_is_caught() {
        mutant_is_caught(ProtocolKind::FullMap, MutantKind::PrematureAck);
    }

    #[test]
    fn stale_tree_pointer_is_caught() {
        // i = 1 forces a push-down on the second reader, so the first
        // non-empty adopt list (the mutant's target) appears at P = 2.
        mutant_is_caught(
            ProtocolKind::DirTree {
                pointers: 1,
                arity: 2,
            },
            MutantKind::StaleTreePointer,
        );
    }

    #[test]
    fn stale_wave_scratch_is_caught() {
        // Models the hot-path wave scratch buffer (`dir_tree`'s
        // `wave_scratch`) being reused across two invalidation waves
        // without clearing: the second wave replays a first-wave target,
        // so the real sharer's copy survives the write. Two writes from
        // different nodes at P = 2 already expose it.
        mutant_is_caught(
            ProtocolKind::DirTree {
                pointers: 2,
                arity: 2,
            },
            MutantKind::StaleWaveScratch,
        );
    }
}

/// A sabotaged adaptive hybrid: the first time the home launches an
/// update wave for a block, the block's mode bit is forced back to
/// invalidate *without* the drain check ([`DirTreeAdaptive::force_mode`]).
/// The wave still completes — update traffic routes unambiguously — but
/// the write now retires under invalidate semantics while every sharer
/// kept a valid copy, which the SWMR witness must report.
struct FlipMidWave {
    inner: dirtree::coherence::adapt::DirTreeAdaptive,
    fired: bool,
}

impl FlipMidWave {
    fn new() -> Self {
        // Aggressive thresholds: one producer-consumer interval flips the
        // block to update mode, so the very first wave is the target.
        let params = ProtocolParams {
            adapt_flip_up: 1,
            adapt_flip_down: 0,
            ..ProtocolParams::default()
        };
        Self {
            inner: dirtree::coherence::adapt::DirTreeAdaptive::new(4, 2, params),
            fired: false,
        }
    }
}

/// Context shim that records the block of the first directory-launched
/// `Update` wave; everything passes through untouched.
struct SniffWave<'a> {
    inner: &'a mut dyn ProtoCtx,
    wave: &'a mut Option<Addr>,
}

impl ProtoCtx for SniffWave<'_> {
    fn now(&self) -> Cycle {
        self.inner.now()
    }
    fn num_nodes(&self) -> u32 {
        self.inner.num_nodes()
    }
    fn home_of(&self, addr: Addr) -> NodeId {
        self.inner.home_of(addr)
    }
    fn send(&mut self, dst: NodeId, msg: Msg) {
        if self.wave.is_none() {
            if let MsgKind::Update { from_dir: true, .. } = msg.kind {
                *self.wave = Some(msg.addr);
            }
        }
        self.inner.send(dst, msg);
    }
    fn broadcast(&mut self, msg: Msg) -> Cycle {
        self.inner.broadcast(msg)
    }
    fn redeliver(&mut self, node: NodeId, msg: Msg, delay: Cycle) {
        self.inner.redeliver(node, msg, delay);
    }
    fn occupy(&mut self, node: NodeId, cycles: Cycle) {
        self.inner.occupy(node, cycles);
    }
    fn line_state(&self, node: NodeId, addr: Addr) -> LineState {
        self.inner.line_state(node, addr)
    }
    fn set_line_state(&mut self, node: NodeId, addr: Addr, state: LineState) {
        self.inner.set_line_state(node, addr, state);
    }
    fn complete(&mut self, node: NodeId, addr: Addr, op: OpKind) {
        self.inner.complete(node, addr, op);
    }
    fn note(&mut self, event: ProtoEvent) {
        self.inner.note(event);
    }
}

impl Protocol for FlipMidWave {
    fn kind(&self) -> ProtocolKind {
        self.inner.kind()
    }
    fn is_update_for(&self, addr: Addr) -> bool {
        self.inner.is_update_for(addr)
    }
    fn wants_read_hits(&self) -> bool {
        self.inner.wants_read_hits()
    }
    fn note_read_hit(&mut self, node: NodeId, addr: Addr) {
        self.inner.note_read_hit(node, addr);
    }
    fn note_op_retired(&mut self, node: NodeId, addr: Addr, op: OpKind) {
        self.inner.note_op_retired(node, addr, op);
    }
    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        self.inner.start_miss(ctx, node, addr, op);
    }
    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let mut wave = None;
        let mut shim = SniffWave {
            inner: ctx,
            wave: &mut wave,
        };
        self.inner.handle(&mut shim, node, msg);
        if let Some(addr) = wave {
            if !self.fired {
                self.fired = true;
                self.inner.force_mode(addr, false);
            }
        }
    }
    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        self.inner.evict(ctx, node, addr, state);
    }
    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        self.inner.dir_bits_per_mem_block(nodes)
    }
    fn cache_bits_per_line(&self, nodes: u32) -> u64 {
        self.inner.cache_bits_per_line(nodes)
    }
    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(Self {
            inner: self.inner.clone(),
            fired: self.fired,
        })
    }
    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        self.inner.fingerprint(h);
        h.write_u8(self.fired as u8);
    }
}

#[test]
#[should_panic(expected = "coherence violation")]
fn mode_flip_dropping_an_update_wave_is_caught() {
    // Two consumers read, the producer writes: the detector flips the
    // block to update mode and launches an update wave; the mutant forces
    // the mode bit back mid-wave. The readers keep valid copies (update
    // semantics), but the write retires with `is_update_for` = false, so
    // the witness demands writer exclusivity and trips.
    let mut config = MachineConfig::test_default(4);
    config.verify = true;
    let mut machine = Machine::with_protocol(config, Box::new(FlipMidWave::new()));
    let mut driver = ScriptDriver::new(vec![
        vec![
            DriverOp::Barrier(0),
            DriverOp::Write(0),
            DriverOp::Barrier(1),
        ],
        vec![
            DriverOp::Read(0),
            DriverOp::Barrier(0),
            DriverOp::Barrier(1),
        ],
        vec![
            DriverOp::Read(0),
            DriverOp::Barrier(0),
            DriverOp::Barrier(1),
        ],
        vec![DriverOp::Barrier(0), DriverOp::Barrier(1)],
    ]);
    machine.run(&mut driver);
}

#[test]
#[should_panic(expected = "coherence violation")]
fn forged_invalidation_ack_is_caught() {
    // Reader shares; a forged ack lets the write complete while the
    // reader's copy survives → WriterNotExclusive, or the survivor's
    // stale read / final check trips.
    let mut config = MachineConfig::test_default(4);
    config.verify = true;
    let mut machine = Machine::with_protocol(config, Box::new(Sabotaged::new()));
    let mut driver = ScriptDriver::new(vec![
        vec![
            DriverOp::Read(0),
            DriverOp::Barrier(0),
            DriverOp::Barrier(1),
            DriverOp::Read(0),
        ],
        vec![
            DriverOp::Read(0),
            DriverOp::Barrier(0),
            DriverOp::Barrier(1),
            DriverOp::Read(0),
        ],
        vec![
            DriverOp::Barrier(0),
            DriverOp::Write(0),
            DriverOp::Barrier(1),
        ],
        vec![DriverOp::Barrier(0), DriverOp::Barrier(1)],
    ]);
    machine.run(&mut driver);
}
