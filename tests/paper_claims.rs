//! Paper-claims suite: the quantitative message-accounting claims the
//! paper makes for Dir_iTree_k (Section 3 / Table 1), pinned against the
//! observability layer's per-class metrics so they hold for *every* figure
//! shape — and each claim paired with a failing mutant, so the assertions
//! are known to have teeth.
//!
//! Claims covered:
//!
//! 1. a clean read miss costs exactly 2 messages (request + data reply);
//! 2. the home collects at most ⌈i/2⌉ acknowledgements per invalidation
//!    wave (root pairing halves the home's ack funnel);
//! 3. an invalidation wave traverses at most ⌈log_k P⌉ + 1 levels;
//! 4. replacements send *zero* messages to the home (silent subtree kill).
//!
//! Each claim is a `Result`-returning checker evaluated over the Dir_iTree₂
//! members of [`ProtocolKind::figure_set`]; the mutant companions re-run
//! the same checker against a deliberately broken configuration (an
//! instrumented protocol wrapper, an ablation parameter, or a linear-chain
//! protocol) and assert it reports a violation.

use dirtree::coherence::ctx::ProtoCtx;
use dirtree::coherence::msg::{Msg, MsgKind};
use dirtree::coherence::protocol::{build_protocol, Protocol, ProtocolKind, ProtocolParams};
use dirtree::coherence::types::{Addr, LineState, NodeId, OpKind};
use dirtree::machine::{DriverOp, Machine, MachineConfig, MsgClass, RunOutcome, ScriptDriver};

/// The shared block under test. With a power-of-two machine its home is
/// node `ADDR % nodes` = 3, so readers/writers below avoid node 3: every
/// protocol message of the claims actually crosses the network.
const ADDR: Addr = 3;

/// The Dir_iTree₂ members of the figure set, with their pointer counts.
fn dir_tree_shapes() -> Vec<(u32, ProtocolKind)> {
    ProtocolKind::figure_set()
        .into_iter()
        .filter_map(|k| match k {
            ProtocolKind::DirTree { pointers, .. } => Some((pointers, k)),
            _ => None,
        })
        .collect()
}

fn run_machine(
    nodes: u32,
    protocol: Box<dyn Protocol>,
    params: ProtocolParams,
    scripts: Vec<(NodeId, Vec<DriverOp>)>,
) -> (RunOutcome, Machine) {
    let mut config = MachineConfig::test_default(nodes);
    config.protocol = params;
    let mut machine = Machine::with_protocol(config, protocol);
    let mut driver = ScriptDriver::sparse(nodes, scripts);
    let out = machine.run(&mut driver);
    (out, machine)
}

// ---------------------------------------------------------------------------
// Claim 1: a clean read miss is exactly two messages.
// ---------------------------------------------------------------------------

/// Run one remote read miss on an idle block and check its message bill:
/// exactly one request and one data reply on the critical path (the
/// off-critical-path `FillAck` that retires the directory's transaction
/// gate is excluded, as in the paper's Table 1 accounting).
fn check_clean_read_miss(
    protocol: Box<dyn Protocol>,
    params: ProtocolParams,
) -> Result<(), String> {
    let (_, machine) = run_machine(8, protocol, params, vec![(5, vec![DriverOp::Read(ADDR)])]);
    let block = machine.metrics().block_counts(ADDR);
    let billed: u64 = MsgClass::ALL
        .into_iter()
        .filter(|c| *c != MsgClass::FillAck)
        .map(|c| block[c.index()].count)
        .sum();
    let read_reqs = block[MsgClass::ReadReq.index()].count;
    let replies = block[MsgClass::DataReply.index()].count;
    if billed != 2 || read_reqs != 1 || replies != 1 {
        return Err(format!(
            "clean read miss cost {billed} messages ({read_reqs} requests, {replies} replies), \
             expected exactly 2 (1 + 1)"
        ));
    }
    Ok(())
}

#[test]
fn claim_clean_read_miss_is_two_messages_for_every_dir_tree_shape() {
    for (i, kind) in dir_tree_shapes() {
        let params = ProtocolParams::default();
        check_clean_read_miss(build_protocol(kind, params), params)
            .unwrap_or_else(|e| panic!("Dir{i}Tree2: {e}"));
    }
}

/// Mutant companion: a protocol that leaks one extra home-bound message on
/// the first read miss must trip the claim-1 checker.
struct ChattyMiss {
    inner: Box<dyn Protocol>,
    tripped: bool,
}

impl Protocol for ChattyMiss {
    fn kind(&self) -> ProtocolKind {
        self.inner.kind()
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        if !self.tripped && op == OpKind::Read {
            // One spurious replacement notification rides along with the
            // miss; the home just clears a (non-existent) pointer, so the
            // run stays correct — only the message bill changes.
            self.tripped = true;
            let home = ctx.home_of(addr);
            ctx.send(
                home,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::ReplNotify,
                },
            );
        }
        self.inner.start_miss(ctx, node, addr, op);
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        self.inner.handle(ctx, node, msg);
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        self.inner.evict(ctx, node, addr, state);
    }

    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        self.inner.dir_bits_per_mem_block(nodes)
    }

    fn cache_bits_per_line(&self, nodes: u32) -> u64 {
        self.inner.cache_bits_per_line(nodes)
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(ChattyMiss {
            inner: self.inner.boxed_clone(),
            tripped: self.tripped,
        })
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        self.inner.fingerprint(h);
        h.write_u8(self.tripped as u8);
    }
}

#[test]
fn claim_clean_read_miss_mutant_extra_home_message_is_caught() {
    let params = ProtocolParams::default();
    let inner = build_protocol(
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        params,
    );
    let mutant = Box::new(ChattyMiss {
        inner,
        tripped: false,
    });
    let err = check_clean_read_miss(mutant, params)
        .expect_err("a 3-message read miss must fail the claim");
    assert!(err.contains("cost 3 messages"), "unexpected report: {err}");
}

// ---------------------------------------------------------------------------
// Claims 2 + 3: wave geometry (home-ack funnel, logarithmic depth).
// ---------------------------------------------------------------------------

/// Twelve staggered readers populate the block's sharing forest, then a
/// non-sharer writes it, driving one full invalidation wave. Returns the
/// run's metrics for the wave-geometry claims.
fn run_invalidation_wave(protocol: Box<dyn Protocol>, params: ProtocolParams) -> RunOutcome {
    let nodes = 16;
    let readers: [NodeId; 12] = [0, 1, 2, 4, 5, 6, 7, 8, 9, 10, 11, 12];
    let mut scripts: Vec<(NodeId, Vec<DriverOp>)> = readers
        .iter()
        .enumerate()
        .map(|(idx, &n)| {
            // Stagger the reads so the forest is built deterministically,
            // one adoption at a time.
            (
                n,
                vec![DriverOp::Work(idx as u64 * 20_000), DriverOp::Read(ADDR)],
            )
        })
        .collect();
    scripts.push((15, vec![DriverOp::Work(1_000_000), DriverOp::Write(ADDR)]));
    run_machine(nodes, protocol, params, scripts).0
}

/// Claim 2: with root pairing, at most ⌈i/2⌉ of the wave's acknowledgements
/// funnel into the home (each even root answers for its odd pair).
fn check_home_ack_bound(
    protocol: Box<dyn Protocol>,
    params: ProtocolParams,
    pointers: u32,
) -> Result<(), String> {
    let out = run_invalidation_wave(protocol, params);
    let acks = &out.metrics.inv_wave_acks;
    if acks.count() == 0 {
        return Err("scenario drove no invalidation wave".into());
    }
    let bound = (pointers as u64).div_ceil(2);
    if acks.max() > bound {
        return Err(format!(
            "home collected {} acks for one wave, bound is ceil({pointers}/2) = {bound}",
            acks.max()
        ));
    }
    Ok(())
}

#[test]
fn claim_home_acks_bounded_by_half_the_pointers() {
    for (i, kind) in dir_tree_shapes() {
        let params = ProtocolParams::default();
        check_home_ack_bound(build_protocol(kind, params), params, i)
            .unwrap_or_else(|e| panic!("Dir{i}Tree2: {e}"));
    }
}

#[test]
fn claim_home_acks_mutant_unpaired_roots_is_caught() {
    // The E13 ablation disables root pairing: every root acknowledges the
    // home directly, so the funnel doubles to i and the bound must trip
    // for every multi-root shape. (i = 1 has nothing to pair; the bound
    // degenerates and legitimately still holds there.)
    for i in [2u32, 4, 8] {
        let params = ProtocolParams {
            dir_tree_pairing: false,
            ..ProtocolParams::default()
        };
        let kind = ProtocolKind::DirTree {
            pointers: i,
            arity: 2,
        };
        let err = check_home_ack_bound(build_protocol(kind, params), params, i)
            .expect_err("unpaired roots must overflow the home-ack bound");
        assert!(err.contains("bound is ceil"), "unexpected report: {err}");
    }
}

/// Smallest `d` with `arity^d >= nodes` (⌈log_k P⌉).
fn ceil_log(arity: u64, nodes: u64) -> u64 {
    let mut d = 0;
    let mut reach = 1u64;
    while reach < nodes {
        reach *= arity;
        d += 1;
    }
    d
}

/// Claim 3: the wave's deepest delivery is at most ⌈log_k P⌉ + 1 levels
/// below the writer (one home fan-out hop plus balanced k-ary trees).
fn check_wave_depth_bound(
    protocol: Box<dyn Protocol>,
    params: ProtocolParams,
    arity: u32,
) -> Result<(), String> {
    let nodes = 16u64;
    let out = run_invalidation_wave(protocol, params);
    let depth = &out.metrics.inv_wave_depth;
    if depth.count() == 0 {
        return Err("scenario drove no invalidation wave".into());
    }
    let bound = ceil_log(arity as u64, nodes) + 1;
    if depth.max() > bound {
        return Err(format!(
            "wave reached level {} of the sharing structure, bound is \
             ceil(log_{arity} {nodes}) + 1 = {bound}",
            depth.max()
        ));
    }
    Ok(())
}

#[test]
fn claim_wave_depth_bounded_by_tree_height() {
    // Logarithmic height needs the merge step (case 3 of Figure 6), which
    // requires two equal-height roots — so it holds for i ≥ 2. Dir₁Tree₂
    // only ever push-down-chains (case 4), degenerating to the linked
    // list; that degeneration is pinned separately below.
    for (i, kind) in dir_tree_shapes() {
        let params = ProtocolParams::default();
        let checked = check_wave_depth_bound(build_protocol(kind, params), params, 2);
        if i >= 2 {
            checked.unwrap_or_else(|e| panic!("Dir{i}Tree2: {e}"));
        } else {
            let err = checked.expect_err("Dir1Tree2 must degenerate to a chain");
            assert!(err.contains("reached level"), "unexpected report: {err}");
        }
    }
}

#[test]
fn claim_wave_depth_mutant_linear_chain_is_caught() {
    // The singly-linked list is the degenerate Dir₁Tree₁: its write purge
    // walks all 12 sharers in series, so the wave is ~12 levels deep —
    // far past the binary-tree bound of 5 the claim holds Dir_iTree₂ to.
    let params = ProtocolParams::default();
    let err = check_wave_depth_bound(build_protocol(ProtocolKind::SinglyList, params), params, 2)
        .expect_err("a linear purge chain must overflow the depth bound");
    assert!(err.contains("reached level"), "unexpected report: {err}");
}

// ---------------------------------------------------------------------------
// Claim 4: replacements are silent towards the home.
// ---------------------------------------------------------------------------

/// Twelve readers share the block, then each walks 64 private blocks —
/// one full cache of fillers — so the shared line is evicted from every
/// cache. With the paper's silent-replacement policy the only home-bound
/// traffic on the block is read-miss traffic: `Replace_INV` kills subtrees
/// peer-to-peer and nothing else is sent at all.
fn check_silent_replacement(
    protocol: Box<dyn Protocol>,
    params: ProtocolParams,
) -> Result<(), String> {
    let nodes = 16;
    let readers: [NodeId; 12] = [0, 1, 2, 4, 5, 6, 7, 8, 9, 10, 11, 12];
    let cache_lines = MachineConfig::test_default(nodes).cache.lines as u64;
    let scripts: Vec<(NodeId, Vec<DriverOp>)> = readers
        .iter()
        .enumerate()
        .map(|(idx, &n)| {
            let mut ops = vec![
                DriverOp::Work(idx as u64 * 20_000),
                DriverOp::Read(ADDR),
                // Evictions start well after every reader holds the block,
                // staggered in the same order the forest was built.
                DriverOp::Work(1_000_000 + idx as u64 * 20_000),
            ];
            // Private filler blocks (disjoint per node, disjoint from ADDR)
            // that sweep the shared line out of this node's cache.
            let base = 1024 + n as u64 * cache_lines;
            ops.extend((0..cache_lines).map(|j| DriverOp::Read(base + j)));
            (n, ops)
        })
        .collect();
    let (_, machine) = run_machine(nodes, protocol, params, scripts);
    let block = machine.metrics().block_counts(ADDR);
    let repl = block[MsgClass::ReplaceInv.index()];
    if repl.count == 0 {
        return Err("scenario exercised no replacements".into());
    }
    if repl.to_dir != 0 {
        return Err(format!(
            "replacements sent {} home-bound messages (expected none)",
            repl.to_dir
        ));
    }
    if block[MsgClass::Writeback.index()].count != 0 {
        return Err("clean replacements produced writebacks".into());
    }
    for class in MsgClass::ALL {
        let c = block[class.index()];
        if c.to_dir != 0 && !matches!(class, MsgClass::ReadReq | MsgClass::FillAck) {
            return Err(format!(
                "non-read-miss class {:?} sent {} messages to the home",
                class, c.to_dir
            ));
        }
    }
    Ok(())
}

#[test]
fn claim_replacements_send_nothing_to_the_home() {
    for (i, kind) in dir_tree_shapes() {
        let params = ProtocolParams::default();
        check_silent_replacement(build_protocol(kind, params), params)
            .unwrap_or_else(|e| panic!("Dir{i}Tree2: {e}"));
    }
}

#[test]
fn claim_replacements_mutant_home_notification_is_caught() {
    // The E12 ablation notifies the home on every eviction; those
    // notifications are home-bound replacement traffic and must trip the
    // claim for every shape.
    for i in [1u32, 4] {
        let params = ProtocolParams {
            dir_tree_silent_replace: false,
            ..ProtocolParams::default()
        };
        let kind = ProtocolKind::DirTree {
            pointers: i,
            arity: 2,
        };
        let err = check_silent_replacement(build_protocol(kind, params), params)
            .expect_err("home notifications must fail the silent-replacement claim");
        assert!(err.contains("home-bound"), "unexpected report: {err}");
    }
}
