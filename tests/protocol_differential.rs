//! Cross-protocol differential test on a *seeded random* operation trace.
//!
//! The application tests in `protocol_equivalence.rs` compare real
//! algorithms whose access patterns are highly structured. This suite
//! drives the nine figure-set protocols with a randomized (but seeded and
//! phase-structured) trace instead: per phase, a deterministic owner
//! writes each block, a barrier orders the phase, then every processor
//! reads a private random subset of blocks and folds the loaded values
//! into a running checksum. The checksums are the *per-processor read
//! values* — any protocol that ever serves one stale load diverges.
//!
//! Dir_nNB (full-map) is the oracle: its final memory image, including
//! every processor's checksum word, must be matched bit-for-bit by all
//! eight other members of [`ProtocolKind::figure_set`].

use dirtree::machine::{Machine, MachineConfig};
use dirtree::prelude::*;
use dirtree::workloads::rendezvous::AppFn;
use dirtree::workloads::ThreadedWorkload;

const NODES: u32 = 8;
const BLOCKS: u64 = 24;
const PHASES: u64 = 4;
const READS_PER_PHASE: u64 = 12;

/// Which processor writes `block` during `phase` (deterministic, spread
/// across all processors so ownership migrates between phases).
fn owner(phase: u64, block: u64) -> u64 {
    (block.wrapping_mul(7).wrapping_add(phase.wrapping_mul(13))) % NODES as u64
}

/// The value the owner publishes (protocol-independent by construction).
fn published(phase: u64, block: u64) -> u64 {
    phase * 1_000_003 + block * 97 + owner(phase, block)
}

/// Build the per-thread program for one seeded trace.
fn program(seed: u64) -> impl FnMut(usize) -> AppFn {
    move |tid: usize| -> AppFn {
        Box::new(move |env| {
            // Each thread draws its read pattern from a private stream, so
            // the trace is random but identical across protocols.
            let mut rng = SimRng::new(seed ^ (tid as u64).wrapping_mul(0x9e37_79b9));
            let mut acc = 0u64;
            for phase in 0..PHASES {
                for block in 0..BLOCKS {
                    if owner(phase, block) == tid as u64 {
                        env.write(block, published(phase, block));
                    }
                }
                env.barrier();
                for _ in 0..READS_PER_PHASE {
                    let block = rng.gen_range(BLOCKS);
                    acc = acc.wrapping_mul(31).wrapping_add(env.read(block));
                }
                env.barrier();
            }
            env.write(BLOCKS + tid as u64, acc);
        })
    }
}

/// Final architectural memory (blocks + per-processor checksum words)
/// after running the seeded trace under `kind`, with the witness on.
fn final_memory(kind: ProtocolKind, seed: u64) -> Vec<u64> {
    let words = BLOCKS + NODES as u64;
    let mut workload = ThreadedWorkload::new(NODES, words, program(seed));
    let mut machine = Machine::new(MachineConfig::test_default(NODES), kind);
    machine.run(&mut workload);
    workload.values().to_vec()
}

#[test]
fn figure_set_protocols_agree_on_a_seeded_random_trace() {
    for seed in [1996, 0xdead_beef] {
        let oracle = final_memory(ProtocolKind::FullMap, seed);
        // Sanity on the oracle itself: the last phase's published values
        // are in memory and every processor produced a checksum.
        for block in 0..BLOCKS {
            assert_eq!(oracle[block as usize], published(PHASES - 1, block));
        }
        for tid in 0..NODES as u64 {
            assert_ne!(oracle[(BLOCKS + tid) as usize], 0, "tid {tid} read nothing");
        }
        for kind in ProtocolKind::figure_set() {
            assert_eq!(
                final_memory(kind, seed),
                oracle,
                "{} diverged from the full-map oracle (seed {seed})",
                kind.name()
            );
        }
    }
}
