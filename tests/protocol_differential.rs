//! Cross-protocol differential test on a *seeded random* operation trace.
//!
//! The application tests in `protocol_equivalence.rs` compare real
//! algorithms whose access patterns are highly structured. This suite
//! drives the protocols with a randomized (but seeded and phase-structured)
//! trace instead — see [`dirtree::workloads::phases::PhasedTrace`] for the
//! generator: per phase, a deterministic owner writes each block, a barrier
//! orders the phase, then every processor reads a private random subset of
//! blocks and folds the loaded values into a running checksum. The
//! checksums are the *per-processor read values* — any protocol that ever
//! serves one stale load diverges.
//!
//! Dir_nNB (full-map) is the oracle: its final memory image, including
//! every processor's checksum word, must be matched bit-for-bit by all
//! eight other members of [`ProtocolKind::figure_set`], by the update-write
//! variant, and by the adaptive hybrid (whose per-block mode flips must be
//! architecturally invisible).

use dirtree::machine::{Machine, MachineConfig};
use dirtree::prelude::*;
use dirtree::workloads::phases::PhasedTrace;

fn trace(seed: u64) -> PhasedTrace {
    PhasedTrace {
        nodes: 8,
        blocks: 24,
        phases: 4,
        reads_per_phase: 12,
        seed,
    }
}

/// Final architectural memory (blocks + per-processor checksum words)
/// after running the seeded trace under `kind`, with the witness on.
fn final_memory(kind: ProtocolKind, seed: u64) -> Vec<u64> {
    let t = trace(seed);
    let mut workload = t.build();
    let mut machine = Machine::new(MachineConfig::test_default(t.nodes), kind);
    machine.run(&mut workload);
    workload.values().to_vec()
}

/// The figure set plus the write-policy variants this repo adds: the
/// update-write tree and the adaptive hybrid.
fn compared_set() -> Vec<ProtocolKind> {
    let mut kinds = ProtocolKind::figure_set();
    kinds.push(ProtocolKind::DirTreeUpdate {
        pointers: 4,
        arity: 2,
    });
    kinds.push(ProtocolKind::DirTreeAdaptive {
        pointers: 4,
        arity: 2,
    });
    kinds
}

#[test]
fn all_protocols_agree_on_a_seeded_random_trace() {
    for seed in [1996, 0xdead_beef] {
        let t = trace(seed);
        let oracle = final_memory(ProtocolKind::FullMap, seed);
        // Sanity on the oracle itself: the last phase's published values
        // are in memory and every processor produced a checksum.
        for block in 0..t.blocks {
            assert_eq!(oracle[block as usize], t.published(t.phases - 1, block));
        }
        for tid in 0..t.nodes as u64 {
            assert_ne!(
                oracle[t.checksum_addr(tid) as usize],
                0,
                "tid {tid} read nothing"
            );
        }
        for kind in compared_set() {
            assert_eq!(
                final_memory(kind, seed),
                oracle,
                "{} diverged from the full-map oracle (seed {seed})",
                kind.name()
            );
        }
    }
}
