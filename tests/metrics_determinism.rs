//! The observability layer must not cost the sweep runner its PR 1
//! contract: records — now carrying the full per-class metrics block —
//! stay byte-identical at any `--jobs` level, and a warm cache round-trips
//! them (metrics included) without recomputing a single simulation.

use dirtree_bench::runner::{Runner, SweepOptions};
use dirtree_bench::sweep::{RunRecord, SweepSpec};
use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::{MachineConfig, MsgClass};
use dirtree_workloads::WorkloadKind;
use std::fs;
use std::path::{Path, PathBuf};

fn spec() -> SweepSpec {
    SweepSpec::grid(
        "metrics-determinism",
        WorkloadKind::Floyd {
            vertices: 10,
            seed: 7,
        },
        &[2, 4],
        &[
            ProtocolKind::FullMap,
            ProtocolKind::DirTree {
                pointers: 2,
                arity: 2,
            },
        ],
        MachineConfig::test_default,
    )
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dirtree-metrics-determinism-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn runner_in(dir: &Path, jobs: usize) -> Runner {
    Runner::new(SweepOptions {
        jobs,
        out_dir: dir.to_path_buf(),
        ..SweepOptions::default()
    })
}

#[test]
fn metrics_json_is_byte_identical_across_jobs_and_survives_the_cache() {
    let spec = spec();
    let (d1, d8) = (scratch_dir("j1"), scratch_dir("j8"));

    let serial = runner_in(&d1, 1).run(&spec);
    let parallel = runner_in(&d8, 8).run(&spec);
    assert_eq!(serial.executed, spec.configs.len());
    assert_eq!(parallel.executed, spec.configs.len());

    let jsonl = |d: &Path| fs::read_to_string(d.join("metrics-determinism.jsonl")).unwrap();
    let (f1, f8) = (jsonl(&d1), jsonl(&d8));
    assert_eq!(f1, f8, "--jobs 1 and --jobs 8 disagree byte-for-byte");

    // Every line carries a populated metrics block whose class totals
    // reconcile with the machine's own message counter.
    for line in f1.lines() {
        assert!(line.contains("\"metrics\":{"), "metrics block missing");
        let record = RunRecord::from_json(line).unwrap();
        assert!(record.metrics.total_messages() > 0, "empty metrics block");
        assert_eq!(record.metrics.total_messages(), record.messages);
        assert!(record.metrics.class(MsgClass::ReadReq).count > 0);
    }

    // Warm rerun: all hits, zero simulations, and the reparsed records —
    // metrics included — reproduce the identical file.
    let warm = runner_in(&d1, 4).run(&spec);
    assert_eq!(warm.executed, 0, "warm cache recomputed a simulation");
    assert_eq!(warm.cached, spec.configs.len());
    assert_eq!(jsonl(&d1), f8, "cache round-trip changed the records");

    let _ = fs::remove_dir_all(&d1);
    let _ = fs::remove_dir_all(&d8);
}
