//! Cross-crate integration: every protocol must keep the machine coherent
//! (single-writer, no stale reads, no stale survivors) under contended,
//! eviction-heavy workloads, with the sequential-consistency witness
//! enabled. A violation or deadlock panics inside `Machine::run`.

use dirtree::machine::{Driver, DriverOp, Machine, MachineConfig};
use dirtree::prelude::*;
use dirtree::sim::SimRng;
use dirtree_core::cache::CacheConfig;
use dirtree_core::types::NodeId;

fn all_protocols() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::FullMap,
        ProtocolKind::LimitedNB { pointers: 1 },
        ProtocolKind::LimitedNB { pointers: 4 },
        ProtocolKind::LimitedB { pointers: 2 },
        ProtocolKind::LimitLess { pointers: 4 },
        ProtocolKind::SinglyList,
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
        ProtocolKind::SciTree,
        ProtocolKind::DirTree {
            pointers: 1,
            arity: 2,
        },
        ProtocolKind::DirTree {
            pointers: 2,
            arity: 2,
        },
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::DirTree {
            pointers: 8,
            arity: 2,
        },
        ProtocolKind::DirTreeUpdate {
            pointers: 4,
            arity: 2,
        },
    ]
}

/// A driver that replays a deterministic random access mix.
struct RandomMix {
    ops: Vec<std::vec::IntoIter<DriverOp>>,
}

impl RandomMix {
    fn new(nodes: u32, seed: u64, ops_per_node: usize, addr_space: u64, write_pct: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let ops = (0..nodes)
            .map(|n| {
                let mut rng = rng.fork(n as u64);
                let mut v = Vec::with_capacity(ops_per_node + 2);
                for i in 0..ops_per_node {
                    let addr = rng.gen_range(addr_space);
                    if rng.gen_range(100) < write_pct {
                        v.push(DriverOp::Write(addr));
                    } else {
                        v.push(DriverOp::Read(addr));
                    }
                    if i % 50 == 49 {
                        v.push(DriverOp::Barrier(0));
                    }
                }
                // Everyone must reach the same number of barriers.
                let barriers = ops_per_node / 50;
                let mine = v
                    .iter()
                    .filter(|o| matches!(o, DriverOp::Barrier(_)))
                    .count();
                for _ in mine..barriers {
                    v.push(DriverOp::Barrier(0));
                }
                v.into_iter()
            })
            .collect();
        Self { ops }
    }
}

impl Driver for RandomMix {
    fn next_op(&mut self, node: NodeId, _now: u64) -> DriverOp {
        self.ops[node as usize].next().unwrap_or(DriverOp::Done)
    }
}

fn config_with_cache(nodes: u32, lines: usize) -> MachineConfig {
    let mut c = MachineConfig::paper_default(nodes);
    c.verify = true;
    c.cache = CacheConfig {
        lines,
        associativity: lines,
    };
    c
}

#[test]
fn random_mix_no_evictions() {
    // Address space fits in the cache: pure sharing behaviour.
    for kind in all_protocols() {
        for seed in [1u64, 2, 3] {
            let mut m = Machine::new(config_with_cache(8, 256), kind);
            let mut d = RandomMix::new(8, seed, 150, 64, 20);
            let out = m.run(&mut d);
            assert!(out.stats.total_ops() > 0, "{kind:?} seed {seed}");
        }
    }
}

#[test]
fn random_mix_with_heavy_evictions() {
    // Address space 4× the cache: constant replacement traffic, which is
    // where the silent-replacement / roll-out / repair paths live.
    for kind in all_protocols() {
        let mut m = Machine::new(config_with_cache(4, 32), kind);
        let mut d = RandomMix::new(4, 99, 300, 128, 25);
        let out = m.run(&mut d);
        assert!(
            out.stats.evictions > 0,
            "{kind:?}: eviction pressure failed to materialize"
        );
    }
}

#[test]
fn write_heavy_contention() {
    // 60% writes to a tiny address space: ownership migrates constantly.
    for kind in all_protocols() {
        let mut m = Machine::new(config_with_cache(8, 128), kind);
        let mut d = RandomMix::new(8, 7, 120, 8, 60);
        m.run(&mut d);
    }
}

#[test]
fn single_block_stress() {
    // All processors hammer one block (reads + upgrades): maximal
    // transaction queueing at one home.
    for kind in all_protocols() {
        let scripts: Vec<Vec<DriverOp>> = (0..8u64)
            .map(|n| {
                let mut v = Vec::new();
                for i in 0..40u64 {
                    v.push(DriverOp::Read(0));
                    if (i + n) % 3 == 0 {
                        v.push(DriverOp::Write(0));
                    }
                }
                v
            })
            .collect();
        let mut m = Machine::new(config_with_cache(8, 64), kind);
        let mut d = dirtree::machine::ScriptDriver::new(scripts);
        m.run(&mut d);
    }
}

#[test]
fn larger_machine_smoke() {
    // 32 processors, the paper's largest configuration.
    for kind in [
        ProtocolKind::FullMap,
        ProtocolKind::LimitedNB { pointers: 4 },
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
    ] {
        let mut m = Machine::new(config_with_cache(32, 128), kind);
        let mut d = RandomMix::new(32, 5, 80, 96, 25);
        let out = m.run(&mut d);
        assert!(out.cycles > 0);
    }
}
