//! Deterministic replays of inputs that property testing has caught in
//! the past (from the checked-in `.proptest-regressions` files). The
//! vendored proptest shim does not read those files, so the cases are
//! pinned here as ordinary tests.

use dirtree::machine::{DriverOp, Machine, MachineConfig, ScriptDriver};
use dirtree::prelude::*;
use dirtree_core::cache::CacheConfig;

use DriverOp::{Read, Work, Write};

/// The shrunken counterexample recorded in tests/proptests.proptest-regressions.
fn recorded_scripts() -> Vec<Vec<DriverOp>> {
    vec![
        vec![
            Read(3),
            Read(9),
            Read(8),
            Read(14),
            Read(1),
            Read(0),
            Write(19),
            Read(15),
        ],
        vec![
            Write(7),
            Read(3),
            Read(19),
            Write(16),
            Read(15),
            Read(2),
            Read(22),
            Write(15),
            Read(19),
            Work(19),
            Read(9),
            Read(10),
            Write(21),
            Write(8),
            Read(6),
            Read(13),
            Work(8),
            Read(16),
            Write(2),
            Work(17),
            Read(19),
            Read(5),
            Write(8),
            Read(16),
            Read(1),
            Write(0),
            Read(2),
            Read(16),
            Read(23),
            Work(6),
            Read(7),
            Write(16),
            Read(16),
        ],
        vec![
            Read(23),
            Write(19),
            Write(19),
            Write(0),
            Work(15),
            Write(21),
            Read(18),
            Read(17),
            Write(15),
            Work(9),
            Read(15),
            Read(18),
            Read(12),
            Read(8),
            Read(4),
            Read(23),
            Read(5),
            Write(16),
            Read(8),
            Work(4),
            Read(7),
            Write(2),
            Read(8),
            Read(17),
            Write(21),
            Read(20),
            Work(14),
            Read(21),
            Write(0),
            Read(17),
            Work(4),
            Read(22),
            Read(18),
            Read(5),
            Read(14),
            Write(20),
            Read(10),
            Write(17),
            Read(20),
            Read(9),
            Write(16),
            Read(9),
            Write(3),
            Read(11),
            Work(5),
            Write(18),
            Write(22),
            Work(8),
            Write(11),
            Read(1),
        ],
        vec![
            Write(9),
            Work(2),
            Read(23),
            Write(11),
            Read(7),
            Write(4),
            Read(19),
            Read(19),
            Work(17),
            Write(3),
            Read(13),
            Write(8),
            Read(1),
            Write(0),
            Read(2),
            Read(4),
            Write(11),
            Write(4),
            Write(19),
            Read(3),
            Write(17),
            Work(7),
            Read(7),
            Write(6),
            Read(21),
            Read(10),
            Read(21),
            Read(22),
            Read(7),
            Work(6),
            Read(10),
            Write(11),
            Write(23),
            Write(0),
            Write(21),
            Read(18),
            Read(7),
            Write(20),
            Write(8),
            Work(8),
            Read(4),
            Work(16),
            Work(3),
            Work(7),
            Read(2),
            Read(10),
            Write(3),
            Read(17),
            Read(18),
            Write(12),
            Read(16),
        ],
    ]
}

fn run(kind: ProtocolKind, scripts: Vec<Vec<DriverOp>>, cache_lines: usize) -> u64 {
    let mut config = MachineConfig::paper_default(4);
    config.verify = true;
    config.cache = CacheConfig {
        lines: cache_lines,
        associativity: cache_lines,
    };
    let mut machine = Machine::new(config, kind);
    let mut driver = ScriptDriver::new(scripts);
    machine.run(&mut driver).cycles
}

/// The recorded mix must stay coherent on every protocol that the
/// original property covered (all the addr-space-24 properties).
#[test]
fn recorded_counterexample_is_coherent_on_every_protocol() {
    for kind in [
        ProtocolKind::LimitedNB { pointers: 1 },
        ProtocolKind::LimitedB { pointers: 2 },
        ProtocolKind::SinglyList,
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
        ProtocolKind::SciTree,
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::DirTree {
            pointers: 1,
            arity: 2,
        },
        ProtocolKind::DirTreeUpdate {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::FullMap,
        ProtocolKind::LimitLess { pointers: 4 },
        ProtocolKind::Snoop,
    ] {
        run(kind, recorded_scripts(), 32);
    }
}

/// The same mix under eviction pressure (16-line cache, 24 addresses).
#[test]
fn recorded_counterexample_survives_eviction_pressure() {
    for kind in [
        ProtocolKind::DirTree {
            pointers: 2,
            arity: 2,
        },
        ProtocolKind::Sci,
        ProtocolKind::SinglyList,
    ] {
        run(kind, recorded_scripts(), 16);
    }
}
