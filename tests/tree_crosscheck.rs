//! Cross-check the two independent implementations of the Figure 6
//! insertion algorithm: the analytic replay in `dirtree-analysis` and the
//! real protocol in `dirtree-core`, driven by a minimal context.

use dirtree::analysis::tree_capacity::TreeBuilder;
use dirtree::coherence::ctx::{ProtoCtx, ProtoEvent};
use dirtree::coherence::dir::dir_tree::DirTree;
use dirtree::coherence::msg::Msg;
use dirtree::coherence::protocol::{Protocol, ProtocolParams};
use dirtree::coherence::types::{Addr, LineState, NodeId, OpKind};
use dirtree::sim::FxHashMap;
use std::collections::VecDeque;

#[derive(Default)]
struct MiniCtx {
    lines: FxHashMap<(NodeId, Addr), LineState>,
    queue: VecDeque<(NodeId, Msg)>,
    now: u64,
}

impl ProtoCtx for MiniCtx {
    fn now(&self) -> u64 {
        self.now
    }
    fn num_nodes(&self) -> u32 {
        1024
    }
    fn home_of(&self, addr: Addr) -> NodeId {
        (addr % 1024) as NodeId
    }
    fn send(&mut self, dst: NodeId, msg: Msg) {
        self.queue.push_back((dst, msg));
    }
    fn redeliver(&mut self, node: NodeId, msg: Msg, _d: u64) {
        self.queue.push_back((node, msg));
    }
    fn occupy(&mut self, _n: NodeId, c: u64) {
        self.now += c;
    }
    fn line_state(&self, node: NodeId, addr: Addr) -> LineState {
        self.lines
            .get(&(node, addr))
            .copied()
            .unwrap_or(LineState::NotPresent)
    }
    fn set_line_state(&mut self, node: NodeId, addr: Addr, state: LineState) {
        self.lines.insert((node, addr), state);
    }
    fn complete(&mut self, _n: NodeId, _a: Addr, _o: OpKind) {}
    fn note(&mut self, _e: ProtoEvent) {}
}

fn drive_reads(pointers: u32, count: u32) -> DirTree {
    let mut ctx = MiniCtx::default();
    let mut proto = DirTree::new(pointers, 2, ProtocolParams::default());
    const A: Addr = 0;
    for reader in 1..=count {
        ctx.lines.insert((reader, A), LineState::RmIp);
        proto.start_miss(&mut ctx, reader, A, OpKind::Read);
        while let Some((node, msg)) = ctx.queue.pop_front() {
            ctx.now += 1;
            proto.handle(&mut ctx, node, msg);
        }
    }
    proto
}

#[test]
fn protocol_and_replay_agree_on_forest_shape() {
    for pointers in [1u32, 2, 4, 8] {
        for count in [3u32, 7, 14, 15, 40, 100] {
            let proto = drive_reads(pointers, count);
            let mut replay = TreeBuilder::new(pointers);
            for _ in 0..count {
                replay.insert();
            }
            let proto_roots: Vec<Option<(u32, u32)>> = proto
                .forest(0)
                .iter()
                .map(|p| p.map(|q| (q.node, q.level)))
                .collect();
            let replay_roots: Vec<Option<(u32, u32)>> = replay
                .pointers()
                .iter()
                .map(|p| p.map(|(r, l, _)| (r, l)))
                .collect();
            assert_eq!(
                proto_roots, replay_roots,
                "Dir{pointers}Tree2 diverged after {count} reads"
            );
        }
    }
}

#[test]
fn protocol_subtree_sizes_match_replay() {
    for count in [7u32, 15, 31] {
        let proto = drive_reads(4, count);
        let mut replay = TreeBuilder::new(4);
        for _ in 0..count {
            replay.insert();
        }
        for (pp, rp) in proto.forest(0).iter().zip(replay.pointers()) {
            match (pp, rp) {
                (Some(p), Some((root, _, size))) => {
                    assert_eq!(p.node, *root);
                    assert_eq!(
                        proto.subtree(p.node, 0).len() as u64,
                        *size,
                        "subtree size mismatch at root {root} ({count} reads)"
                    );
                }
                (None, None) => {}
                other => panic!("pointer shape mismatch: {other:?}"),
            }
        }
    }
}

#[test]
fn every_sharer_is_reachable_from_some_root() {
    for count in [5u32, 14, 15, 50] {
        let proto = drive_reads(4, count);
        let mut reachable: Vec<NodeId> = proto
            .forest(0)
            .iter()
            .flatten()
            .flat_map(|p| proto.subtree(p.node, 0))
            .collect();
        reachable.sort_unstable();
        reachable.dedup();
        assert_eq!(
            reachable,
            (1..=count).collect::<Vec<_>>(),
            "not every reader is in the forest after {count} reads"
        );
    }
}
