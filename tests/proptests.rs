//! Property-based tests: arbitrary access mixes must never violate
//! coherence on any protocol, and the machine must stay deterministic.

use dirtree::machine::{DriverOp, Machine, MachineConfig, ScriptDriver};
use dirtree::prelude::*;
use dirtree_core::cache::CacheConfig;
use proptest::prelude::*;

fn arb_op(addr_space: u64) -> impl Strategy<Value = DriverOp> {
    prop_oneof![
        4 => (0..addr_space).prop_map(DriverOp::Read),
        2 => (0..addr_space).prop_map(DriverOp::Write),
        1 => (1u64..20).prop_map(DriverOp::Work),
    ]
}

fn arb_scripts(nodes: usize, addr_space: u64) -> impl Strategy<Value = Vec<Vec<DriverOp>>> {
    proptest::collection::vec(
        proptest::collection::vec(arb_op(addr_space), 0..60),
        nodes..=nodes,
    )
}

fn run(kind: ProtocolKind, scripts: Vec<Vec<DriverOp>>, cache_lines: usize) -> u64 {
    let mut config = MachineConfig::paper_default(4);
    config.verify = true;
    config.cache = CacheConfig {
        lines: cache_lines,
        associativity: cache_lines,
    };
    let mut machine = Machine::new(config, kind);
    let mut driver = ScriptDriver::new(scripts);
    machine.run(&mut driver).cycles
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    #[test]
    fn dir_tree_is_coherent_on_arbitrary_mixes(scripts in arb_scripts(4, 32)) {
        run(ProtocolKind::DirTree { pointers: 4, arity: 2 }, scripts, 64);
    }

    #[test]
    fn dir1_tree_is_coherent_on_arbitrary_mixes(scripts in arb_scripts(4, 16)) {
        run(ProtocolKind::DirTree { pointers: 1, arity: 2 }, scripts, 64);
    }

    #[test]
    fn dir_tree_survives_eviction_pressure(scripts in arb_scripts(4, 64)) {
        // Cache of 16 lines vs 64 addresses: constant Replace_INV traffic.
        run(ProtocolKind::DirTree { pointers: 2, arity: 2 }, scripts, 16);
    }

    #[test]
    fn limited_nb_is_coherent(scripts in arb_scripts(4, 24)) {
        run(ProtocolKind::LimitedNB { pointers: 1 }, scripts, 32);
    }

    #[test]
    fn limited_b_is_coherent(scripts in arb_scripts(4, 24)) {
        run(ProtocolKind::LimitedB { pointers: 2 }, scripts, 32);
    }

    #[test]
    fn singly_list_is_coherent(scripts in arb_scripts(4, 24)) {
        run(ProtocolKind::SinglyList, scripts, 32);
    }

    #[test]
    fn sci_is_coherent(scripts in arb_scripts(4, 24)) {
        run(ProtocolKind::Sci, scripts, 32);
    }

    #[test]
    fn stp_is_coherent(scripts in arb_scripts(4, 24)) {
        run(ProtocolKind::Stp { arity: 2 }, scripts, 32);
    }

    #[test]
    fn sci_tree_is_coherent(scripts in arb_scripts(4, 24)) {
        run(ProtocolKind::SciTree, scripts, 32);
    }

    #[test]
    fn machine_is_deterministic(scripts in arb_scripts(4, 16)) {
        let a = run(ProtocolKind::DirTree { pointers: 4, arity: 2 }, scripts.clone(), 64);
        let b = run(ProtocolKind::DirTree { pointers: 4, arity: 2 }, scripts, 64);
        prop_assert_eq!(a, b);
    }
}
