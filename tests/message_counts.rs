//! Machine-level reproduction of Table 1's message counts: marginal
//! critical-path messages per miss, measured on the full simulator (with
//! network timing and memory-controller occupancy in the loop).

use dirtree::prelude::*;
use dirtree_bench::miss_cost::{read_miss_cost, write_miss_cost};

#[test]
fn read_miss_costs_match_table1() {
    // Bit-map family + Dir_iTree_k: always 2 messages.
    for kind in [
        ProtocolKind::FullMap,
        ProtocolKind::LimitLess { pointers: 4 },
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::DirTree {
            pointers: 1,
            arity: 2,
        },
    ] {
        for p in [1u32, 3, 7, 12] {
            assert_eq!(read_miss_cost(kind, p), 2, "{} at p={p}", kind.name());
        }
    }
    // Linked list: 3 (supply through the old head).
    assert_eq!(read_miss_cost(ProtocolKind::SinglyList, 5), 3);
    // SCI: 4 (redirect + attach).
    assert_eq!(read_miss_cost(ProtocolKind::Sci, 5), 4);
    // STP: 4 (join + attach handshake).
    assert_eq!(read_miss_cost(ProtocolKind::Stp { arity: 2 }, 5), 4);
    // SCI tree: the paper says 4..2·log P; our implementation adds
    // acknowledged rotation fix-ups on top (DESIGN.md §3), so the bound is
    // a little looser — the point is that it grows with depth, unlike the
    // flat 2 of Dir_iTree_k.
    let c = read_miss_cost(ProtocolKind::SciTree, 7);
    assert!((3..=16).contains(&c), "SCI-tree read cost {c}");
    assert!(
        c > read_miss_cost(
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2
            },
            7
        )
    );
}

#[test]
fn write_miss_costs_match_table1() {
    for p in [2u32, 4, 8] {
        let pc = p as u64;
        // Full-map: 2P + 2 exactly.
        assert_eq!(write_miss_cost(ProtocolKind::FullMap, p), 2 * pc + 2);
        // Dir_iTree_k: 2P + 2 total messages (the win is latency).
        assert_eq!(
            write_miss_cost(
                ProtocolKind::DirTree {
                    pointers: 4,
                    arity: 2
                },
                p
            ),
            2 * pc + 2,
            "Dir4Tree2 at p={p}"
        );
        // Singly linked list: P + 3 (chain walk + done + grant).
        assert_eq!(write_miss_cost(ProtocolKind::SinglyList, p), pc + 3);
        // SCI: 2P + 3 (purge round-trips + grant + done).
        assert_eq!(write_miss_cost(ProtocolKind::Sci, p), 2 * pc + 3);
    }
}

#[test]
fn dir_b_broadcast_blows_up_beyond_pointers() {
    // Dir2B with 4 sharers: overflowed, so a write storms all n−1 nodes.
    let c = write_miss_cost(ProtocolKind::LimitedB { pointers: 2 }, 4);
    assert!(c >= 2 * 31, "broadcast write cost only {c}");
}

#[test]
fn dir_nb_pays_extra_reads_beyond_pointers() {
    // The 5th reader of a Dir4NB block evicts a pointer victim:
    // 2 + inv + ack = 4.
    assert_eq!(
        read_miss_cost(ProtocolKind::LimitedNB { pointers: 4 }, 5),
        4
    );
    // Within the pointer budget it behaves like full-map.
    assert_eq!(
        read_miss_cost(ProtocolKind::LimitedNB { pointers: 4 }, 3),
        2
    );
}

#[test]
fn dir_tree_write_latency_is_logarithmic_in_depth() {
    // Compare write-miss *latency* (not messages) for a chain-ish
    // Dir1Tree2 forest vs the Dir8Tree2 forest at the same sharing
    // degree: more pointers → shallower trees → lower latency.
    use dirtree::machine::{DriverOp, Machine, MachineConfig, ScriptDriver};
    let latency = |pointers: u32| -> f64 {
        let nodes = 32;
        let mut active: Vec<(u32, Vec<DriverOp>)> = (1..=16u32)
            .map(|k| {
                (
                    k,
                    vec![DriverOp::Work(k as u64 * 50_000), DriverOp::Read(0)],
                )
            })
            .collect();
        active.push((31, vec![DriverOp::Work(1_000_000), DriverOp::Write(0)]));
        let mut m = Machine::new(
            MachineConfig::paper_default(nodes),
            ProtocolKind::DirTree { pointers, arity: 2 },
        );
        let mut d = ScriptDriver::sparse(nodes, active);
        let out = m.run(&mut d);
        out.stats.write_miss_latency.mean()
    };
    let deep = latency(1);
    let shallow = latency(8);
    assert!(
        shallow < deep,
        "Dir8Tree2 write latency {shallow} should beat Dir1Tree2 {deep}"
    );
}
