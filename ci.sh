#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, and the full workspace test
# suite. Run from the repository root; fails fast on the first problem.
set -euo pipefail

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test --workspace -q
