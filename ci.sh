#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, the full workspace test suite
# (which includes the paper-claims and cross-protocol differential
# suites), the feature-off observability check, and the model checker's
# default tier (every roster protocol — figure set, update, adaptive, and
# the ternary-tree shapes — exhaustively explored at P=2 and P=3, plus as
# much of the P=4 roster as fits a one-minute wall-clock budget, with
# per-shape explored/deduped/sleep-pruned state counts printed). Run from
# the repository root; fails fast on the first problem.
#
#   ./ci.sh          default gate (~2-3 min of model checking: P=2, P=3,
#                    and a time-budgeted P=4 slice)
#   ./ci.sh --deep   the full P=4 sweep (no time budget) plus the
#                    two-block P=2/P=3 shapes
set -euo pipefail

deep=0
if [[ "${1:-}" == "--deep" ]]; then
  deep=1
elif [[ -n "${1:-}" ]]; then
  echo "usage: $0 [--deep]" >&2
  exit 64
fi

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
# Workspace tests build with the `trace` feature unified in (dirtree-bench
# always enables it), so the observability layer is exercised end to end —
# including tests/paper_claims.rs and tests/protocol_differential.rs.
cargo test --workspace -q
# Feature-off path: without dirtree-bench in the graph the metrics sink
# must compile to a zero-sized no-op (pinned by `zero_sized_when_disabled`
# and `metrics_are_empty_when_trace_feature_is_off`).
cargo test -q -p dirtree-sim -p dirtree-net -p dirtree-machine
# The paper-claims suite by name, so a claim regression is called out
# directly even when some other workspace test fails first.
cargo test -q --test paper_claims

if (( deep )); then
  cargo run --release -p dirtree-check --bin check_all -- --deep
else
  cargo run --release -p dirtree-check --bin check_all -- --budget 60
fi

# Perf smoke: the P=64 slice of the hot-path scaling study must finish
# inside a generous wall-clock budget (catches order-of-magnitude
# simulator regressions, not noise) and its records must stay
# byte-identical to the committed golden — the determinism gate for the
# whole record/replay + cached-sweep pipeline.
timeout 300 ./target/release/scale_up \
  --filter P=64 --no-cache --jobs 2 --out-dir target/perf_smoke >/dev/null
cmp target/perf_smoke/scale_up.jsonl tests/golden/scale_up_p64.jsonl
echo "perf-smoke: records match tests/golden/scale_up_p64.jsonl"
# The same slice on the virtual-channel machine (3 VCs, adaptive e-cube):
# pins the VC timing path and its extended record fields byte-for-byte,
# while the cmp above proves the default path never moved.
cmp target/perf_smoke/scale_up_vc.jsonl tests/golden/scale_up_p64_vc.jsonl
echo "perf-smoke: records match tests/golden/scale_up_p64_vc.jsonl"
# And the credit-bounded VC grid (vc_credits = 8): injection
# backpressure is part of the timing here, so this golden pins the
# credit accounting end to end.
cmp target/perf_smoke/scale_up_vc_credited.jsonl \
  tests/golden/scale_up_p64_vc_credited.jsonl
echo "perf-smoke: records match tests/golden/scale_up_p64_vc_credited.jsonl"

# Adaptive-ablation smoke: the P=16 slice of the update/invalidate
# ablation (DESIGN.md #24). The binary itself asserts the acceptance
# criterion (adaptive within 1.05x of the best static policy per
# pattern workload); the cmp pins the records — including the detector
# counters and mode-flip counts — byte-for-byte.
timeout 300 ./target/release/adaptive_ablation \
  --filter P=16 --no-cache --jobs 2 --out-dir target/adaptive_smoke >/dev/null
cmp target/adaptive_smoke/adaptive_ablation.jsonl tests/golden/adaptive_p16.jsonl
echo "adaptive-smoke: records match tests/golden/adaptive_p16.jsonl"
