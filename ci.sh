#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, the full workspace test suite,
# and the model checker's fast tier (every figure-set protocol,
# exhaustively explored at P=2 with one block). Run from the repository
# root; fails fast on the first problem.
#
#   ./ci.sh          fast gate (~seconds of model checking)
#   ./ci.sh --deep   also model-check P=3 and the two-block shapes
set -euo pipefail

deep=0
if [[ "${1:-}" == "--deep" ]]; then
  deep=1
elif [[ -n "${1:-}" ]]; then
  echo "usage: $0 [--deep]" >&2
  exit 64
fi

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test --workspace -q

if (( deep )); then
  cargo run --release -p dirtree-check --bin check_all -- --deep
else
  cargo run --release -p dirtree-check --bin check_all -- --fast
fi
