//! Snooping MSI over the bus fabric, machine-level: broadcasts cost one
//! bus transaction, and the protocol stays coherent under contention with
//! the witness enabled.

use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::{DriverOp, Machine, MachineConfig, ScriptDriver};
use dirtree_net::NetworkConfig;

fn bus_machine(nodes: u32) -> Machine {
    let mut config = MachineConfig::test_default(nodes);
    config.net = NetworkConfig::bus();
    Machine::new(config, ProtocolKind::Snoop)
}

#[test]
fn coherent_under_contention_on_the_bus() {
    let scripts: Vec<Vec<DriverOp>> = (0..8u64)
        .map(|n| {
            let mut v = Vec::new();
            for i in 0..30u64 {
                v.push(DriverOp::Read((i + n) % 8));
                if i % 4 == n % 4 {
                    v.push(DriverOp::Write(i % 8));
                }
            }
            v
        })
        .collect();
    let out = bus_machine(8).run(&mut ScriptDriver::new(scripts));
    assert!(out.stats.total_ops() > 0);
}

#[test]
fn write_miss_is_constant_bus_transactions() {
    // A write over P sharers is 3 bus transactions regardless of P.
    let cost = |p: u32| -> u64 {
        let run = |with_write: bool| -> u64 {
            let nodes = 16;
            let mut active: Vec<(u32, Vec<DriverOp>)> = (0..p)
                .map(|k| {
                    (
                        k + 1,
                        vec![DriverOp::Work((k as u64 + 1) * 50_000), DriverOp::Read(0)],
                    )
                })
                .collect();
            if with_write {
                active.push((
                    nodes - 1,
                    vec![DriverOp::Work(2_000_000), DriverOp::Write(0)],
                ));
            }
            let mut m = bus_machine(nodes);
            let mut d = ScriptDriver::sparse(nodes, active);
            m.run(&mut d).stats.critical_messages()
        };
        run(true) - run(false)
    };
    let c2 = cost(2);
    let c8 = cost(8);
    assert_eq!(c2, c8, "snoop write cost must not grow with sharers");
    assert_eq!(c2, 3, "request + broadcast + data");
}

#[test]
fn snoop_on_cube_degenerates_to_unicast_storm() {
    // Same protocol on the point-to-point fabric: the broadcast becomes
    // n-1 unicasts — §1's reason directories exist.
    let mut cube = MachineConfig::test_default(8);
    cube.verify = true;
    let mut m = Machine::new(cube, ProtocolKind::Snoop);
    let scripts: Vec<Vec<DriverOp>> = (0..8u64)
        .map(|n| vec![DriverOp::Read(n % 4), DriverOp::Write(n % 4)])
        .collect();
    let out = m.run(&mut ScriptDriver::new(scripts));
    // Every miss broadcast 7 unicasts: far more messages than full-map
    // would need for this sharing degree.
    assert!(out.stats.messages as f64 / out.stats.total_ops() as f64 > 4.0);
}
