//! Machine driver semantics: synchronization primitives, retry paths, and
//! scheduling determinism.

use dirtree_core::protocol::ProtocolKind;
use dirtree_core::types::NodeId;
use dirtree_machine::{Driver, DriverOp, Machine, MachineConfig, ScriptDriver};

fn machine(nodes: u32) -> Machine {
    Machine::new(MachineConfig::test_default(nodes), ProtocolKind::FullMap)
}

#[test]
fn locks_are_fifo_fair() {
    // Node 0 takes the lock first (everyone else staggers in later);
    // release order must follow arrival order, observable through the
    // per-node completion order of the post-lock write.
    struct Fifo {
        step: Vec<u8>,
        order: std::rc::Rc<std::cell::RefCell<Vec<NodeId>>>,
    }
    impl Driver for Fifo {
        fn next_op(&mut self, node: NodeId, _now: u64) -> DriverOp {
            let s = self.step[node as usize];
            self.step[node as usize] += 1;
            match s {
                0 => DriverOp::Work(1 + node as u64 * 40), // stagger arrivals
                1 => DriverOp::Lock(1),
                2 => {
                    self.order.borrow_mut().push(node);
                    DriverOp::Work(120) // hold long enough to queue everyone
                }
                3 => DriverOp::Unlock(1),
                _ => DriverOp::Done,
            }
        }
    }
    let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut d = Fifo {
        step: vec![0; 4],
        order: order.clone(),
    };
    machine(4).run(&mut d);
    assert_eq!(
        *order.borrow(),
        vec![0, 1, 2, 3],
        "lock grants must be FIFO"
    );
}

#[test]
fn barriers_are_reusable_across_epochs() {
    let scripts: Vec<Vec<DriverOp>> = (0..4u64)
        .map(|n| {
            let mut v = Vec::new();
            for epoch in 0..5u32 {
                v.push(DriverOp::Work(1 + n * 7));
                v.push(DriverOp::Barrier(epoch));
            }
            v
        })
        .collect();
    let mut m = machine(4);
    let out = m.run(&mut ScriptDriver::new(scripts));
    assert_eq!(out.stats.barriers, 5);
}

#[test]
fn same_barrier_id_can_repeat() {
    let scripts: Vec<Vec<DriverOp>> = (0..4u64)
        .map(|_| {
            vec![
                DriverOp::Barrier(0),
                DriverOp::Barrier(0),
                DriverOp::Barrier(0),
            ]
        })
        .collect();
    let out = machine(4).run(&mut ScriptDriver::new(scripts));
    assert_eq!(out.stats.barriers, 3);
}

#[test]
fn zero_cycle_work_still_makes_progress() {
    let out = machine(2).run(&mut ScriptDriver::new(vec![
        vec![DriverOp::Work(0), DriverOp::Work(0), DriverOp::Read(0)],
        vec![],
    ]));
    assert_eq!(out.stats.reads, 1);
}

#[test]
fn nested_locks_do_not_interfere() {
    let scripts: Vec<Vec<DriverOp>> = (0..4u64)
        .map(|n| {
            vec![
                DriverOp::Lock(n as u32 % 2),
                DriverOp::Write(n % 2),
                DriverOp::Unlock(n as u32 % 2),
                DriverOp::Lock(2),
                DriverOp::Read(5),
                DriverOp::Unlock(2),
            ]
        })
        .collect();
    let out = machine(4).run(&mut ScriptDriver::new(scripts));
    assert_eq!(out.stats.lock_acquires, 8);
}

#[test]
#[should_panic(expected = "unlock of unknown lock")]
fn unlock_without_lock_panics() {
    machine(2).run(&mut ScriptDriver::new(vec![
        vec![DriverOp::Unlock(9)],
        vec![],
    ]));
}

#[test]
#[should_panic(expected = "non-owner")]
fn unlock_by_non_owner_panics() {
    machine(2).run(&mut ScriptDriver::new(vec![
        vec![DriverOp::Lock(3), DriverOp::Work(50)],
        vec![DriverOp::Work(10), DriverOp::Unlock(3)],
    ]));
}

#[test]
fn per_node_cycle_accounting_is_plausible() {
    // One hit = cache_latency; a miss costs far more.
    let out = machine(2).run(&mut ScriptDriver::new(vec![
        vec![DriverOp::Read(0), DriverOp::Read(0)],
        vec![],
    ]));
    assert_eq!(out.stats.read_hits, 1);
    assert_eq!(out.stats.read_misses, 1);
    assert!(out.stats.read_miss_latency.mean() > 5.0);
}

#[test]
fn deterministic_under_many_equal_time_events() {
    let mk = || {
        let scripts: Vec<Vec<DriverOp>> = (0..8u64)
            .map(|_| (0..30).map(|i| DriverOp::Read(i % 4)).collect())
            .collect();
        Machine::new(
            MachineConfig::test_default(8),
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
        )
        .run(&mut ScriptDriver::new(scripts))
        .cycles
    };
    assert_eq!(mk(), mk());
}
