//! Machine-level tests of the update-write Dir_iTree_k variant: no
//! exclusive state, every write transacts, readers never refetch.

use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::{DriverOp, Machine, MachineConfig, ScriptDriver};

const UPD: ProtocolKind = ProtocolKind::DirTreeUpdate {
    pointers: 4,
    arity: 2,
};
const INV: ProtocolKind = ProtocolKind::DirTree {
    pointers: 4,
    arity: 2,
};

fn run(kind: ProtocolKind, scripts: Vec<Vec<DriverOp>>) -> dirtree_machine::RunOutcome {
    let mut m = Machine::new(MachineConfig::test_default(scripts.len() as u32), kind);
    let mut d = ScriptDriver::new(scripts);
    m.run(&mut d)
}

#[test]
fn readers_never_miss_again_under_update_writes() {
    // One producer writes a block each round; consumers re-read it. With
    // updates, consumers hit after their initial fill.
    let rounds = 10u64;
    let scripts: Vec<Vec<DriverOp>> = (0..4u64)
        .map(|n| {
            let mut v = Vec::new();
            for r in 0..rounds {
                if n == 0 {
                    v.push(DriverOp::Write(0));
                }
                v.push(DriverOp::Barrier(r as u32 * 2));
                v.push(DriverOp::Read(0));
                v.push(DriverOp::Barrier(r as u32 * 2 + 1));
            }
            v
        })
        .collect();
    let upd = run(UPD, scripts.clone());
    let inv = run(INV, scripts);
    // Update: 3 consumers miss once each (plus producer's first ops);
    // invalidate: consumers miss every round.
    assert!(
        upd.stats.read_misses < inv.stats.read_misses / 2,
        "update read misses {} should be far below invalidate's {}",
        upd.stats.read_misses,
        inv.stats.read_misses
    );
}

#[test]
fn private_rewrites_are_cheaper_under_invalidation() {
    // A single processor writing its own block repeatedly: invalidation
    // gets E and hits; update pays a home transaction per write.
    let scripts = vec![
        (0..30).map(|_| DriverOp::Write(1)).collect::<Vec<_>>(),
        vec![],
        vec![],
        vec![],
    ];
    let upd = run(UPD, scripts.clone());
    let inv = run(INV, scripts);
    assert_eq!(
        inv.stats.write_hits, 29,
        "invalidation: E hits after the first"
    );
    assert_eq!(upd.stats.write_hits, 0, "update: no exclusive state");
    assert!(upd.cycles > inv.cycles);
}

#[test]
fn update_runs_are_deterministic_and_verified() {
    let scripts: Vec<Vec<DriverOp>> = (0..4u64)
        .map(|n| {
            (0..40u64)
                .flat_map(|i| {
                    [
                        DriverOp::Read((i * 3 + n) % 16),
                        DriverOp::Write((i + n) % 16),
                    ]
                })
                .collect()
        })
        .collect();
    let a = run(UPD, scripts.clone());
    let b = run(UPD, scripts);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats.messages, b.stats.messages);
}
