//! The top-level machine: processors, synchronization, and the event loop.

use crate::config::MachineConfig;
use crate::core::{Ev, MachineCore};
use crate::driver::{Driver, DriverOp};
use crate::stats::MachineStats;
use crate::trace::MsgTrace;
use dirtree_core::cache::AllocOutcome;
use dirtree_core::protocol::{build_protocol, Protocol, ProtocolKind};
use dirtree_core::types::{Addr, LineState, NodeId, OpKind};
use dirtree_net::NetworkStats;
use dirtree_sim::metrics::{Metrics, MetricsSnapshot};
use dirtree_sim::{Cycle, FxHashMap};
use std::collections::VecDeque;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProcState {
    /// Ready for (or waiting on) the next driver op; a `Proc` event exists.
    Running,
    /// An operation is being retried (allocation stall / transient line).
    Retrying,
    /// Blocked on a memory access, a barrier, or a lock.
    Blocked,
    Done,
}

#[derive(Default)]
struct BarrierState {
    waiting: Vec<NodeId>,
}

#[derive(Default)]
struct LockState {
    owner: Option<NodeId>,
    waiters: VecDeque<NodeId>,
}

/// The result of a completed run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    pub cycles: Cycle,
    pub stats: MachineStats,
    pub net: NetworkStats,
    /// Observability export (all-zero unless the `trace` feature is on).
    pub metrics: MetricsSnapshot,
}

/// The machine failed to reach quiescence: a structured progress/stall
/// report, so programmatic harnesses (the sweep runner, the model checker)
/// can classify the failure instead of parsing a panic message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StallError {
    /// The bounded-step cap fired: the event loop processed `events`
    /// events without every processor finishing — a livelock or an
    /// unproductive retry storm.
    Livelock { events: u64, protocol: ProtocolKind },
    /// The event queue drained with processors still blocked.
    Deadlock {
        finished: u32,
        nodes: u32,
        /// `(node, state)` for every unfinished processor.
        blocked: Vec<(u32, String)>,
        /// `(node, description)` for every send parked on a full virtual
        /// channel — non-empty exactly when the stall is a channel
        /// cyclic-wait (the request/reply deadlock) rather than a
        /// protocol-level hang.
        parked_sends: Vec<(u32, String)>,
        protocol: ProtocolKind,
    },
}

impl std::fmt::Display for StallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StallError::Livelock { events, protocol } => write!(
                f,
                "livelock: no quiescence after {events} events (protocol {protocol:?})"
            ),
            StallError::Deadlock {
                finished,
                nodes,
                blocked,
                parked_sends,
                protocol,
            } => {
                write!(
                    f,
                    "deadlock: event queue drained with {finished} of {nodes} processors \
                     unfinished (blocked procs: {blocked:?}, protocol {protocol:?})"
                )?;
                if !parked_sends.is_empty() {
                    write!(
                        f,
                        "; sends parked on full virtual channels: {parked_sends:?} — \
                         a request/reply cyclic wait; separate the classes onto \
                         distinct VCs (net.vcs >= 3) to break it"
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for StallError {}

/// A simulated multiprocessor running one coherence protocol.
pub struct Machine {
    core: MachineCore,
    protocol: Box<dyn Protocol>,
    /// Cached [`Protocol::wants_read_hits`] so the read-hit fast path pays
    /// one bool test, not a virtual call, for the common (false) case.
    wants_read_hits: bool,
    procs: Vec<ProcState>,
    /// Op being retried per processor (allocation stall, transient line).
    retry_op: Vec<Option<DriverOp>>,
    barriers: FxHashMap<u32, BarrierState>,
    locks: FxHashMap<u32, LockState>,
    done_count: u32,
    /// Scratch for holder queries on the write-verification paths: one
    /// machine-lifetime buffer instead of one `Vec` per checked write.
    holders_scratch: Vec<NodeId>,
}

impl Machine {
    pub fn new(config: MachineConfig, kind: ProtocolKind) -> Self {
        Self::with_protocol(config, build_protocol(kind, config.protocol))
    }

    /// Build a machine around a custom [`Protocol`] implementation (e.g.
    /// an experimental protocol, or an instrumented wrapper in tests).
    pub fn with_protocol(config: MachineConfig, protocol: Box<dyn Protocol>) -> Self {
        let n = config.nodes as usize;
        Self {
            core: MachineCore::new(config),
            wants_read_hits: protocol.wants_read_hits(),
            protocol,
            procs: vec![ProcState::Running; n],
            retry_op: vec![None; n],
            barriers: FxHashMap::default(),
            locks: FxHashMap::default(),
            done_count: 0,
            holders_scratch: Vec::new(),
        }
    }

    /// Restore the machine to its post-construction state so its
    /// allocations (caches, controller queues, network route tables) can be
    /// reused for another run. The protocol is rebuilt from its kind, so a
    /// custom [`Machine::with_protocol`] wrapper is replaced by the
    /// registry implementation.
    pub fn reset(&mut self) {
        self.core.reset();
        self.protocol = build_protocol(self.protocol.kind(), self.core.config.protocol);
        self.wants_read_hits = self.protocol.wants_read_hits();
        self.procs.iter_mut().for_each(|p| *p = ProcState::Running);
        self.retry_op.iter_mut().for_each(|r| *r = None);
        self.barriers.clear();
        self.locks.clear();
        self.done_count = 0;
        self.holders_scratch.clear();
    }

    pub fn config(&self) -> &MachineConfig {
        &self.core.config
    }

    pub fn protocol_kind(&self) -> ProtocolKind {
        self.protocol.kind()
    }

    pub fn stats(&self) -> &MachineStats {
        &self.core.stats
    }

    /// The live observability sink (a no-op ZST unless the `trace` feature
    /// is enabled; see `dirtree_sim::metrics`).
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Install a structured message trace; every subsequent protocol send
    /// is recorded through the shared hook (for Chrome-trace export).
    pub fn set_trace(&mut self, trace: MsgTrace) {
        self.core.trace_sink = Some(trace);
    }

    /// Remove and return the installed message trace, if any.
    pub fn take_trace(&mut self) -> Option<MsgTrace> {
        self.core.trace_sink.take()
    }

    /// Run the machine to completion under `driver`.
    ///
    /// # Panics
    /// Panics on coherence violations (when verification is enabled) and on
    /// stalls (livelock or deadlock); see [`Machine::try_run`] for the
    /// non-panicking variant with a structured [`StallError`].
    pub fn run(&mut self, driver: &mut dyn Driver) -> RunOutcome {
        match self.try_run(driver) {
            Ok(out) => out,
            Err(stall) => panic!("{stall}"),
        }
    }

    /// Run the machine to completion under `driver`, reporting stalls
    /// (livelock: bounded-step cap exceeded without quiescence; deadlock:
    /// event queue drained with processors still blocked) as a structured
    /// [`StallError`] instead of panicking.
    ///
    /// # Panics
    /// Still panics on coherence violations when verification is enabled —
    /// those indicate a broken protocol, not a stalled run.
    pub fn try_run(&mut self, driver: &mut dyn Driver) -> Result<RunOutcome, StallError> {
        for n in 0..self.core.config.nodes {
            self.core.queue.push(0, Ev::Proc(n));
        }
        let mut events: u64 = 0;
        // Same-cycle events are drained in one batch (reusing `batch`
        // across iterations); `pop_batch` preserves the exact (time, seq)
        // delivery order of one-at-a-time popping.
        let mut batch: Vec<(Cycle, Ev)> = Vec::new();
        while self.core.queue.pop_batch(&mut batch) > 0 {
            for (_, ev) in batch.drain(..) {
                events += 1;
                if events > self.core.config.max_events {
                    return Err(StallError::Livelock {
                        events,
                        protocol: self.protocol.kind(),
                    });
                }
                match ev {
                    Ev::Proc(n) => self.step_processor(n, driver),
                    Ev::Deliver(n, msg) => {
                        if msg.kind.is_snoop() {
                            // Dedicated snoop port: handled at delivery time.
                            self.protocol.handle(&mut self.core, n, msg);
                            // This path runs outside the ctrl_take/ctrl_finish
                            // bracket; occupancy the handler requested must be
                            // charged to this node now, not leak into the next
                            // unrelated ctrl_finish.
                            self.core.apply_direct_occupancy(n);
                        } else {
                            self.core.deliver(n, msg);
                        }
                    }
                    Ev::CtrlExec(n) => {
                        let msg = self.core.ctrl_take(n);
                        self.protocol.handle(&mut self.core, n, msg);
                        self.core.ctrl_finish(n);
                    }
                    Ev::OpDone(n, addr, op) => self.op_done(n, addr, op),
                }
            }
        }
        if self.done_count != self.core.config.nodes {
            return Err(StallError::Deadlock {
                finished: self.done_count,
                nodes: self.core.config.nodes,
                blocked: self
                    .procs
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| **s != ProcState::Done)
                    .map(|(i, s)| (i as u32, format!("{s:?}")))
                    .collect(),
                parked_sends: self.core.parked_summary(),
                protocol: self.protocol.kind(),
            });
        }
        if let Some(v) = &self.core.verifier {
            if let Err(violation) = v.on_finish(self.core.survivors()) {
                panic!("{violation} (protocol {:?})", self.protocol.kind());
            }
        }
        self.core.stats.cycles = self.core.queue.now();
        let (busy_max, busy_sum, nodes) = {
            let busy = self.core.controller_busy();
            (
                busy.iter().copied().max().unwrap_or(0),
                busy.iter().sum::<u64>(),
                busy.len().max(1),
            )
        };
        self.core.stats.max_controller_busy = busy_max;
        self.core.stats.mean_controller_busy = busy_sum as f64 / nodes as f64;
        self.core.stats.events = self.core.queue.total_popped();
        self.core.stats.peak_queue_depth = self.core.queue.peak_len() as u64;
        let mut metrics = self.core.metrics.snapshot();
        let links = self.core.net.link_metrics();
        metrics.links = links.links;
        metrics.max_link_busy = links.max_link_busy;
        metrics.total_link_busy = links.total_link_busy;
        metrics.inject_queue = links.inject_queue;
        metrics.link_queue = links.link_queue;
        metrics.vc_queue = links.vc_queue;
        Ok(RunOutcome {
            cycles: self.core.stats.cycles,
            stats: self.core.stats.clone(),
            net: self.core.net.stats().clone(),
            metrics,
        })
    }

    fn reschedule(&mut self, n: NodeId, delay: Cycle) {
        self.core
            .queue
            .push(self.core.queue.now() + delay, Ev::Proc(n));
    }

    fn step_processor(&mut self, n: NodeId, driver: &mut dyn Driver) {
        let op = match self.retry_op[n as usize].take() {
            Some(op) => op,
            None => driver.next_op(n, self.core.queue.now()),
        };
        self.procs[n as usize] = ProcState::Running;
        match op {
            DriverOp::Read(addr) => self.issue_access(n, addr, OpKind::Read, op),
            DriverOp::Write(addr) => self.issue_access(n, addr, OpKind::Write, op),
            DriverOp::Work(c) => self.reschedule(n, c.max(1)),
            DriverOp::Barrier(id) => self.arrive_barrier(n, id),
            DriverOp::Lock(id) => self.acquire_lock(n, id),
            DriverOp::Unlock(id) => self.release_lock(n, id),
            DriverOp::Done => {
                self.procs[n as usize] = ProcState::Done;
                self.done_count += 1;
            }
        }
    }

    fn retry(&mut self, n: NodeId, op: DriverOp) {
        self.retry_op[n as usize] = Some(op);
        self.procs[n as usize] = ProcState::Retrying;
        self.reschedule(n, 1);
    }

    fn issue_access(&mut self, n: NodeId, addr: Addr, kind: OpKind, op: DriverOp) {
        let cache_latency = self.core.config.cache_latency;
        let state = self.core.caches[n as usize].state(addr);

        match kind {
            OpKind::Read => {
                self.core.stats.reads += 1;
                if state.readable() {
                    self.core.stats.read_hits += 1;
                    self.core.caches[n as usize].touch(addr);
                    if self.wants_read_hits {
                        self.protocol.note_read_hit(n, addr);
                    }
                    if let Some(v) = &self.core.verifier {
                        if let Err(viol) = v.on_read_hit(n, addr) {
                            panic!("{viol} (protocol {:?})", self.protocol.kind());
                        }
                    }
                    self.reschedule(n, cache_latency);
                    return;
                }
                self.core.stats.reads -= 1; // re-counted on the miss path
            }
            OpKind::Write => {
                self.core.stats.writes += 1;
                if state.writable() {
                    self.core.stats.write_hits += 1;
                    self.core.stats.sharers_at_write.record(0);
                    self.core.caches[n as usize].touch(addr);
                    // (is_some + unwrap rather than if-let: `other_holders_into`
                    // needs an immutable borrow of the core in between.)
                    #[allow(clippy::unnecessary_unwrap)]
                    if self.core.verifier.is_some() {
                        self.core
                            .other_holders_into(addr, n, &mut self.holders_scratch);
                        let v = self.core.verifier.as_mut().unwrap();
                        if let Err(viol) = v.on_write_complete(n, addr, &self.holders_scratch) {
                            panic!("{viol} (protocol {:?})", self.protocol.kind());
                        }
                    }
                    self.reschedule(n, cache_latency);
                    return;
                }
                self.core.stats.writes -= 1;
            }
        }

        // A transient line (incoming invalidation collection, or an
        // upgrade in progress) cannot accept a new transaction yet.
        if state.transient() {
            self.retry(n, op);
            return;
        }

        // Upgrade: write to a valid shared copy — no allocation needed.
        if kind == OpKind::Write && state == LineState::V {
            self.begin_miss(n, addr, OpKind::Write);
            return;
        }

        // Genuine miss: allocate a line (possibly evicting a victim).
        match self.core.caches[n as usize].allocate(addr) {
            AllocOutcome::Stalled => {
                self.retry(n, op);
                return;
            }
            AllocOutcome::Evicted { victim, state } => {
                self.core.stats.evictions += 1;
                self.protocol.evict(&mut self.core, n, victim, state);
            }
            AllocOutcome::Fresh | AllocOutcome::AlreadyResident => {}
        }
        self.begin_miss(n, addr, kind);
    }

    fn begin_miss(&mut self, n: NodeId, addr: Addr, kind: OpKind) {
        match kind {
            OpKind::Read => {
                self.core.stats.reads += 1;
                self.core.stats.read_misses += 1;
                self.core.caches[n as usize].set_state(addr, LineState::RmIp);
            }
            OpKind::Write => {
                self.core.stats.writes += 1;
                self.core.stats.write_misses += 1;
                let sharers = self.core.count_other_holders(addr, n);
                self.core.stats.sharers_at_write.record(sharers);
                self.core.caches[n as usize].set_state(addr, LineState::WmIp);
            }
        }
        self.core.caches[n as usize].touch(addr);
        self.core
            .pending_miss
            .insert((n, addr), self.core.queue.now());
        self.procs[n as usize] = ProcState::Blocked;
        self.protocol.start_miss(&mut self.core, n, addr, kind);
    }

    fn op_done(&mut self, n: NodeId, addr: Addr, op: OpKind) {
        if let Some(issued) = self.core.pending_miss.remove(&(n, addr)) {
            let lat = self.core.queue.now() - issued;
            match op {
                OpKind::Read => {
                    self.core.stats.read_miss_latency.record(lat);
                    self.core.metrics.on_read_done(addr, lat);
                }
                OpKind::Write => {
                    self.core.stats.write_miss_latency.record(lat);
                    self.core.metrics.on_write_done(addr, lat);
                }
            }
        }
        // (see note above about the split borrow)
        #[allow(clippy::unnecessary_unwrap)]
        if self.core.verifier.is_some() {
            match op {
                OpKind::Read => self.core.verifier.as_mut().unwrap().on_read_fill(n, addr),
                OpKind::Write => {
                    self.core
                        .other_holders_into(addr, n, &mut self.holders_scratch);
                    let v = self.core.verifier.as_mut().unwrap();
                    if self.protocol.is_update_for(addr) {
                        v.on_write_complete_update(n, addr, &self.holders_scratch);
                    } else if let Err(viol) = v.on_write_complete(n, addr, &self.holders_scratch) {
                        panic!("{viol} (protocol {:?})", self.protocol.kind());
                    }
                }
            }
        }
        self.protocol.note_op_retired(n, addr, op);
        self.procs[n as usize] = ProcState::Running;
        self.reschedule(n, 0);
    }

    fn arrive_barrier(&mut self, n: NodeId, id: u32) {
        let nodes = self.core.config.nodes;
        let sync_latency = self.core.config.sync_latency;
        let b = self.barriers.entry(id).or_default();
        b.waiting.push(n);
        self.procs[n as usize] = ProcState::Blocked;
        if b.waiting.len() as u32 == nodes {
            let waiting = std::mem::take(&mut b.waiting);
            self.core.stats.barriers += 1;
            for w in waiting {
                self.procs[w as usize] = ProcState::Running;
                self.reschedule(w, sync_latency);
            }
        }
    }

    fn acquire_lock(&mut self, n: NodeId, id: u32) {
        let sync_latency = self.core.config.sync_latency;
        let l = self.locks.entry(id).or_default();
        if l.owner.is_none() {
            l.owner = Some(n);
            self.core.stats.lock_acquires += 1;
            self.reschedule(n, sync_latency);
        } else {
            l.waiters.push_back(n);
            self.procs[n as usize] = ProcState::Blocked;
        }
    }

    fn release_lock(&mut self, n: NodeId, id: u32) {
        let sync_latency = self.core.config.sync_latency;
        let l = self
            .locks
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unlock of unknown lock {id}"));
        assert_eq!(l.owner, Some(n), "unlock by non-owner {n} of lock {id}");
        if let Some(next) = l.waiters.pop_front() {
            l.owner = Some(next);
            self.core.stats.lock_acquires += 1;
            self.procs[next as usize] = ProcState::Running;
            self.reschedule(next, sync_latency);
        } else {
            l.owner = None;
        }
        self.reschedule(n, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::ScriptDriver;

    fn run_script(
        nodes: u32,
        kind: ProtocolKind,
        scripts: Vec<Vec<DriverOp>>,
    ) -> (RunOutcome, Machine) {
        let mut m = Machine::new(MachineConfig::test_default(nodes), kind);
        let mut d = ScriptDriver::new(scripts);
        let out = m.run(&mut d);
        (out, m)
    }

    #[test]
    fn single_channel_credit_limit_reproduces_request_reply_deadlock() {
        // Crossed remote reads: node 0 fetches an address homed at node 1
        // and vice versa. With one buffer per (node, channel) and request
        // and reply sharing the channel, each home's ReadReply waits on a
        // credit held by its own outstanding ReadReq — a cyclic wait.
        let mut cfg = MachineConfig::test_default(2);
        cfg.net.vc_credits = 1;
        let scripts = vec![vec![DriverOp::Read(1)], vec![DriverOp::Read(2)]];
        let mut m = Machine::new(cfg, ProtocolKind::FullMap);
        let mut d = ScriptDriver::new(scripts.clone());
        match m.try_run(&mut d) {
            Err(StallError::Deadlock { parked_sends, .. }) => {
                assert!(
                    !parked_sends.is_empty(),
                    "deadlock report must name the parked sends"
                );
                assert!(
                    parked_sends
                        .iter()
                        .any(|(_, s)| s.contains("controller gated")),
                    "the cycle runs through gated controllers: {parked_sends:?}"
                );
            }
            other => panic!("expected request/reply deadlock on one channel, got {other:?}"),
        }
        // Separate request/reply/ack virtual channels break the cycle:
        // the same trace under the same buffer bound completes.
        cfg.net.vcs = 3;
        let mut m = Machine::new(cfg, ProtocolKind::FullMap);
        let mut d = ScriptDriver::new(scripts);
        let out = m
            .try_run(&mut d)
            .expect("virtual channels must break the cyclic wait");
        assert_eq!(out.stats.reads, 2);
    }

    #[test]
    fn single_processor_read_write_roundtrip() {
        let (out, _) = run_script(
            2,
            ProtocolKind::FullMap,
            vec![
                vec![
                    DriverOp::Read(0),
                    DriverOp::Write(0),
                    DriverOp::Read(0),
                    DriverOp::Read(2),
                ],
                vec![],
            ],
        );
        assert_eq!(out.stats.reads, 3);
        assert_eq!(out.stats.writes, 1);
        assert_eq!(out.stats.read_misses, 2);
        assert_eq!(out.stats.write_misses, 1); // V -> E upgrade
        assert_eq!(out.stats.read_hits, 1);
        assert!(out.cycles > 0);
    }

    #[test]
    fn read_miss_latency_includes_network_and_memory() {
        // Node 1 reads address 0 (home node 0): req (1 hop) + 5-cycle
        // memory + reply (1 hop, 16 bytes) + fill.
        let (out, _) = run_script(
            2,
            ProtocolKind::FullMap,
            vec![vec![], vec![DriverOp::Read(0)]],
        );
        let lat = out.stats.read_miss_latency.mean();
        assert!(lat >= 15.0, "latency {lat} too small to be physical");
        assert!(lat <= 60.0, "latency {lat} implausibly large");
    }

    #[test]
    fn hits_are_one_cycle() {
        let (out, _) = run_script(
            2,
            ProtocolKind::FullMap,
            vec![
                vec![DriverOp::Read(0), DriverOp::Read(0), DriverOp::Read(0)],
                vec![],
            ],
        );
        assert_eq!(out.stats.read_hits, 2);
    }

    #[test]
    fn barrier_synchronizes_all_processors() {
        let scripts = (0..4)
            .map(|n| {
                vec![
                    DriverOp::Work(n * 50 + 1),
                    DriverOp::Barrier(0),
                    DriverOp::Read(0),
                ]
            })
            .collect();
        let (out, _) = run_script(4, ProtocolKind::FullMap, scripts);
        assert_eq!(out.stats.barriers, 1);
        assert_eq!(out.stats.reads, 4);
    }

    #[test]
    fn locks_are_mutually_exclusive_and_fair() {
        let scripts = (0..4)
            .map(|_| vec![DriverOp::Lock(7), DriverOp::Write(0), DriverOp::Unlock(7)])
            .collect();
        let (out, _) = run_script(4, ProtocolKind::FullMap, scripts);
        assert_eq!(out.stats.lock_acquires, 4);
        assert_eq!(out.stats.writes, 4);
    }

    #[test]
    fn contended_writes_verify_for_every_protocol() {
        for kind in [
            ProtocolKind::FullMap,
            ProtocolKind::LimitedNB { pointers: 2 },
            ProtocolKind::LimitedB { pointers: 2 },
            ProtocolKind::LimitLess { pointers: 2 },
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
            ProtocolKind::DirTree {
                pointers: 1,
                arity: 2,
            },
        ] {
            let scripts = (0..8u64)
                .map(|n| {
                    vec![
                        DriverOp::Read(0),
                        DriverOp::Read(8),
                        DriverOp::Write((n % 4) * 2),
                        DriverOp::Read(0),
                        DriverOp::Write(0),
                    ]
                })
                .collect();
            let (out, _) = run_script(8, kind, scripts);
            assert!(out.stats.writes > 0, "{kind:?} made no progress");
        }
    }

    #[test]
    fn replacement_storm_with_tiny_cache() {
        // 64-line cache, touch 256 addresses: every protocol must survive
        // constant evictions with verification on.
        for kind in [
            ProtocolKind::FullMap,
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
        ] {
            let scripts = (0..4u64)
                .map(|n| {
                    let mut ops = Vec::new();
                    for i in 0..256u64 {
                        ops.push(DriverOp::Read((i * 4 + n) % 300));
                        if i % 7 == 0 {
                            ops.push(DriverOp::Write((i * 4 + n) % 300));
                        }
                    }
                    ops
                })
                .collect();
            let (out, _) = run_script(4, kind, scripts);
            assert!(
                out.stats.evictions > 0,
                "{kind:?}: storm caused no evictions"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            run_script(
                8,
                ProtocolKind::DirTree {
                    pointers: 4,
                    arity: 2,
                },
                (0..8u64)
                    .map(|n| {
                        vec![
                            DriverOp::Read(0),
                            DriverOp::Work(n + 1),
                            DriverOp::Write(n % 3),
                            DriverOp::Barrier(1),
                            DriverOp::Read(1),
                        ]
                    })
                    .collect(),
            )
            .0
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats.messages, b.stats.messages);
    }

    #[test]
    fn reset_then_reuse_is_bit_identical_to_fresh() {
        // A dirty machine — advanced queue clock, warm caches, controller
        // occupancy (including the snoop-path `ctrl_extra` bookkeeping),
        // protocol directory state — must be indistinguishable from a
        // freshly constructed one after `reset()`. Guards the reset path
        // against the PR-1 class of carry-over bugs.
        let kind = ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        };
        let scripts: Vec<Vec<DriverOp>> = (0..8u64)
            .map(|n| {
                vec![
                    DriverOp::Read(0),
                    DriverOp::Work(n + 1),
                    DriverOp::Write(n % 3),
                    DriverOp::Barrier(1),
                    DriverOp::Read(1),
                    DriverOp::Write(0),
                ]
            })
            .collect();
        let (fresh, _) = run_script(8, kind, scripts.clone());
        let mut m = Machine::new(MachineConfig::test_default(8), kind);
        m.run(&mut ScriptDriver::new(scripts.clone()));
        m.reset();
        let reused = m.run(&mut ScriptDriver::new(scripts));
        // Debug formatting covers every stat, histogram bucket, network
        // counter, and metrics field — a full bit-identity proxy.
        assert_eq!(
            format!("{fresh:?}"),
            format!("{reused:?}"),
            "reset() left state behind"
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn missing_barrier_participant_is_a_deadlock() {
        run_script(
            2,
            ProtocolKind::FullMap,
            vec![vec![DriverOp::Barrier(0)], vec![]],
        );
    }

    #[test]
    fn try_run_reports_deadlock_structurally() {
        let mut m = Machine::new(MachineConfig::test_default(2), ProtocolKind::FullMap);
        let mut d = ScriptDriver::new(vec![vec![DriverOp::Barrier(0)], vec![]]);
        match m.try_run(&mut d) {
            Err(StallError::Deadlock {
                finished,
                nodes,
                blocked,
                ..
            }) => {
                assert_eq!(nodes, 2);
                assert!(finished < nodes);
                assert!(!blocked.is_empty());
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn try_run_reports_livelock_at_the_step_cap() {
        let mut cfg = MachineConfig::test_default(2);
        cfg.max_events = 3;
        let mut m = Machine::new(cfg, ProtocolKind::FullMap);
        let mut d = ScriptDriver::new(vec![
            vec![DriverOp::Read(0), DriverOp::Write(0)],
            vec![DriverOp::Read(0)],
        ]);
        match m.try_run(&mut d) {
            Err(StallError::Livelock { events, .. }) => assert!(events > 3),
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    fn controller_utilization_is_tracked() {
        let (out, _) = run_script(
            4,
            ProtocolKind::FullMap,
            vec![
                vec![DriverOp::Read(0), DriverOp::Write(0)],
                vec![DriverOp::Read(0)],
                vec![DriverOp::Read(0)],
                vec![],
            ],
        );
        // The home of address 0 (node 0) must be the busiest controller.
        assert!(out.stats.max_controller_busy > 0);
        assert!(out.stats.max_controller_busy as f64 >= out.stats.mean_controller_busy);
    }

    #[test]
    fn trace_sink_records_sends_with_arrival_times() {
        let mut m = Machine::new(
            MachineConfig::test_default(2),
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
        );
        m.set_trace(MsgTrace::new(64, None));
        let mut d = ScriptDriver::new(vec![vec![], vec![DriverOp::Read(0)]]);
        m.run(&mut d);
        let t = m.take_trace().expect("trace was installed");
        let events: Vec<_> = t.events().cloned().collect();
        assert!(!events.is_empty(), "a read miss sends messages");
        assert!(events.iter().any(|e| e.label == "read_req"));
        assert!(
            events.iter().all(|e| e.arrival > e.at),
            "network delivery takes time"
        );
        assert!(t.chrome_trace_json().contains("read_req"));
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn metrics_are_empty_when_trace_feature_is_off() {
        let (out, m) = run_script(
            2,
            ProtocolKind::FullMap,
            vec![vec![DriverOp::Read(0), DriverOp::Write(0)], vec![]],
        );
        assert_eq!(out.metrics.total_messages(), 0);
        assert_eq!(out.metrics.read_tx_latency.count(), 0);
        assert_eq!(out.metrics.links, 0);
        assert_eq!(std::mem::size_of_val(m.metrics()), 0, "no-op ZST sink");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn metrics_classify_messages_and_latencies() {
        use dirtree_sim::metrics::MsgClass;
        // Node 1 read-misses on 0 (clean at home 0): ReadReq + DataReply
        // (+ off-critical-path FillAck).
        let (out, _) = run_script(
            2,
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
            vec![vec![], vec![DriverOp::Read(0)]],
        );
        let m = &out.metrics;
        assert_eq!(m.class(MsgClass::ReadReq).count, 1);
        assert_eq!(m.class(MsgClass::ReadReq).to_dir, 1);
        assert_eq!(m.class(MsgClass::DataReply).count, 1);
        assert_eq!(m.class(MsgClass::FillAck).count, 1);
        assert_eq!(m.total_messages(), out.stats.messages);
        // Transaction latency mirrors the stats histogram.
        assert_eq!(
            m.read_tx_latency.count(),
            out.stats.read_miss_latency.count()
        );
        assert_eq!(m.read_tx_latency.sum(), out.stats.read_miss_latency.sum());
        // Link occupancy was observed.
        assert!(m.links > 0);
        assert!(m.total_link_busy > 0);
        assert!(m.max_link_busy <= m.total_link_busy);
        assert_eq!(m.top_blocks[0].0, 0, "block 0 is the only traffic");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn metrics_see_invalidation_waves() {
        use dirtree_sim::metrics::MsgClass;
        // Two sharers, then a third node writes: the home must invalidate,
        // and the wave metrics record depth ≥ 1 with ≥ 1 home-bound ack.
        let (out, _) = run_script(
            4,
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
            vec![
                vec![DriverOp::Read(0), DriverOp::Barrier(0)],
                vec![DriverOp::Read(0), DriverOp::Barrier(0)],
                vec![DriverOp::Barrier(0), DriverOp::Write(0)],
                vec![DriverOp::Barrier(0)],
            ],
        );
        let m = &out.metrics;
        assert!(m.class(MsgClass::Inv).count >= 1);
        assert!(m.class(MsgClass::Ack).count >= 1);
        assert_eq!(m.inv_wave_depth.count(), 1, "one write wave");
        assert!(m.inv_wave_depth.max() >= 1);
        assert!(m.inv_wave_acks.max() >= 1);
        assert_eq!(m.write_tx_latency.count(), 1);
    }

    #[test]
    fn dirty_data_migrates_between_processors() {
        let (out, _) = run_script(
            4,
            ProtocolKind::DirTree {
                pointers: 2,
                arity: 2,
            },
            vec![
                vec![DriverOp::Write(0), DriverOp::Barrier(0)],
                vec![DriverOp::Barrier(0), DriverOp::Read(0), DriverOp::Write(0)],
                vec![DriverOp::Barrier(0)],
                vec![DriverOp::Barrier(0)],
            ],
        );
        assert_eq!(out.stats.writes, 2);
    }
}
