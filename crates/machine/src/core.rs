//! The machine core: event queue, network, caches, memory controllers, and
//! the [`ProtoCtx`] implementation protocols act through.
//!
//! Split from [`crate::machine::Machine`] so the protocol (owned by the
//! machine) can borrow the rest of the state mutably while handling a
//! message.

use crate::config::MachineConfig;
use crate::stats::MachineStats;
use crate::trace::MsgTrace;
use crate::verify::Verifier;
use dirtree_core::cache::Cache;
use dirtree_core::ctx::{ProtoCtx, ProtoEvent};
use dirtree_core::msg::{Msg, MsgKind};
use dirtree_core::types::{Addr, LineState, NodeId, OpKind};
use dirtree_net::Network;
use dirtree_sim::metrics::{Metrics, MsgClass};
use dirtree_sim::{Cycle, EventQueue, FxHashMap};
use std::collections::VecDeque;

/// Machine events.
#[derive(Debug)]
pub enum Ev {
    /// Processor `n` is ready to issue (or retry) an operation.
    Proc(NodeId),
    /// A message reached node `n` (enqueue at its controller).
    Deliver(NodeId, Msg),
    /// Node `n`'s controller finished the occupancy of its queue head.
    CtrlExec(NodeId),
    /// The outstanding access of processor `n` completed.
    OpDone(NodeId, Addr, OpKind),
}

pub struct MachineCore {
    pub config: MachineConfig,
    pub queue: EventQueue<Ev>,
    pub net: Network,
    pub caches: Vec<Cache>,
    pub stats: MachineStats,
    pub verifier: Option<Verifier>,
    /// Observability sink fed by the shared send hook below. A zero-sized
    /// no-op unless the `trace` feature is on.
    pub metrics: Metrics,
    /// Optional structured event trace (Chrome-trace export), also fed by
    /// the send hook.
    pub trace_sink: Option<MsgTrace>,
    /// Issue time of each outstanding miss (latency accounting).
    pub pending_miss: FxHashMap<(NodeId, Addr), Cycle>,
    ctrl_q: Vec<VecDeque<Msg>>,
    ctrl_free: Vec<Cycle>,
    ctrl_scheduled: Vec<bool>,
    /// Extra occupancy requested by the currently running handler.
    ctrl_extra: Cycle,
    /// Total busy cycles per controller (hot-spot diagnostics).
    ctrl_busy: Vec<Cycle>,
}

impl MachineCore {
    /// Event-queue capacity from the machine shape: every node can have a
    /// handful of messages and one processor/controller event in flight.
    fn queue_capacity(config: &MachineConfig) -> usize {
        (config.nodes as usize * 8).max(1024)
    }

    pub fn new(config: MachineConfig) -> Self {
        let n = config.nodes as usize;
        Self {
            queue: EventQueue::with_capacity(Self::queue_capacity(&config)),
            net: Network::new(config.topology.build(config.nodes), config.net),
            caches: (0..n).map(|_| Cache::new(config.cache)).collect(),
            stats: MachineStats::default(),
            verifier: config.verify.then(Verifier::new),
            metrics: Metrics::default(),
            trace_sink: None,
            pending_miss: FxHashMap::default(),
            ctrl_q: (0..n).map(|_| VecDeque::new()).collect(),
            ctrl_free: vec![0; n],
            ctrl_scheduled: vec![false; n],
            ctrl_extra: 0,
            ctrl_busy: vec![0; n],
            config,
        }
    }

    /// Restore the core to its post-construction state so the allocation
    /// (caches, controller queues, route tables) can be reused for another
    /// run. Every field a simulation mutates is covered — the PR-1
    /// bus-latency bug came from a reset path drifting away from the send
    /// path, so the controller-occupancy state (`ctrl_q` / `ctrl_free` /
    /// `ctrl_scheduled` / `ctrl_extra` / `ctrl_busy`) is reset explicitly
    /// and pinned by `machine::tests::reset_then_reuse_is_bit_identical_to_fresh`.
    pub fn reset(&mut self) {
        self.queue = EventQueue::with_capacity(Self::queue_capacity(&self.config));
        self.net.reset();
        for c in &mut self.caches {
            *c = Cache::new(self.config.cache);
        }
        self.stats = MachineStats::default();
        self.verifier = self.config.verify.then(Verifier::new);
        self.metrics = Metrics::default();
        self.trace_sink = None;
        self.pending_miss.clear();
        self.ctrl_q.iter_mut().for_each(VecDeque::clear);
        self.ctrl_free.iter_mut().for_each(|c| *c = 0);
        self.ctrl_scheduled.iter_mut().for_each(|s| *s = false);
        self.ctrl_extra = 0;
        self.ctrl_busy.iter_mut().for_each(|c| *c = 0);
    }

    /// Controller occupancy for a message: directory-bound messages pay the
    /// memory access latency, cache-bound ones the cache latency.
    fn occupancy(&self, msg: &Msg) -> Cycle {
        if msg.kind.to_directory() {
            self.config.mem_latency
        } else {
            self.config.cache_latency
        }
    }

    /// Enqueue a delivered message and make sure the controller will run.
    pub fn deliver(&mut self, node: NodeId, msg: Msg) {
        self.ctrl_q[node as usize].push_back(msg);
        self.schedule_ctrl(node);
    }

    fn schedule_ctrl(&mut self, node: NodeId) {
        let n = node as usize;
        if self.ctrl_scheduled[n] || self.ctrl_q[n].is_empty() {
            return;
        }
        let occ = self.occupancy(self.ctrl_q[n].front().unwrap());
        let start = self.queue.now().max(self.ctrl_free[n]);
        let done = start + occ;
        self.ctrl_busy[n] += occ;
        self.ctrl_free[n] = done;
        self.ctrl_scheduled[n] = true;
        self.queue.push(done, Ev::CtrlExec(node));
    }

    /// Pop the head message whose occupancy elapsed; the caller runs the
    /// protocol handler and then calls [`MachineCore::ctrl_finish`].
    pub fn ctrl_take(&mut self, node: NodeId) -> Msg {
        let n = node as usize;
        debug_assert!(self.ctrl_scheduled[n]);
        self.ctrl_scheduled[n] = false;
        self.ctrl_extra = 0;
        self.ctrl_q[n]
            .pop_front()
            .expect("CtrlExec with empty queue")
    }

    /// Charge occupancy requested by a handler that ran *outside* the
    /// [`MachineCore::ctrl_take`] / [`MachineCore::ctrl_finish`] bracket
    /// (the dedicated snoop port handles messages at delivery time).
    /// Without this, `ctrl_extra` accrued there would silently leak into
    /// the next unrelated `ctrl_finish` and bill the wrong node's
    /// controller. `max` (not overwrite) because this node may also have a
    /// scheduled controller reservation in the future.
    pub fn apply_direct_occupancy(&mut self, node: NodeId) {
        let n = node as usize;
        if self.ctrl_extra > 0 {
            self.ctrl_busy[n] += self.ctrl_extra;
            self.ctrl_free[n] = self.ctrl_free[n].max(self.queue.now()) + self.ctrl_extra;
            self.ctrl_extra = 0;
        }
    }

    /// Apply handler-requested extra occupancy and schedule the next
    /// message if any.
    pub fn ctrl_finish(&mut self, node: NodeId) {
        let n = node as usize;
        if self.ctrl_extra > 0 {
            self.ctrl_busy[n] += self.ctrl_extra;
            self.ctrl_free[n] = self.queue.now() + self.ctrl_extra;
            self.ctrl_extra = 0;
        }
        self.schedule_ctrl(node);
    }

    /// Readable copies of `addr` held by nodes other than `except`,
    /// appended to the caller's scratch buffer — the write-verification
    /// paths reuse one buffer per machine instead of allocating a `Vec`
    /// per checked write (the [`Verifier`] consumes `&[NodeId]` views).
    pub fn other_holders_into(&self, addr: Addr, except: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(
            (0..self.config.nodes)
                .filter(|&m| m != except && self.caches[m as usize].state(addr).readable()),
        );
    }

    /// Number of readable copies of `addr` outside `except` — the
    /// allocation-free variant for pure counting (per-write sharer stats on
    /// the hot path).
    pub fn count_other_holders(&self, addr: Addr, except: NodeId) -> u64 {
        (0..self.config.nodes)
            .filter(|&m| m != except && self.caches[m as usize].state(addr).readable())
            .count() as u64
    }

    /// Busy cycles per memory/cache controller (hot-spot diagnostics).
    pub fn controller_busy(&self) -> &[Cycle] {
        &self.ctrl_busy
    }

    /// The single observability hook: every unicast protocol message flows
    /// through here (from [`ProtoCtx::send`]), so no protocol carries its
    /// own instrumentation. With the `trace` feature off, [`Metrics`] is a
    /// no-op ZST and `trace_sink` stays `None`, so this reduces to one
    /// untaken branch.
    fn record_msg(&mut self, dst: NodeId, msg: &Msg, bytes: u32, arrival: Cycle) {
        let class = msg.kind.class();
        self.metrics
            .on_msg(class, msg.addr, bytes as u64, msg.kind.to_directory());
        if class == MsgClass::Inv {
            // Wave-depth accounting: the tree level a message is received
            // at. Directory protocols flag home-originated waves
            // explicitly; list protocols start chains at the writer.
            let from_home = match &msg.kind {
                MsgKind::Inv { from_dir, .. } | MsgKind::Update { from_dir, .. } => *from_dir,
                _ => msg.src == (msg.addr % self.config.nodes as u64) as NodeId,
            };
            self.metrics.on_inv(msg.addr, msg.src, dst, from_home);
        }
        if matches!(
            msg.kind,
            MsgKind::InvAck { dir: true } | MsgKind::UpdateAck { dir: true }
        ) {
            self.metrics.on_home_ack(msg.addr);
        }
        let now = self.queue.now();
        if let Some(t) = self.trace_sink.as_mut() {
            t.record_timed(now, arrival, dst, msg);
        }
    }

    /// Broadcast counterpart of [`MachineCore::record_msg`]: `wire_msgs`
    /// is 1 on the bus (all snoopers observe one transaction) and n − 1 on
    /// a point-to-point fabric.
    fn record_broadcast(&mut self, msg: &Msg, bytes: u32, wire_msgs: u64, arrival: Cycle) {
        let class = msg.kind.class();
        for _ in 0..wire_msgs {
            self.metrics
                .on_msg(class, msg.addr, bytes as u64, msg.kind.to_directory());
        }
        let now = self.queue.now();
        if let Some(t) = self.trace_sink.as_mut() {
            t.record_timed(now, arrival, msg.src, msg);
        }
    }

    /// All surviving readable copies (for the final verification pass).
    /// Lazily iterated — no collection is materialized.
    pub fn survivors(&self) -> impl Iterator<Item = (NodeId, Addr)> + '_ {
        self.caches.iter().enumerate().flat_map(|(n, cache)| {
            cache
                .resident()
                .filter(|(_, st)| st.readable())
                .map(move |(addr, _)| (n as NodeId, addr))
        })
    }
}

impl ProtoCtx for MachineCore {
    fn now(&self) -> Cycle {
        self.queue.now()
    }

    fn num_nodes(&self) -> u32 {
        self.config.nodes
    }

    fn home_of(&self, addr: Addr) -> NodeId {
        // Shared memory is interleaved across the nodes' memory modules.
        (addr % self.config.nodes as u64) as NodeId
    }

    fn send(&mut self, dst: NodeId, msg: Msg) {
        let bytes = msg
            .kind
            .wire_bytes(self.config.header_bytes, self.config.block_bytes);
        let arrival = self.net.send(self.queue.now(), msg.src, dst, bytes);
        self.stats.messages += 1;
        if matches!(msg.kind, MsgKind::FillAck) {
            self.stats.fill_acks += 1;
        }
        self.stats.bytes += bytes as u64;
        self.record_msg(dst, &msg, bytes, arrival);
        self.queue.push(arrival, Ev::Deliver(dst, msg));
    }

    fn broadcast(&mut self, msg: Msg) -> Cycle {
        let bytes = msg
            .kind
            .wire_bytes(self.config.header_bytes, self.config.block_bytes);
        let arrival = self.net.broadcast(self.queue.now(), msg.src, bytes);
        // One bus transaction, or n − 1 unicasts on a point-to-point
        // fabric (§1's argument in a single line of accounting).
        let wire_msgs = if self.net.config().fabric == dirtree_net::Fabric::Bus {
            1
        } else {
            self.config.nodes as u64 - 1
        };
        self.stats.messages += wire_msgs;
        self.stats.bytes += bytes as u64 * wire_msgs;
        self.record_broadcast(&msg, bytes, wire_msgs, arrival);
        // The original message is moved into the last delivery instead of
        // being cloned once more and dropped: n − 2 clones for n − 1
        // deliveries, and zero for the degenerate 2-node machine.
        let last = (0..self.config.nodes).rev().find(|&d| d != msg.src);
        for dst in 0..self.config.nodes {
            if dst != msg.src && Some(dst) != last {
                self.queue.push(arrival, Ev::Deliver(dst, msg.clone()));
            }
        }
        if let Some(dst) = last {
            self.queue.push(arrival, Ev::Deliver(dst, msg));
        }
        arrival
    }

    fn redeliver(&mut self, node: NodeId, msg: Msg, delay: Cycle) {
        self.queue
            .push(self.queue.now() + delay, Ev::Deliver(node, msg));
    }

    fn occupy(&mut self, _node: NodeId, cycles: Cycle) {
        self.ctrl_extra += cycles;
    }

    fn line_state(&self, node: NodeId, addr: Addr) -> LineState {
        self.caches[node as usize].state(addr)
    }

    fn set_line_state(&mut self, node: NodeId, addr: Addr, state: LineState) {
        self.caches[node as usize].set_state(addr, state);
    }

    fn complete(&mut self, node: NodeId, addr: Addr, op: OpKind) {
        let fill = self.queue.now() + self.config.cache_latency;
        self.queue.push(fill, Ev::OpDone(node, addr, op));
    }

    fn note(&mut self, event: ProtoEvent) {
        self.stats.note(event);
    }
}
