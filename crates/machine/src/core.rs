//! The machine core: event queue, network, caches, memory controllers, and
//! the [`ProtoCtx`] implementation protocols act through.
//!
//! Split from [`crate::machine::Machine`] so the protocol (owned by the
//! machine) can borrow the rest of the state mutably while handling a
//! message.

use crate::config::MachineConfig;
use crate::stats::MachineStats;
use crate::trace::MsgTrace;
use crate::verify::Verifier;
use dirtree_core::cache::Cache;
use dirtree_core::ctx::{ProtoCtx, ProtoEvent};
use dirtree_core::msg::{Msg, MsgKind};
use dirtree_core::types::{Addr, LineState, NodeId, OpKind};
use dirtree_net::{vc_for, Network};
use dirtree_sim::metrics::{Metrics, MsgClass};
use dirtree_sim::{Cycle, EventQueue, FxHashMap};
use std::collections::VecDeque;

/// A protocol send waiting for a `(node, VC)` injection credit (bounded
/// output buffering, `net.vc_credits > 0`). Parked sends hold no network
/// resources; they are dispatched FIFO per channel as credits free up.
struct ParkedSend {
    dst: NodeId,
    msg: Msg,
    vc: u32,
    /// Flit-granularity credit cost of the message
    /// ([`dirtree_net::NetworkConfig::flit_cost`]); the send dispatches
    /// only when the channel pool can cover all of it.
    cost: u32,
    /// Whether the send was issued by a controller handler (inside the
    /// `ctrl_take`/`ctrl_finish` bracket). A handler with parked output
    /// gates its controller: it holds its input message — and that
    /// message's credit — until the output is accepted, which is exactly
    /// the finite-buffer coupling that lets request/reply cycles deadlock
    /// on a single channel.
    from_handler: bool,
}

/// Machine events.
#[derive(Debug)]
pub enum Ev {
    /// Processor `n` is ready to issue (or retry) an operation.
    Proc(NodeId),
    /// A message reached node `n` (enqueue at its controller).
    Deliver(NodeId, Msg),
    /// Node `n`'s controller finished the occupancy of its queue head.
    CtrlExec(NodeId),
    /// The outstanding access of processor `n` completed.
    OpDone(NodeId, Addr, OpKind),
}

pub struct MachineCore {
    pub config: MachineConfig,
    pub queue: EventQueue<Ev>,
    pub net: Network,
    pub caches: Vec<Cache>,
    pub stats: MachineStats,
    pub verifier: Option<Verifier>,
    /// Observability sink fed by the shared send hook below. A zero-sized
    /// no-op unless the `trace` feature is on.
    pub metrics: Metrics,
    /// Optional structured event trace (Chrome-trace export), also fed by
    /// the send hook.
    pub trace_sink: Option<MsgTrace>,
    /// Issue time of each outstanding miss (latency accounting).
    pub pending_miss: FxHashMap<(NodeId, Addr), Cycle>,
    ctrl_q: Vec<VecDeque<Msg>>,
    ctrl_free: Vec<Cycle>,
    ctrl_scheduled: Vec<bool>,
    /// Extra occupancy requested by the currently running handler.
    ctrl_extra: Cycle,
    /// Total busy cycles per controller (hot-spot diagnostics).
    ctrl_busy: Vec<Cycle>,
    /// Per-(node, VC) injection credits in *flits*, laid out
    /// `node * vcs + vc`; empty when sends are unbounded
    /// (`net.vc_credits == 0`, the default). A send debits its
    /// [`dirtree_net::NetworkConfig::flit_cost`], so a block-carrying
    /// packet occupies buffer space proportional to its length instead of
    /// counting as one unit like a header-only control message.
    credits: Vec<u32>,
    /// Sends parked per node, waiting for enough credit on their channel.
    parked: Vec<VecDeque<ParkedSend>>,
    /// Handler-originated parked sends per node; while > 0 the node's
    /// controller is gated (see [`ParkedSend::from_handler`]).
    handler_parked: Vec<u32>,
    /// Credit release deferred by a gated controller: the
    /// `(src, vc, cost)` of the message whose handling finished while its
    /// output was parked.
    deferred_release: Vec<Option<(NodeId, u32, u32)>>,
    /// `(src, vc, cost)` of the message currently inside each node's
    /// `ctrl_take`/`ctrl_finish` bracket, credited back at finish.
    in_flight: Vec<Option<(NodeId, u32, u32)>>,
    /// Node whose controller handler is currently executing (distinguishes
    /// handler sends from processor-side sends for parking).
    current_ctrl: Option<NodeId>,
}

impl MachineCore {
    /// Event-queue capacity from the machine shape: every node can have a
    /// handful of messages and one processor/controller event in flight.
    fn queue_capacity(config: &MachineConfig) -> usize {
        (config.nodes as usize * 8).max(1024)
    }

    /// Initial per-(node, VC) credit pools: empty (unbounded) unless the
    /// config bounds sends, else `vc_credits` per pool.
    fn fresh_credits(config: &MachineConfig) -> Vec<u32> {
        if config.net.vc_credits == 0 {
            Vec::new()
        } else {
            let pools = config.nodes as usize * config.net.vc_count() as usize;
            vec![config.net.vc_credits; pools]
        }
    }

    pub fn new(config: MachineConfig) -> Self {
        let n = config.nodes as usize;
        Self {
            queue: EventQueue::with_capacity(Self::queue_capacity(&config)),
            net: Network::new(config.topology.build(config.nodes), config.net),
            caches: (0..n).map(|_| Cache::new(config.cache)).collect(),
            stats: MachineStats::default(),
            verifier: config.verify.then(Verifier::new),
            metrics: Metrics::default(),
            trace_sink: None,
            pending_miss: FxHashMap::default(),
            ctrl_q: (0..n).map(|_| VecDeque::new()).collect(),
            ctrl_free: vec![0; n],
            ctrl_scheduled: vec![false; n],
            ctrl_extra: 0,
            ctrl_busy: vec![0; n],
            credits: Self::fresh_credits(&config),
            parked: (0..n).map(|_| VecDeque::new()).collect(),
            handler_parked: vec![0; n],
            deferred_release: vec![None; n],
            in_flight: vec![None; n],
            current_ctrl: None,
            config,
        }
    }

    /// Restore the core to its post-construction state so the allocation
    /// (caches, controller queues, route tables) can be reused for another
    /// run. Every field a simulation mutates is covered — the PR-1
    /// bus-latency bug came from a reset path drifting away from the send
    /// path, so the controller-occupancy state (`ctrl_q` / `ctrl_free` /
    /// `ctrl_scheduled` / `ctrl_extra` / `ctrl_busy`) is reset explicitly
    /// and pinned by `machine::tests::reset_then_reuse_is_bit_identical_to_fresh`.
    pub fn reset(&mut self) {
        self.queue = EventQueue::with_capacity(Self::queue_capacity(&self.config));
        self.net.reset();
        for c in &mut self.caches {
            *c = Cache::new(self.config.cache);
        }
        self.stats = MachineStats::default();
        self.verifier = self.config.verify.then(Verifier::new);
        self.metrics = Metrics::default();
        self.trace_sink = None;
        self.pending_miss.clear();
        self.ctrl_q.iter_mut().for_each(VecDeque::clear);
        self.ctrl_free.iter_mut().for_each(|c| *c = 0);
        self.ctrl_scheduled.iter_mut().for_each(|s| *s = false);
        self.ctrl_extra = 0;
        self.ctrl_busy.iter_mut().for_each(|c| *c = 0);
        self.credits = Self::fresh_credits(&self.config);
        self.parked.iter_mut().for_each(VecDeque::clear);
        self.handler_parked.iter_mut().for_each(|c| *c = 0);
        self.deferred_release.iter_mut().for_each(|r| *r = None);
        self.in_flight.iter_mut().for_each(|r| *r = None);
        self.current_ctrl = None;
    }

    /// Controller occupancy for a message: directory-bound messages pay the
    /// memory access latency, cache-bound ones the cache latency.
    fn occupancy(&self, msg: &Msg) -> Cycle {
        if msg.kind.to_directory() {
            self.config.mem_latency
        } else {
            self.config.cache_latency
        }
    }

    /// Enqueue a delivered message and make sure the controller will run.
    pub fn deliver(&mut self, node: NodeId, msg: Msg) {
        self.ctrl_q[node as usize].push_back(msg);
        self.schedule_ctrl(node);
    }

    fn schedule_ctrl(&mut self, node: NodeId) {
        let n = node as usize;
        if self.ctrl_scheduled[n] || self.ctrl_q[n].is_empty() {
            return;
        }
        if self.handler_parked[n] > 0 {
            // The controller's last output is still parked on a full
            // channel: it holds its input until the output is accepted
            // (re-scheduled by `release_credit` when the park drains).
            return;
        }
        let occ = self.occupancy(self.ctrl_q[n].front().unwrap());
        let start = self.queue.now().max(self.ctrl_free[n]);
        let done = start + occ;
        self.ctrl_busy[n] += occ;
        self.ctrl_free[n] = done;
        self.ctrl_scheduled[n] = true;
        self.queue.push(done, Ev::CtrlExec(node));
    }

    /// Pop the head message whose occupancy elapsed; the caller runs the
    /// protocol handler and then calls [`MachineCore::ctrl_finish`].
    pub fn ctrl_take(&mut self, node: NodeId) -> Msg {
        let n = node as usize;
        debug_assert!(self.ctrl_scheduled[n]);
        self.ctrl_scheduled[n] = false;
        self.ctrl_extra = 0;
        let msg = self.ctrl_q[n]
            .pop_front()
            .expect("CtrlExec with empty queue");
        if !self.credits.is_empty() {
            self.current_ctrl = Some(node);
            if msg.src != node {
                // Remember whose credit this message consumed; it is
                // released when the handler finishes (or deferred if the
                // handler's own output parks).
                let vc = vc_for(msg.kind.class(), self.config.net.vcs);
                self.in_flight[n] = Some((msg.src, vc, self.flit_cost(&msg)));
            }
        }
        msg
    }

    /// Flit-granularity credit cost of a message (only meaningful when
    /// sends are credit-bounded).
    fn flit_cost(&self, msg: &Msg) -> u32 {
        let bytes = msg
            .kind
            .wire_bytes(self.config.header_bytes, self.config.block_bytes);
        self.config.net.flit_cost(bytes)
    }

    /// Charge occupancy requested by a handler that ran *outside* the
    /// [`MachineCore::ctrl_take`] / [`MachineCore::ctrl_finish`] bracket
    /// (the dedicated snoop port handles messages at delivery time).
    /// Without this, `ctrl_extra` accrued there would silently leak into
    /// the next unrelated `ctrl_finish` and bill the wrong node's
    /// controller. `max` (not overwrite) because this node may also have a
    /// scheduled controller reservation in the future.
    pub fn apply_direct_occupancy(&mut self, node: NodeId) {
        let n = node as usize;
        if self.ctrl_extra > 0 {
            self.ctrl_busy[n] += self.ctrl_extra;
            self.ctrl_free[n] = self.ctrl_free[n].max(self.queue.now()) + self.ctrl_extra;
            self.ctrl_extra = 0;
        }
    }

    /// Apply handler-requested extra occupancy and schedule the next
    /// message if any.
    pub fn ctrl_finish(&mut self, node: NodeId) {
        let n = node as usize;
        if self.ctrl_extra > 0 {
            self.ctrl_busy[n] += self.ctrl_extra;
            self.ctrl_free[n] = self.queue.now() + self.ctrl_extra;
            self.ctrl_extra = 0;
        }
        if !self.credits.is_empty() {
            self.current_ctrl = None;
            let release = self.in_flight[n].take();
            if self.handler_parked[n] > 0 {
                // The handler's output is parked: hold the input message's
                // credit (and the controller) until the channel accepts
                // it. With request and reply sharing one channel this is
                // the cyclic-wait edge of the request/reply deadlock.
                self.deferred_release[n] = release;
                return;
            }
            if let Some((src, vc, cost)) = release {
                self.release_credit(src, vc, cost);
            }
        }
        self.schedule_ctrl(node);
    }

    /// Return `cost` flits of `(node, vc)` credit, then drain that node's
    /// parked sends on the channel — oldest first, stopping at the first
    /// one the pool cannot cover, so per-channel FIFO order (and the
    /// per-(src, dst) delivery order protocols rely on) is preserved.
    /// Dispatching a parked handler send can un-gate its controller and
    /// trigger *its* deferred release, so the cascade runs on an explicit
    /// worklist.
    fn release_credit(&mut self, node: NodeId, vc: u32, cost: u32) {
        let vcs = self.config.net.vc_count() as usize;
        let mut work = vec![(node, vc, cost)];
        while let Some((node, vc, cost)) = work.pop() {
            let n = node as usize;
            self.credits[n * vcs + vc as usize] += cost;
            while let Some(pos) = self.parked[n].iter().position(|p| p.vc == vc) {
                let pool = &mut self.credits[n * vcs + vc as usize];
                if *pool < self.parked[n][pos].cost {
                    break;
                }
                *pool -= self.parked[n][pos].cost;
                let p = self.parked[n].remove(pos).expect("position() is in range");
                if p.from_handler {
                    self.handler_parked[n] -= 1;
                    if self.handler_parked[n] == 0 {
                        if let Some(r) = self.deferred_release[n].take() {
                            work.push(r);
                        }
                        self.schedule_ctrl(node);
                    }
                }
                self.dispatch_send(p.dst, p.msg, p.vc);
            }
        }
    }

    /// Take `cost` flits of `(node, vc)` send credit if the pool covers
    /// all of them.
    fn try_take_credit(&mut self, node: NodeId, vc: u32, cost: u32) -> bool {
        let vcs = self.config.net.vc_count() as usize;
        let c = &mut self.credits[node as usize * vcs + vc as usize];
        if *c < cost {
            false
        } else {
            *c -= cost;
            true
        }
    }

    /// Put a message on the wire and schedule its delivery — the tail of
    /// [`ProtoCtx::send`], shared with credit-release dispatch of parked
    /// sends.
    fn dispatch_send(&mut self, dst: NodeId, msg: Msg, vc: u32) {
        let bytes = msg
            .kind
            .wire_bytes(self.config.header_bytes, self.config.block_bytes);
        let arrival = self.net.send_vc(self.queue.now(), msg.src, dst, bytes, vc);
        self.stats.messages += 1;
        if matches!(msg.kind, MsgKind::FillAck) {
            self.stats.fill_acks += 1;
        }
        self.stats.bytes += bytes as u64;
        self.record_msg(dst, &msg, bytes, arrival);
        self.queue.push(arrival, Ev::Deliver(dst, msg));
    }

    /// Parked sends per node, as `(node, description)` — actionable context
    /// for [`crate::machine::StallError::Deadlock`] reports.
    pub fn parked_summary(&self) -> Vec<(u32, String)> {
        self.parked
            .iter()
            .enumerate()
            .flat_map(|(n, q)| {
                q.iter().map(move |p| {
                    (
                        n as u32,
                        format!(
                            "{} -> node {} on vc {} ({})",
                            p.msg.kind.label(),
                            p.dst,
                            p.vc,
                            if p.from_handler {
                                "handler output, controller gated"
                            } else {
                                "processor request"
                            }
                        ),
                    )
                })
            })
            .collect()
    }

    /// Readable copies of `addr` held by nodes other than `except`,
    /// appended to the caller's scratch buffer — the write-verification
    /// paths reuse one buffer per machine instead of allocating a `Vec`
    /// per checked write (the [`Verifier`] consumes `&[NodeId]` views).
    pub fn other_holders_into(&self, addr: Addr, except: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(
            (0..self.config.nodes)
                .filter(|&m| m != except && self.caches[m as usize].state(addr).readable()),
        );
    }

    /// Number of readable copies of `addr` outside `except` — the
    /// allocation-free variant for pure counting (per-write sharer stats on
    /// the hot path).
    pub fn count_other_holders(&self, addr: Addr, except: NodeId) -> u64 {
        (0..self.config.nodes)
            .filter(|&m| m != except && self.caches[m as usize].state(addr).readable())
            .count() as u64
    }

    /// Busy cycles per memory/cache controller (hot-spot diagnostics).
    pub fn controller_busy(&self) -> &[Cycle] {
        &self.ctrl_busy
    }

    /// The single observability hook: every unicast protocol message flows
    /// through here (from [`ProtoCtx::send`]), so no protocol carries its
    /// own instrumentation. With the `trace` feature off, [`Metrics`] is a
    /// no-op ZST and `trace_sink` stays `None`, so this reduces to one
    /// untaken branch.
    fn record_msg(&mut self, dst: NodeId, msg: &Msg, bytes: u32, arrival: Cycle) {
        let class = msg.kind.class();
        self.metrics
            .on_msg(class, msg.addr, bytes as u64, msg.kind.to_directory());
        if class == MsgClass::Inv {
            // Wave-depth accounting: the tree level a message is received
            // at. Directory protocols flag home-originated waves
            // explicitly; list protocols start chains at the writer.
            let from_home = match &msg.kind {
                MsgKind::Inv { from_dir, .. } | MsgKind::Update { from_dir, .. } => *from_dir,
                _ => msg.src == (msg.addr % self.config.nodes as u64) as NodeId,
            };
            self.metrics.on_inv(msg.addr, msg.src, dst, from_home);
        }
        if matches!(
            msg.kind,
            MsgKind::InvAck { dir: true } | MsgKind::UpdateAck { dir: true }
        ) {
            self.metrics.on_home_ack(msg.addr);
        }
        let now = self.queue.now();
        if let Some(t) = self.trace_sink.as_mut() {
            t.record_timed(now, arrival, dst, msg);
        }
    }

    /// Broadcast counterpart of [`MachineCore::record_msg`]: `wire_msgs`
    /// is 1 on the bus (all snoopers observe one transaction) and n − 1 on
    /// a point-to-point fabric.
    fn record_broadcast(&mut self, msg: &Msg, bytes: u32, wire_msgs: u64, arrival: Cycle) {
        let class = msg.kind.class();
        for _ in 0..wire_msgs {
            self.metrics
                .on_msg(class, msg.addr, bytes as u64, msg.kind.to_directory());
        }
        let now = self.queue.now();
        if let Some(t) = self.trace_sink.as_mut() {
            t.record_timed(now, arrival, msg.src, msg);
        }
    }

    /// All surviving readable copies (for the final verification pass).
    /// Lazily iterated — no collection is materialized.
    pub fn survivors(&self) -> impl Iterator<Item = (NodeId, Addr)> + '_ {
        self.caches.iter().enumerate().flat_map(|(n, cache)| {
            cache
                .resident()
                .filter(|(_, st)| st.readable())
                .map(move |(addr, _)| (n as NodeId, addr))
        })
    }
}

impl ProtoCtx for MachineCore {
    fn now(&self) -> Cycle {
        self.queue.now()
    }

    fn num_nodes(&self) -> u32 {
        self.config.nodes
    }

    fn home_of(&self, addr: Addr) -> NodeId {
        // Shared memory is interleaved across the nodes' memory modules.
        (addr % self.config.nodes as u64) as NodeId
    }

    fn send(&mut self, dst: NodeId, msg: Msg) {
        let vc = vc_for(msg.kind.class(), self.config.net.vcs);
        if !self.credits.is_empty() && msg.src != dst {
            // A send must park when the pool cannot cover its flit cost —
            // and also when older sends are already parked on the channel,
            // so a short message never overtakes a longer parked one
            // (per-channel FIFO keeps the (src, dst) delivery order
            // protocols rely on). A park from inside a handler
            // additionally gates the node's controller — the handler
            // cannot retire until its output is on the wire.
            let cost = self.flit_cost(&msg);
            let queued = self.parked[msg.src as usize].iter().any(|p| p.vc == vc);
            if queued || !self.try_take_credit(msg.src, vc, cost) {
                let from_handler = self.current_ctrl == Some(msg.src);
                if from_handler {
                    self.handler_parked[msg.src as usize] += 1;
                }
                self.parked[msg.src as usize].push_back(ParkedSend {
                    dst,
                    msg,
                    vc,
                    cost,
                    from_handler,
                });
                return;
            }
        }
        self.dispatch_send(dst, msg, vc);
    }

    fn broadcast(&mut self, msg: Msg) -> Cycle {
        let bytes = msg
            .kind
            .wire_bytes(self.config.header_bytes, self.config.block_bytes);
        // Broadcasts are credit-exempt: the bus snoop is a single atomic
        // transaction, and the point-to-point fan-out models hardware
        // multicast rather than n − 1 buffered unicasts.
        let vc = vc_for(msg.kind.class(), self.config.net.vcs);
        let arrival = self.net.broadcast_vc(self.queue.now(), msg.src, bytes, vc);
        // One bus transaction, or n − 1 unicasts on a point-to-point
        // fabric (§1's argument in a single line of accounting).
        let wire_msgs = if self.net.config().fabric == dirtree_net::Fabric::Bus {
            1
        } else {
            self.config.nodes as u64 - 1
        };
        self.stats.messages += wire_msgs;
        self.stats.bytes += bytes as u64 * wire_msgs;
        self.record_broadcast(&msg, bytes, wire_msgs, arrival);
        // The original message is moved into the last delivery instead of
        // being cloned once more and dropped: n − 2 clones for n − 1
        // deliveries, and zero for the degenerate 2-node machine.
        let last = (0..self.config.nodes).rev().find(|&d| d != msg.src);
        for dst in 0..self.config.nodes {
            if dst != msg.src && Some(dst) != last {
                self.queue.push(arrival, Ev::Deliver(dst, msg.clone()));
            }
        }
        if let Some(dst) = last {
            self.queue.push(arrival, Ev::Deliver(dst, msg));
        }
        arrival
    }

    fn redeliver(&mut self, node: NodeId, msg: Msg, delay: Cycle) {
        self.queue
            .push(self.queue.now() + delay, Ev::Deliver(node, msg));
    }

    fn occupy(&mut self, _node: NodeId, cycles: Cycle) {
        self.ctrl_extra += cycles;
    }

    fn line_state(&self, node: NodeId, addr: Addr) -> LineState {
        self.caches[node as usize].state(addr)
    }

    fn set_line_state(&mut self, node: NodeId, addr: Addr, state: LineState) {
        self.caches[node as usize].set_state(addr, state);
    }

    fn complete(&mut self, node: NodeId, addr: Addr, op: OpKind) {
        let fill = self.queue.now() + self.config.cache_latency;
        self.queue.push(fill, Ev::OpDone(node, addr, op));
    }

    fn note(&mut self, event: ProtoEvent) {
        self.stats.note(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-node core with 64-bit links so an 8-byte control header is one
    /// flit and a 16-byte data packet is two, and a `credits`-flit pool.
    fn core_with_credits(credits: u32) -> MachineCore {
        let mut cfg = MachineConfig::paper_default(2);
        cfg.net.link_width_bits = 64;
        cfg.net.vc_credits = credits;
        MachineCore::new(cfg)
    }

    fn control(src: NodeId) -> Msg {
        Msg {
            addr: 0,
            src,
            kind: MsgKind::ReadReq { requester: src },
        }
    }

    fn data(src: NodeId) -> Msg {
        Msg {
            addr: 0,
            src,
            kind: MsgKind::WbEvict,
        }
    }

    #[test]
    fn flit_cost_scales_with_length_and_clamps_to_pool() {
        let core = core_with_credits(2);
        assert_eq!(core.flit_cost(&control(0)), 1);
        assert_eq!(core.flit_cost(&data(0)), 2);
        // A packet longer than the whole pool takes the full pool.
        assert_eq!(core_with_credits(1).flit_cost(&data(0)), 1);
    }

    #[test]
    fn long_packet_cannot_overcommit_a_credited_channel() {
        // Pool of 2 flits: one control send leaves 1 flit, which cannot
        // cover a 2-flit data packet — under the old whole-message
        // accounting both would have been dispatched.
        let mut core = core_with_credits(2);
        core.send(1, control(0));
        assert_eq!(core.stats.messages, 1);
        core.send(1, data(0));
        assert_eq!(
            core.stats.messages, 1,
            "2-flit send into 1 free flit must park"
        );
        assert_eq!(core.parked_summary().len(), 1);
        // Returning the control flit makes the data packet affordable.
        core.release_credit(0, 0, 1);
        assert_eq!(core.stats.messages, 2);
        assert!(core.parked_summary().is_empty());
        assert_eq!(
            core.credits[0], 0,
            "pool exactly drained by the 2-flit packet"
        );
    }

    #[test]
    fn short_send_does_not_overtake_a_parked_long_one() {
        let mut core = core_with_credits(2);
        core.send(1, data(0)); // dispatched, pool 0
        core.send(1, data(0)); // parks (cost 2)
        core.send(1, control(0)); // must queue behind it, not sneak into a freed flit
        assert_eq!(core.stats.messages, 1);
        assert_eq!(core.parked_summary().len(), 2);
        core.release_credit(0, 0, 1);
        assert_eq!(
            core.stats.messages, 1,
            "1 free flit covers the control send but the older 2-flit park goes first"
        );
        core.release_credit(0, 0, 1);
        assert_eq!(
            core.stats.messages, 2,
            "2 free flits cover exactly the older data packet"
        );
        core.release_credit(0, 0, 1);
        assert_eq!(core.stats.messages, 3, "the control send drains last");
        assert_eq!(core.credits[0], 0);
    }
}
