//! Sequential-consistency witness — re-exported from `dirtree-core`.
//!
//! The witness logic lives in [`dirtree_core::verify`] so that the machine
//! and the exhaustive model checker (`dirtree-check`) share one
//! implementation of the SWMR and data-freshness invariants and cannot
//! drift apart.

pub use dirtree_core::verify::{Verifier, Violation, ViolationKind};
