//! Machine-level statistics.

use dirtree_core::ctx::ProtoEvent;
use dirtree_sim::{Cycle, Histogram};

/// Counters accumulated over a run.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Total simulated cycles (time of the last event).
    pub cycles: Cycle,
    pub reads: u64,
    pub writes: u64,
    pub read_hits: u64,
    pub write_hits: u64,
    pub read_misses: u64,
    pub write_misses: u64,
    /// Protocol messages injected into the network.
    pub messages: u64,
    /// Off-critical-path fill acknowledgements (see DESIGN.md §6); the
    /// paper's Table 1 counts exclude these.
    pub fill_acks: u64,
    /// Bytes injected into the network.
    pub bytes: u64,
    /// Copies killed by write invalidations.
    pub invalidations: u64,
    /// Copies killed by replacements (Replace_INV subtree kills, pointer
    /// evictions, list roll-outs).
    pub replacement_invalidations: u64,
    /// LimitLESS software traps.
    pub software_traps: u64,
    /// Dir_iB broadcasts.
    pub broadcasts: u64,
    /// Dir_iTree_k read-miss tree merges (case 3).
    pub tree_merges: u64,
    /// Dir_iTree_k read-miss push-downs (case 4).
    pub tree_push_downs: u64,
    /// Victim lines displaced from caches.
    pub evictions: u64,
    /// Read-miss latency (issue → completion), cycles.
    pub read_miss_latency: Histogram,
    /// Write-miss latency (issue → completion), cycles.
    pub write_miss_latency: Histogram,
    /// Copies held by *other* processors at the instant of each write
    /// (the Weber-Gupta "invalidations per write" profile the paper's
    /// i = 4 design choice rests on).
    pub sharers_at_write: Histogram,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Lock acquisitions granted.
    pub lock_acquires: u64,
    /// Busiest controller's busy cycles (home hot-spot indicator).
    pub max_controller_busy: u64,
    /// Mean controller busy cycles across nodes.
    pub mean_controller_busy: f64,
    /// Simulation events delivered over the run (simulator throughput
    /// denominator: wall-seconds / `events` = cost per event).
    pub events: u64,
    /// High-water mark of the event queue (deterministic — a property of
    /// the schedule, not the host — so safe in sweep records).
    pub peak_queue_depth: u64,
    /// Adaptive protocol: write intervals classified per sharing pattern
    /// (all zero for static protocols).
    pub pattern_producer_consumer: u64,
    pub pattern_read_mostly: u64,
    pub pattern_migratory: u64,
    pub pattern_write_shared: u64,
    pub pattern_private: u64,
    /// Adaptive protocol: blocks switched invalidate → update.
    pub mode_flips_to_update: u64,
    /// Adaptive protocol: blocks switched update → invalidate.
    pub mode_flips_to_invalidate: u64,
}

impl MachineStats {
    pub fn note(&mut self, ev: ProtoEvent) {
        match ev {
            ProtoEvent::Invalidation => self.invalidations += 1,
            ProtoEvent::ReplacementInvalidation => self.replacement_invalidations += 1,
            ProtoEvent::SoftwareTrap => self.software_traps += 1,
            ProtoEvent::Broadcast => self.broadcasts += 1,
            ProtoEvent::TreeMerge => self.tree_merges += 1,
            ProtoEvent::TreePushDown => self.tree_push_downs += 1,
            ProtoEvent::PatternSample(p) => {
                use dirtree_core::adapt::SharingPattern as S;
                match p {
                    S::ProducerConsumer => self.pattern_producer_consumer += 1,
                    S::ReadMostly => self.pattern_read_mostly += 1,
                    S::Migratory => self.pattern_migratory += 1,
                    S::WriteShared => self.pattern_write_shared += 1,
                    S::Private => self.pattern_private += 1,
                }
            }
            ProtoEvent::ModeFlip { to_update } => {
                if to_update {
                    self.mode_flips_to_update += 1;
                } else {
                    self.mode_flips_to_invalidate += 1;
                }
            }
        }
    }

    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Critical-path protocol messages (excludes fill acknowledgements).
    pub fn critical_messages(&self) -> u64 {
        self.messages - self.fill_acks
    }

    pub fn miss_rate(&self) -> f64 {
        let misses = self.read_misses + self.write_misses;
        if self.total_ops() == 0 {
            0.0
        } else {
            misses as f64 / self.total_ops() as f64
        }
    }

    /// A compact single-line summary for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "cycles={} ops={} misses={} ({:.2}%) msgs={} invs={} repl_invs={}",
            self.cycles,
            self.total_ops(),
            self.read_misses + self.write_misses,
            self.miss_rate() * 100.0,
            self.messages,
            self.invalidations,
            self.replacement_invalidations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_routes_events() {
        let mut s = MachineStats::default();
        s.note(ProtoEvent::Invalidation);
        s.note(ProtoEvent::TreeMerge);
        s.note(ProtoEvent::TreeMerge);
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.tree_merges, 2);
    }

    #[test]
    fn miss_rate_is_fraction_of_ops() {
        let s = MachineStats {
            reads: 90,
            writes: 10,
            read_misses: 5,
            write_misses: 5,
            ..Default::default()
        };
        assert!((s.miss_rate() - 0.1).abs() < 1e-12);
        assert!(s.summary().contains("ops=100"));
    }

    #[test]
    fn empty_stats_are_well_defined() {
        let s = MachineStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.total_ops(), 0);
    }
}
