//! Machine configuration (defaults reproduce Table 5 of the paper).

use dirtree_core::cache::CacheConfig;
use dirtree_core::protocol::ProtocolParams;
use dirtree_net::{NetworkConfig, Topology};
use dirtree_sim::Cycle;

/// Which interconnect topology the machine instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// Binary n-cube (the paper's network; `nodes` must be a power of 2).
    Hypercube,
    /// General k-ary n-cube with the given radix (`nodes` must be `k^m`).
    KaryNcube { radix: u32 },
}

impl TopologyKind {
    /// Build the topology for `nodes` processors.
    pub fn build(self, nodes: u32) -> Topology {
        match self {
            TopologyKind::Hypercube => Topology::hypercube(nodes),
            TopologyKind::KaryNcube { radix } => {
                let mut dims = 0;
                let mut n = 1u64;
                while n < nodes as u64 {
                    n *= radix as u64;
                    dims += 1;
                }
                assert_eq!(n, nodes as u64, "nodes must be a power of the radix");
                Topology::kary_ncube(radix, dims.max(1))
            }
        }
    }
}

/// Full configuration of a simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Number of processors (must be a power of two for the binary n-cube).
    pub nodes: u32,
    /// Cache geometry (Table 5: 16 KB fully associative, 8-byte blocks).
    pub cache: CacheConfig,
    /// Data block size in bytes (Table 5: 8).
    pub block_bytes: u32,
    /// Control-message header size in bytes.
    pub header_bytes: u32,
    /// Memory access latency at a directory controller (Table 5: 5).
    pub mem_latency: Cycle,
    /// Cache access latency (Table 5: 1).
    pub cache_latency: Cycle,
    /// Network timing (Table 5: 8-bit links, 1-cycle switches).
    pub net: NetworkConfig,
    /// Interconnect topology (Table 5: binary n-cube).
    pub topology: TopologyKind,
    /// Protocol tunables (LimitLESS trap cost, Dir_iTree_k ablations).
    pub protocol: ProtocolParams,
    /// Cost of a barrier release / lock grant by the sync hardware.
    pub sync_latency: Cycle,
    /// Run the sequential-consistency witness on every operation.
    pub verify: bool,
    /// Abort the run if this many events are processed (livelock guard;
    /// generously above any legitimate run for the configured workloads).
    pub max_events: u64,
}

impl MachineConfig {
    /// The paper's simulated machine (Table 5) at a given size.
    pub fn paper_default(nodes: u32) -> Self {
        Self {
            nodes,
            cache: CacheConfig::paper_default(),
            block_bytes: 8,
            header_bytes: 8,
            mem_latency: 5,
            cache_latency: 1,
            net: NetworkConfig::default(),
            topology: TopologyKind::Hypercube,
            protocol: ProtocolParams::default(),
            sync_latency: 4,
            verify: false,
            max_events: 20_000_000_000,
        }
    }

    /// A small configuration for unit tests: tiny cache to exercise
    /// replacements, verification on.
    pub fn test_default(nodes: u32) -> Self {
        Self {
            nodes,
            cache: CacheConfig {
                lines: 64,
                associativity: 64,
            },
            verify: true,
            max_events: 200_000_000,
            ..Self::paper_default(nodes)
        }
    }

    /// A short stable fingerprint of the configuration, printed by the
    /// experiment binaries for reproducibility.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = dirtree_sim::hash::FxHasher::default();
        self.nodes.hash(&mut h);
        self.cache.lines.hash(&mut h);
        self.cache.associativity.hash(&mut h);
        self.block_bytes.hash(&mut h);
        self.header_bytes.hash(&mut h);
        self.mem_latency.hash(&mut h);
        self.cache_latency.hash(&mut h);
        self.net.switch_delay.hash(&mut h);
        self.net.link_width_bits.hash(&mut h);
        self.net.contention.hash(&mut h);
        self.sync_latency.hash(&mut h);
        // Hashed only when non-default so every fingerprint printed before
        // virtual channels existed is preserved verbatim.
        if self.net.vc_nondefault() {
            self.net.vcs.hash(&mut h);
            self.net.adaptive.hash(&mut h);
            self.net.vc_credits.hash(&mut h);
        }
        // Same idiom for the adaptive-protocol thresholds.
        if self.protocol.adapt_nondefault() {
            self.protocol.adapt_flip_up.hash(&mut h);
            self.protocol.adapt_flip_down.hash(&mut h);
            self.protocol.adapt_saturation.hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table5() {
        let c = MachineConfig::paper_default(32);
        assert_eq!(c.cache.lines * c.block_bytes as usize, 16 * 1024);
        assert_eq!(c.block_bytes, 8);
        assert_eq!(c.mem_latency, 5);
        assert_eq!(c.cache_latency, 1);
        assert_eq!(c.net.link_width_bits, 8);
        assert_eq!(c.net.switch_delay, 1);
    }

    #[test]
    fn topology_kinds_build() {
        assert_eq!(TopologyKind::Hypercube.build(16).num_nodes(), 16);
        let t = TopologyKind::KaryNcube { radix: 4 }.build(16);
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(t.radix(), 4);
        assert_eq!(t.dimensions(), 2);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = MachineConfig::paper_default(32);
        let b = MachineConfig::paper_default(32);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = MachineConfig::paper_default(16);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn vc_fields_extend_fingerprint_only_when_nondefault() {
        let a = MachineConfig::paper_default(32);
        let mut b = a;
        b.net.vcs = 1; // explicit single channel == the pre-VC default
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.net.vcs = 3;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a;
        c.net.adaptive = true;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a;
        d.net.vc_credits = 1;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}
