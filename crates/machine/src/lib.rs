//! # dirtree-machine — the simulated shared-memory multiprocessor
//!
//! Ties the pieces together into a cycle-level machine in the style of the
//! paper's Proteus setup (Table 5): one processor + cache + memory module
//! per node of a wormhole-routed binary n-cube, a directory coherence
//! protocol from `dirtree-core`, and per-node memory controllers that
//! serialize directory accesses (5 cycles each).
//!
//! Workloads drive the machine through the [`Driver`] trait: the machine
//! asks the driver for the next operation of a processor whenever that
//! processor becomes ready. `dirtree-workloads` implements an
//! execution-driven driver on top of rendezvous threads; [`ScriptDriver`]
//! provides scripted per-node operation lists for tests and
//! microbenchmarks.
//!
//! With [`MachineConfig::verify`] enabled, every completed operation is
//! checked against a sequential-consistency witness: writes assert the
//! single-writer invariant machine-wide, reads assert their copy is
//! current, and the final state asserts that no stale valid copy survived.

pub mod config;
pub mod core;
pub mod driver;
pub mod machine;
pub mod stats;
pub mod trace;
pub mod verify;

pub use config::{MachineConfig, TopologyKind};
pub use driver::{Driver, DriverOp, ScriptDriver};
pub use machine::{Machine, RunOutcome, StallError};
pub use stats::MachineStats;
pub use trace::{MsgTrace, TraceEvent};

pub use dirtree_sim::metrics::{ClassCounts, Metrics, MetricsSnapshot, MsgClass};
