//! The workload interface: the machine pulls operations from a [`Driver`].

use dirtree_core::types::{Addr, NodeId};
use dirtree_sim::Cycle;

/// One processor operation, as issued by a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverOp {
    /// Load from a shared address (block-granular).
    Read(Addr),
    /// Store to a shared address.
    Write(Addr),
    /// Local computation for the given number of cycles.
    Work(Cycle),
    /// Global barrier (all processors participate; ids distinguish
    /// textually different barriers for debugging only).
    Barrier(u32),
    /// Acquire a lock.
    Lock(u32),
    /// Release a lock (must be held by this processor).
    Unlock(u32),
    /// This processor has finished its program.
    Done,
}

/// Source of processor operations.
///
/// `next_op` is called exactly once per issued operation, when the
/// processor is ready to issue: after the previous operation completed
/// (memory ops), elapsed (work), or was granted (sync ops).
pub trait Driver {
    fn next_op(&mut self, node: NodeId, now: Cycle) -> DriverOp;
}

/// A scripted driver: a fixed operation list per node. Used by tests and
/// by the microbenchmark harnesses (Table 1, tree shapes).
pub struct ScriptDriver {
    scripts: Vec<std::vec::IntoIter<DriverOp>>,
}

impl ScriptDriver {
    pub fn new(scripts: Vec<Vec<DriverOp>>) -> Self {
        Self {
            scripts: scripts.into_iter().map(Vec::into_iter).collect(),
        }
    }

    /// A driver for `nodes` processors where only the listed nodes do
    /// anything.
    pub fn sparse(nodes: u32, active: Vec<(NodeId, Vec<DriverOp>)>) -> Self {
        let mut scripts = vec![Vec::new(); nodes as usize];
        for (n, ops) in active {
            scripts[n as usize] = ops;
        }
        Self::new(scripts)
    }
}

impl Driver for ScriptDriver {
    fn next_op(&mut self, node: NodeId, _now: Cycle) -> DriverOp {
        self.scripts[node as usize].next().unwrap_or(DriverOp::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_driver_yields_in_order_then_done() {
        let mut d = ScriptDriver::new(vec![vec![DriverOp::Read(1), DriverOp::Work(5)]]);
        assert_eq!(d.next_op(0, 0), DriverOp::Read(1));
        assert_eq!(d.next_op(0, 0), DriverOp::Work(5));
        assert_eq!(d.next_op(0, 0), DriverOp::Done);
        assert_eq!(d.next_op(0, 0), DriverOp::Done);
    }

    #[test]
    fn sparse_fills_inactive_nodes_with_done() {
        let mut d = ScriptDriver::sparse(4, vec![(2, vec![DriverOp::Write(9)])]);
        assert_eq!(d.next_op(0, 0), DriverOp::Done);
        assert_eq!(d.next_op(2, 0), DriverOp::Write(9));
        assert_eq!(d.next_op(2, 0), DriverOp::Done);
    }
}
