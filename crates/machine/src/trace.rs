//! Optional protocol message tracing.
//!
//! A bounded, address-filterable ring buffer of message events, useful for
//! debugging protocol flows and for the `tree_shapes`-style experiment
//! narratives. Disabled by default (zero overhead beyond a branch).

use dirtree_core::msg::Msg;
use dirtree_core::types::{Addr, NodeId};
use dirtree_sim::Cycle;
use std::collections::VecDeque;

/// One traced message delivery.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub at: Cycle,
    /// Network delivery time (equals `at` for events recorded without
    /// timing, e.g. the checker's logical replays).
    pub arrival: Cycle,
    pub src: NodeId,
    pub dst: NodeId,
    pub addr: Addr,
    pub label: &'static str,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>8}] {:>3} -> {:<3} {:<16} addr {:#x}",
            self.at, self.src, self.dst, self.label, self.addr
        )
    }
}

/// A bounded message trace with an optional address filter.
pub struct MsgTrace {
    filter: Option<Addr>,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl MsgTrace {
    /// Trace up to `capacity` events; `filter` limits tracing to one block.
    pub fn new(capacity: usize, filter: Option<Addr>) -> Self {
        assert!(capacity > 0);
        Self {
            filter,
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Record a send if it passes the filter.
    pub fn record(&mut self, at: Cycle, dst: NodeId, msg: &Msg) {
        self.record_timed(at, at, dst, msg);
    }

    /// Record a send with its network delivery time (send hook path).
    pub fn record_timed(&mut self, at: Cycle, arrival: Cycle, dst: NodeId, msg: &Msg) {
        if let Some(f) = self.filter {
            if msg.addr != f {
                return;
            }
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            arrival,
            src: msg.src,
            dst,
            addr: msg.addr,
            label: msg.kind.label(),
        });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events evicted from the ring because of the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained events in Chrome trace-event format
    /// (`chrome://tracing` / Perfetto `trace_events` JSON): one complete
    /// ("X") event per message, one timeline row (`tid`) per sending node,
    /// timestamps in simulated cycles. Output is deterministic — events in
    /// recorded order, no wall-clock or environment input.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"msg\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"addr\":{},\"dst\":{}}}}}",
                e.label,
                e.at,
                e.arrival.saturating_sub(e.at).max(1),
                e.src,
                e.addr,
                e.dst
            ));
        }
        out.push_str("]}");
        out
    }

    /// Render the retained events as one line per message.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier events dropped ...\n",
                self.dropped
            ));
        }
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirtree_core::msg::MsgKind;

    fn msg(addr: Addr, src: NodeId) -> Msg {
        Msg {
            addr,
            src,
            kind: MsgKind::ReadReq { requester: src },
        }
    }

    #[test]
    fn records_and_renders() {
        let mut t = MsgTrace::new(8, None);
        t.record(10, 0, &msg(5, 3));
        t.record(12, 3, &msg(5, 0));
        let s = t.render();
        assert!(s.contains("read_req"));
        assert!(s.contains("3 -> 0"));
        assert_eq!(t.events().count(), 2);
    }

    #[test]
    fn record_timed_keeps_arrival_and_chrome_export_is_valid_shape() {
        let mut t = MsgTrace::new(8, None);
        t.record_timed(10, 25, 2, &msg(5, 3));
        t.record(30, 0, &msg(5, 2));
        let evs: Vec<_> = t.events().collect();
        assert_eq!(evs[0].arrival, 25);
        assert_eq!(evs[1].arrival, evs[1].at, "record() defaults arrival");
        let json = t.chrome_trace_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"read_req\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":15"));
        // Zero-duration events get a minimum visible width of 1.
        assert!(json.contains("\"ts\":30,\"dur\":1"));
    }

    #[test]
    fn filter_drops_other_addresses() {
        let mut t = MsgTrace::new(8, Some(5));
        t.record(1, 0, &msg(5, 1));
        t.record(2, 0, &msg(6, 1));
        assert_eq!(t.events().count(), 1);
    }

    #[test]
    fn ring_bounds_memory() {
        let mut t = MsgTrace::new(4, None);
        for i in 0..10 {
            t.record(i, 0, &msg(1, 1));
        }
        assert_eq!(t.events().count(), 4);
        assert_eq!(t.dropped(), 6);
        assert!(t.render().contains("6 earlier events dropped"));
        // Oldest retained is event at t=6.
        assert_eq!(t.events().next().unwrap().at, 6);
    }
}
