//! Protocol conformance battery: one standard scenario suite executed
//! against every protocol implementation through the public
//! [`dirtree_core::testkit::MockCtx`]. Each scenario asserts the
//! single-writer/multiple-reader invariant and the expected survivor set,
//! so any new protocol gets the same baseline scrutiny for free.

use dirtree_core::protocol::{build_protocol, Protocol, ProtocolKind, ProtocolParams};
use dirtree_core::testkit::MockCtx;
use dirtree_core::types::{Addr, LineState, OpKind};
use dirtree_core::ProtoCtx;

const A: Addr = 0; // home = node 0 for every machine size used here

fn kinds() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::FullMap,
        ProtocolKind::LimitedNB { pointers: 1 },
        ProtocolKind::LimitedNB { pointers: 4 },
        ProtocolKind::LimitedB { pointers: 2 },
        ProtocolKind::LimitLess { pointers: 2 },
        ProtocolKind::SinglyList,
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
        ProtocolKind::Stp { arity: 3 },
        ProtocolKind::SciTree,
        ProtocolKind::DirTree {
            pointers: 1,
            arity: 2,
        },
        ProtocolKind::DirTree {
            pointers: 2,
            arity: 2,
        },
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::DirTree {
            pointers: 8,
            arity: 2,
        },
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 4,
        },
        ProtocolKind::Snoop,
    ]
}

fn fresh(kind: ProtocolKind) -> (MockCtx, Box<dyn Protocol>) {
    (
        MockCtx::new(16),
        build_protocol(kind, ProtocolParams::default()),
    )
}

/// An update-protocol-aware write helper (writers end V, not E, there).
fn write(ctx: &mut MockCtx, p: &mut dyn Protocol, node: u32) {
    if p.is_update() {
        let before = ctx.completed.len();
        ctx.begin_miss(p, node, A, OpKind::Write);
        ctx.run(p);
        assert!(ctx.completed[before..].contains(&(node, A, OpKind::Write)));
    } else {
        ctx.write(p, node, A);
    }
}

#[test]
fn scenario_single_reader_then_writer() {
    for kind in kinds() {
        let (mut ctx, mut p) = fresh(kind);
        ctx.read(&mut *p, 1, A);
        write(&mut ctx, &mut *p, 2);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![2], "{}", kind.name());
    }
}

#[test]
fn scenario_wide_sharing_then_writer() {
    for kind in kinds() {
        let (mut ctx, mut p) = fresh(kind);
        for n in 1..=12 {
            ctx.read(&mut *p, n, A);
        }
        write(&mut ctx, &mut *p, 14);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![14], "{}", kind.name());
    }
}

#[test]
fn scenario_migratory_chain() {
    for kind in kinds() {
        let (mut ctx, mut p) = fresh(kind);
        for n in 0..8 {
            ctx.read(&mut *p, n, A);
            write(&mut ctx, &mut *p, n);
            ctx.assert_swmr(A);
        }
        assert_eq!(ctx.holders(A), vec![7], "{}", kind.name());
    }
}

#[test]
fn scenario_upgrade_from_inside_sharers() {
    for kind in kinds() {
        let (mut ctx, mut p) = fresh(kind);
        for n in 1..=5 {
            ctx.read(&mut *p, n, A);
        }
        write(&mut ctx, &mut *p, 3);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![3], "{}", kind.name());
    }
}

#[test]
fn scenario_evict_middle_then_write() {
    for kind in kinds() {
        let (mut ctx, mut p) = fresh(kind);
        for n in 1..=6 {
            ctx.read(&mut *p, n, A);
        }
        if ctx.line_state(3, A) == LineState::V {
            ctx.evict(&mut *p, 3, A);
        }
        write(&mut ctx, &mut *p, 9);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![9], "{}", kind.name());
    }
}

#[test]
fn scenario_evict_rejoin_write_storm() {
    for kind in kinds() {
        let (mut ctx, mut p) = fresh(kind);
        for round in 0..3 {
            for n in 1..=6 {
                ctx.read(&mut *p, n, A);
            }
            // Evict two members (one possibly structural), re-read one.
            if ctx.line_state(2, A) == LineState::V {
                ctx.evict(&mut *p, 2, A);
            }
            if ctx.line_state(5, A) == LineState::V {
                ctx.evict(&mut *p, 5, A);
            }
            ctx.read(&mut *p, 2, A);
            write(&mut ctx, &mut *p, round);
            ctx.assert_swmr(A);
            assert_eq!(ctx.holders(A), vec![round], "{} round {round}", kind.name());
        }
    }
}

#[test]
fn scenario_owner_eviction_then_read() {
    for kind in kinds() {
        let (mut ctx, mut p) = fresh(kind);
        write(&mut ctx, &mut *p, 4);
        if ctx.line_state(4, A) == LineState::E {
            ctx.evict(&mut *p, 4, A);
        }
        ctx.read(&mut *p, 6, A);
        assert!(ctx.line_state(6, A).readable(), "{}", kind.name());
        ctx.assert_swmr(A);
    }
}

#[test]
fn scenario_alternating_read_write_pairs() {
    for kind in kinds() {
        let (mut ctx, mut p) = fresh(kind);
        for i in 0..10u32 {
            let reader = 1 + (i % 5);
            let writer = 8 + (i % 3);
            ctx.read(&mut *p, reader, A);
            write(&mut ctx, &mut *p, writer);
            ctx.assert_swmr(A);
        }
    }
}

#[test]
fn update_variant_keeps_copies_valid() {
    let kind = ProtocolKind::DirTreeUpdate {
        pointers: 4,
        arity: 2,
    };
    let (mut ctx, mut p) = fresh(kind);
    for n in 1..=6 {
        ctx.read(&mut *p, n, A);
    }
    write(&mut ctx, &mut *p, 9);
    for n in 1..=6 {
        assert!(ctx.line_state(n, A).readable(), "update killed node {n}");
    }
    assert!(ctx.holders(A).len() >= 7);
}
