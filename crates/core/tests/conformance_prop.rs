//! Property-based conformance: arbitrary read/write/evict sequences on
//! every protocol must preserve the single-writer/multiple-reader
//! invariant and always leave the last writer as the sole holder.

use dirtree_core::protocol::{build_protocol, ProtocolKind, ProtocolParams};
use dirtree_core::testkit::MockCtx;
use dirtree_core::types::LineState;
use dirtree_core::ProtoCtx;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Step {
    Read(u32),
    Write(u32),
    Evict(u32),
}

fn arb_steps(nodes: u32) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (1..nodes).prop_map(Step::Read),
            2 => (1..nodes).prop_map(Step::Write),
            1 => (1..nodes).prop_map(Step::Evict),
        ],
        1..80,
    )
}

fn run(kind: ProtocolKind, steps: &[Step]) {
    const A: u64 = 0;
    let nodes = 16;
    let mut ctx = MockCtx::new(nodes);
    let mut p = build_protocol(kind, ProtocolParams::default());
    let update = p.is_update();
    for &step in steps {
        match step {
            Step::Read(n) => {
                if !ctx.line_state(n, A).readable() {
                    ctx.read(&mut *p, n, A);
                }
            }
            Step::Write(n) => {
                if update {
                    let before = ctx.completed.len();
                    ctx.begin_miss(&mut *p, n, A, dirtree_core::types::OpKind::Write);
                    ctx.run(&mut *p);
                    assert!(ctx.completed.len() > before, "update write stalled");
                } else if !ctx.line_state(n, A).writable() {
                    ctx.write(&mut *p, n, A);
                }
                ctx.assert_swmr(A);
            }
            Step::Evict(n) => {
                if matches!(ctx.line_state(n, A), LineState::V | LineState::E) {
                    ctx.evict(&mut *p, n, A);
                }
            }
        }
        ctx.assert_swmr(A);
    }
}

macro_rules! conformance {
    ($name:ident, $kind:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
            #[test]
            fn $name(steps in arb_steps(16)) {
                run($kind, &steps);
            }
        }
    };
}

conformance!(full_map, ProtocolKind::FullMap);
conformance!(limited_nb1, ProtocolKind::LimitedNB { pointers: 1 });
conformance!(limited_b2, ProtocolKind::LimitedB { pointers: 2 });
conformance!(limitless2, ProtocolKind::LimitLess { pointers: 2 });
conformance!(singly, ProtocolKind::SinglyList);
conformance!(sci, ProtocolKind::Sci);
conformance!(stp, ProtocolKind::Stp { arity: 2 });
conformance!(sci_tree, ProtocolKind::SciTree);
conformance!(
    dir1tree2,
    ProtocolKind::DirTree {
        pointers: 1,
        arity: 2
    }
);
conformance!(
    dir4tree2,
    ProtocolKind::DirTree {
        pointers: 4,
        arity: 2
    }
);
conformance!(
    dir4tree4,
    ProtocolKind::DirTree {
        pointers: 4,
        arity: 4
    }
);
conformance!(
    dir4tree2_update,
    ProtocolKind::DirTreeUpdate {
        pointers: 4,
        arity: 2
    }
);
conformance!(snoop, ProtocolKind::Snoop);
