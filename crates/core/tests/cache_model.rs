//! Model-based testing of the O(1)-LRU cache against a deliberately naive
//! reference implementation: any divergence in states, hit/miss outcomes,
//! or victim choices is a bug in the fast path.

use dirtree_core::cache::{AllocOutcome, Cache, CacheConfig};
use dirtree_core::types::{Addr, LineState};
use proptest::prelude::*;

/// The slow-but-obvious reference: per-set vector with timestamps.
struct RefCache {
    assoc: usize,
    sets: Vec<Vec<(Addr, LineState, u64)>>,
    tick: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        Self {
            assoc: config.associativity,
            sets: (0..config.sets()).map(|_| Vec::new()).collect(),
            tick: 0,
        }
    }

    fn set_of(&self, addr: Addr) -> usize {
        (addr as usize) % self.sets.len()
    }

    fn state(&self, addr: Addr) -> LineState {
        let s = self.set_of(addr);
        self.sets[s]
            .iter()
            .find(|l| l.0 == addr)
            .map(|l| l.1)
            .unwrap_or(LineState::NotPresent)
    }

    fn set_state(&mut self, addr: Addr, st: LineState) {
        let s = self.set_of(addr);
        self.sets[s]
            .iter_mut()
            .find(|l| l.0 == addr)
            .expect("set_state on absent")
            .1 = st;
    }

    fn touch(&mut self, addr: Addr) {
        self.tick += 1;
        let s = self.set_of(addr);
        let t = self.tick;
        if let Some(l) = self.sets[s].iter_mut().find(|l| l.0 == addr) {
            l.2 = t;
        }
    }

    fn allocate(&mut self, addr: Addr) -> AllocOutcome {
        if self.state(addr) != LineState::NotPresent {
            self.touch(addr);
            return AllocOutcome::AlreadyResident;
        }
        self.tick += 1;
        let t = self.tick;
        let s = self.set_of(addr);
        if self.sets[s].len() < self.assoc {
            self.sets[s].push((addr, LineState::Iv, t));
            return AllocOutcome::Fresh;
        }
        // Any invalid line first; else the LRU stable line.
        if let Some(pos) = self.sets[s].iter().position(|l| l.1 == LineState::Iv) {
            self.sets[s][pos] = (addr, LineState::Iv, t);
            return AllocOutcome::Fresh;
        }
        let victim = self.sets[s]
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l.1, LineState::V | LineState::E))
            .min_by_key(|(_, l)| l.2)
            .map(|(i, _)| i);
        match victim {
            Some(pos) => {
                let (vaddr, vstate, _) = self.sets[s][pos];
                self.sets[s][pos] = (addr, LineState::Iv, t);
                AllocOutcome::Evicted {
                    victim: vaddr,
                    state: vstate,
                }
            }
            None => AllocOutcome::Stalled,
        }
    }
}

#[derive(Clone, Debug)]
enum Op {
    Allocate(Addr),
    Touch(Addr),
    SetState(Addr, u8),
}

fn arb_ops(addr_space: u64) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..addr_space).prop_map(Op::Allocate),
            (0..addr_space).prop_map(Op::Touch),
            ((0..addr_space), 0u8..4).prop_map(|(a, s)| Op::SetState(a, s)),
        ],
        1..300,
    )
}

fn decode_state(s: u8) -> LineState {
    match s {
        0 => LineState::V,
        1 => LineState::E,
        2 => LineState::Iv,
        _ => LineState::RmIp,
    }
}

fn run_model(config: CacheConfig, ops: Vec<Op>, addr_space: u64) {
    let mut fast = Cache::new(config);
    let mut slow = RefCache::new(config);
    for (i, op) in ops.into_iter().enumerate() {
        match op {
            Op::Allocate(a) => {
                let x = fast.allocate(a);
                let y = slow.allocate(a);
                // Invalid lines are architecturally absent, so the two
                // implementations may disagree about *which* invalid slot
                // is recycled — `Fresh` and `AlreadyResident`-of-an-Iv-line
                // are equivalent. Stable outcomes must agree exactly: same
                // hit/victim decisions.
                let norm = |o: &AllocOutcome, resident_state: LineState| match o {
                    AllocOutcome::AlreadyResident if resident_state == LineState::Iv => {
                        AllocOutcome::Fresh
                    }
                    other => *other,
                };
                let xs = norm(&x, fast.state(a));
                let ys = norm(&y, slow.state(a));
                assert_eq!(xs, ys, "op {i}: allocate({a:#x})");
            }
            Op::Touch(a) => {
                fast.touch(a);
                slow.touch(a);
            }
            Op::SetState(a, s) => {
                let st = decode_state(s);
                if fast.state(a) != LineState::NotPresent && slow.state(a) != LineState::NotPresent
                {
                    fast.set_state(a, st);
                    slow.set_state(a, st);
                }
            }
        }
        // Architectural agreement: invalid and absent are equivalent;
        // everything else must match exactly.
        for a in 0..addr_space {
            let norm = |s: LineState| {
                if s == LineState::Iv {
                    LineState::NotPresent
                } else {
                    s
                }
            };
            assert_eq!(
                norm(fast.state(a)),
                norm(slow.state(a)),
                "state({a:#x}) after op {i}"
            );
        }
    }
}

/// Deterministic replay of the shrunken counterexample recorded in
/// cache_model.proptest-regressions (the vendored proptest shim does not
/// read that file, so the case is pinned as an ordinary test). Addresses
/// fit the direct-mapped geometry, but replay under all three geometries
/// the properties cover.
#[test]
fn recorded_counterexample_matches_reference() {
    use Op::{Allocate, SetState, Touch};
    let ops = vec![
        SetState(7, 3),
        Touch(9),
        Allocate(2),
        Allocate(13),
        SetState(2, 1),
        Touch(7),
        Touch(8),
        Touch(4),
        Touch(5),
        Allocate(10),
        SetState(10, 2),
        Allocate(5),
        Touch(1),
        SetState(15, 1),
        Allocate(2),
        Allocate(6),
        Touch(12),
        SetState(0, 3),
        Touch(6),
        Allocate(13),
        Allocate(8),
        SetState(9, 3),
        SetState(6, 1),
        Allocate(10),
        Allocate(5),
        Touch(7),
        Touch(4),
        SetState(12, 1),
        Allocate(2),
        SetState(6, 1),
        Allocate(0),
    ];
    for config in [
        CacheConfig {
            lines: 8,
            associativity: 1,
        },
        CacheConfig {
            lines: 16,
            associativity: 4,
        },
        CacheConfig {
            lines: 8,
            associativity: 8,
        },
    ] {
        run_model(config, ops.clone(), 16);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn fully_associative_matches_reference(ops in arb_ops(24)) {
        run_model(CacheConfig { lines: 8, associativity: 8 }, ops, 24);
    }

    #[test]
    fn set_associative_matches_reference(ops in arb_ops(32)) {
        run_model(CacheConfig { lines: 16, associativity: 4 }, ops, 32);
    }

    #[test]
    fn direct_mapped_matches_reference(ops in arb_ops(16)) {
        run_model(CacheConfig { lines: 8, associativity: 1 }, ops, 16);
    }
}
