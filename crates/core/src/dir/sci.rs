//! IEEE 1596 Scalable Coherent Interface — doubly-linked sharing list
//! (§2.2 of the paper).
//!
//! The home keeps one pointer to the list head; each cache keeps `prev`
//! and `next`. A read miss costs 4 messages when the list is non-empty
//! (request → old-head redirect → attach → data). A write miss prepends
//! the writer, which then *purges* its successors one at a time —
//! `2P + 4`-ish messages, the sequential invalidation the tree protocols
//! attack.
//!
//! Roll-out (replacement) splices the node out with unacknowledged unlink
//! messages to its neighbours (and a conditional head update at the home);
//! a tombstone forward per node bridges the short window in which a
//! redirected requester or purge walk can still reach the departed node.

use crate::ctx::{ProtoCtx, ProtoEvent};
use crate::dir::util::TxnGate;
use crate::msg::{Msg, MsgKind};
use crate::protocol::{ptr_bits, Protocol, ProtocolKind};
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::FxHashMap;

#[derive(Clone, Default, Hash)]
struct Entry {
    head: Option<NodeId>,
    dirty: bool,
    wait_fill: bool,
}

#[derive(Default, Clone, Copy, Hash)]
struct Links {
    prev: Option<NodeId>,
    next: Option<NodeId>,
}

/// The SCI doubly-linked-list protocol.
#[derive(Clone)]
pub struct Sci {
    entries: FxHashMap<Addr, Entry>,
    gate: TxnGate,
    links: FxHashMap<(NodeId, Addr), Links>,
    /// Roll-out tombstones: where a departed node's successor went.
    tombstone: FxHashMap<(NodeId, Addr), Option<NodeId>>,
}

impl Sci {
    pub fn new() -> Self {
        Self {
            entries: FxHashMap::default(),
            gate: TxnGate::new(),
            links: FxHashMap::default(),
            tombstone: FxHashMap::default(),
        }
    }

    /// The list from the home pointer (diagnostics).
    pub fn chain(&self, addr: Addr, max: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.entries.get(&addr).and_then(|e| e.head);
        while let Some(n) = cur {
            if out.contains(&n) || out.len() >= max {
                break;
            }
            out.push(n);
            cur = self.links.get(&(n, addr)).and_then(|l| l.next);
        }
        out
    }

    fn finish_txn(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        if let Some(next) = self.gate.finish(addr) {
            ctx.redeliver(home, next, 0);
        }
    }

    fn handle_read_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::ReadReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let e = self.entries.entry(addr).or_default();
        e.wait_fill = true;
        let old = e.head;
        e.head = Some(requester);
        match old {
            None => {
                ctx.send(
                    requester,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::SciReadResp { old_head: None },
                    },
                );
            }
            Some(h) if h == requester => {
                // A racing roll-out left a stale self-pointer (our
                // SciNewHead carried a neighbour that has itself departed).
                // Bridge through the requester's own tombstone if any.
                let next = self
                    .tombstone
                    .get(&(requester, addr))
                    .copied()
                    .flatten()
                    .filter(|&n| n != requester);
                ctx.send(
                    requester,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::SciReadResp { old_head: next },
                    },
                );
            }
            Some(h) => {
                ctx.send(
                    requester,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::SciReadResp { old_head: Some(h) },
                    },
                );
            }
        }
    }

    fn handle_write_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::WriteReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let e = self.entries.entry(addr).or_default();
        let old = e.head.filter(|&h| h != requester);
        // If the upgrading writer is already the head, its successors are
        // purged starting from its own `next`.
        let start = if e.head == Some(requester) {
            self.links.get(&(requester, addr)).and_then(|l| l.next)
        } else {
            old
        };
        e.head = Some(requester);
        e.dirty = true;
        ctx.send(
            requester,
            Msg {
                addr,
                src: home,
                kind: MsgKind::SciWriteResp { old_head: start },
            },
        );
        // The transaction stays open until the writer reports purge
        // completion (SciPurgeDone), including the empty-list case, so a
        // racing read cannot observe a half-purged list.
    }

    /// The writer drives the purge: invalidate `target`, follow its next.
    fn send_purge(ctx: &mut dyn ProtoCtx, writer: NodeId, addr: Addr, target: NodeId) {
        ctx.send(
            target,
            Msg {
                addr,
                src: writer,
                kind: MsgKind::SciPurgeReq,
            },
        );
    }

    fn purge_done(&mut self, ctx: &mut dyn ProtoCtx, writer: NodeId, addr: Addr) {
        let home = ctx.home_of(addr);
        self.links.insert(
            (writer, addr),
            Links {
                prev: None,
                next: None,
            },
        );
        ctx.set_line_state(writer, addr, LineState::E);
        ctx.complete(writer, addr, OpKind::Write);
        ctx.send(
            home,
            Msg {
                addr,
                src: writer,
                kind: MsgKind::SciPurgeDone { writer },
            },
        );
    }

    fn handle_write_resp(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::SciWriteResp { old_head } = msg.kind else {
            unreachable!()
        };
        debug_assert_eq!(ctx.line_state(node, addr), LineState::WmIp);
        match old_head {
            None => self.purge_done(ctx, node, addr),
            Some(h) => {
                ctx.set_line_state(node, addr, LineState::WmLip);
                Self::send_purge(ctx, node, addr, h);
            }
        }
    }

    fn handle_purge_req(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let writer = msg.src;
        let next = match ctx.line_state(node, addr) {
            // The dirty owner (head) is purged like any sharer; ownership
            // passes to the writer with the grant.
            LineState::V | LineState::E => {
                ctx.note(ProtoEvent::Invalidation);
                ctx.set_line_state(node, addr, LineState::Iv);
                self.links.remove(&(node, addr)).and_then(|l| l.next)
            }
            // The upgrading writer's own old position mid-list: pass the
            // walk through to its successor (its copy dies with the grant).
            LineState::WmIp | LineState::WmLip => {
                self.links.get(&(node, addr)).and_then(|l| l.next)
            }
            // Dead node bridged by a roll-out tombstone (or a cold trail).
            _ => self.tombstone.get(&(node, addr)).copied().unwrap_or(None),
        };
        ctx.send(
            writer,
            Msg {
                addr,
                src: node,
                kind: MsgKind::SciPurgeResp { next },
            },
        );
    }

    fn handle_purge_resp(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::SciPurgeResp { next } = msg.kind else {
            unreachable!()
        };
        debug_assert_eq!(ctx.line_state(node, addr), LineState::WmLip);
        match next {
            // Purging "ourselves" means walking through our own old list
            // position: handled by the WmLip branch of the request side.
            Some(nx) => Self::send_purge(ctx, node, addr, nx),
            None => self.purge_done(ctx, node, addr),
        }
    }

    fn handle_read_resp(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::SciReadResp { old_head } = msg.kind else {
            unreachable!()
        };
        debug_assert_eq!(ctx.line_state(node, addr), LineState::RmIp);
        match old_head {
            None => {
                self.links.insert(
                    (node, addr),
                    Links {
                        prev: None,
                        next: None,
                    },
                );
                self.fill(ctx, node, addr);
            }
            Some(h) => {
                ctx.send(
                    h,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::SciAttachReq,
                    },
                );
            }
        }
    }

    /// Serve an attach at a live list member: the requester becomes our
    /// predecessor (the new head) and we send it the data.
    fn serve_attach(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        node: NodeId,
        addr: Addr,
        requester: NodeId,
    ) {
        let home = ctx.home_of(addr);
        match ctx.line_state(node, addr) {
            // WmIp/WmLip: the target's upgrade is queued behind this read
            // transaction; its old copy is still the architectural one, so
            // it serves the attach and stays listed for its own purge.
            LineState::V | LineState::E | LineState::WmIp | LineState::WmLip => {
                if ctx.line_state(node, addr) == LineState::E {
                    // Owner downgrade: memory must be refreshed.
                    ctx.set_line_state(node, addr, LineState::V);
                    ctx.send(
                        home,
                        Msg {
                            addr,
                            src: node,
                            kind: MsgKind::WbData {
                                for_op: OpKind::Read,
                                requester,
                            },
                        },
                    );
                }
                let l = self.links.entry((node, addr)).or_default();
                l.prev = Some(requester);
                ctx.send(
                    requester,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::SciAttachResp,
                    },
                );
            }
            _ => {
                // Rolled out: bridge via the tombstone, or fall back to the
                // home's memory if the trail is cold.
                match self.tombstone.get(&(node, addr)).copied().unwrap_or(None) {
                    Some(nx) if nx != requester => {
                        ctx.send(
                            nx,
                            Msg {
                                addr,
                                src: requester,
                                kind: MsgKind::SciAttachReq,
                            },
                        );
                    }
                    _ => {
                        ctx.send(
                            home,
                            Msg {
                                addr,
                                src: node,
                                kind: MsgKind::SllSupplyFail { requester },
                            },
                        );
                    }
                }
            }
        }
    }

    fn fill(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr) {
        ctx.set_line_state(node, addr, LineState::V);
        ctx.complete(node, addr, OpKind::Read);
        let home = ctx.home_of(addr);
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind: MsgKind::FillAck,
            },
        );
    }
}

impl Default for Sci {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for Sci {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Sci
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        let home = ctx.home_of(addr);
        let kind = match op {
            OpKind::Read => MsgKind::ReadReq { requester: node },
            OpKind::Write => MsgKind::WriteReq { requester: node },
        };
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind,
            },
        );
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        match msg.kind {
            MsgKind::ReadReq { .. } => self.handle_read_req(ctx, node, msg),
            MsgKind::WriteReq { .. } => self.handle_write_req(ctx, node, msg),
            MsgKind::SciReadResp { .. } => self.handle_read_resp(ctx, node, msg),
            MsgKind::SciWriteResp { .. } => self.handle_write_resp(ctx, node, msg),
            MsgKind::SciAttachReq => {
                let requester = msg.src;
                self.serve_attach(ctx, node, addr, requester);
            }
            MsgKind::SciAttachResp => {
                // We are the new head; our successor is the supplier.
                let supplier = msg.src;
                debug_assert_eq!(ctx.line_state(node, addr), LineState::RmIp);
                self.links.insert(
                    (node, addr),
                    Links {
                        prev: None,
                        next: Some(supplier),
                    },
                );
                self.fill(ctx, node, addr);
            }
            MsgKind::SciPurgeReq => self.handle_purge_req(ctx, node, msg),
            MsgKind::SciPurgeResp { .. } => self.handle_purge_resp(ctx, node, msg),
            MsgKind::SciPurgeDone { .. } => {
                // Writer finished; grant any attaches that queued at the
                // writer while it was WmIp (they were deferred there, not
                // here), and retire the transaction.
                self.finish_txn(ctx, node, addr);
            }
            MsgKind::WriteReply { .. } => unreachable!("SCI uses SciWriteResp"),
            MsgKind::ReadReply { .. } => {
                // Home fallback supply (dead redirect trail).
                debug_assert_eq!(ctx.line_state(node, addr), LineState::RmIp);
                self.links.insert(
                    (node, addr),
                    Links {
                        prev: None,
                        next: None,
                    },
                );
                self.fill(ctx, node, addr);
            }
            MsgKind::SllSupplyFail { requester } => {
                // Home-side: serve the requester from memory.
                let e = self.entries.entry(addr).or_default();
                e.dirty = false;
                ctx.send(
                    requester,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::ReadReply { adopt: vec![] },
                    },
                );
            }
            MsgKind::WbData { .. } => {
                let e = self.entries.entry(addr).or_default();
                e.dirty = false;
            }
            MsgKind::WbEvict => {
                let e = self.entries.entry(addr).or_default();
                if e.head == Some(msg.src) {
                    e.head = None;
                }
                e.dirty = false;
            }
            MsgKind::FillAck => {
                let e = self.entries.entry(addr).or_default();
                e.wait_fill = false;
                self.finish_txn(ctx, node, addr);
            }
            MsgKind::SciNewHead { new_head } => {
                let e = self.entries.entry(addr).or_default();
                if e.head == Some(msg.src) {
                    e.head = new_head;
                }
            }
            MsgKind::SciUnlinkPrev { new_next } => {
                if let Some(l) = self.links.get_mut(&(node, addr)) {
                    if ctx.line_state(node, addr).readable() {
                        l.next = new_next;
                    }
                }
            }
            MsgKind::SciUnlinkNext { new_prev } => {
                if let Some(l) = self.links.get_mut(&(node, addr)) {
                    if ctx.line_state(node, addr).readable() {
                        l.prev = new_prev;
                    }
                }
            }
            other => unreachable!("SCI received {other:?}"),
        }
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        match state {
            LineState::V => {
                // Roll-out: splice around us.
                let l = self.links.remove(&(node, addr)).unwrap_or_default();
                self.tombstone.insert((node, addr), l.next);
                ctx.note(ProtoEvent::ReplacementInvalidation);
                if let Some(p) = l.prev {
                    ctx.send(
                        p,
                        Msg {
                            addr,
                            src: node,
                            kind: MsgKind::SciUnlinkPrev { new_next: l.next },
                        },
                    );
                } else {
                    // We were the head: conditionally update the home.
                    let home = ctx.home_of(addr);
                    ctx.send(
                        home,
                        Msg {
                            addr,
                            src: node,
                            kind: MsgKind::SciNewHead { new_head: l.next },
                        },
                    );
                }
                if let Some(nx) = l.next {
                    ctx.send(
                        nx,
                        Msg {
                            addr,
                            src: node,
                            kind: MsgKind::SciUnlinkNext { new_prev: l.prev },
                        },
                    );
                }
            }
            LineState::E => {
                self.links.remove(&(node, addr));
                self.tombstone.insert((node, addr), None);
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::WbEvict,
                    },
                );
            }
            other => unreachable!("evicting line in state {other:?}"),
        }
    }

    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        ptr_bits(nodes) + 2
    }

    fn cache_bits_per_line(&self, nodes: u32) -> u64 {
        2 * ptr_bits(nodes) + 2 + 3 // prev + next + null flags + state
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        use crate::fingerprint::digest_map;
        digest_map(h, &self.entries);
        self.gate.digest(h);
        digest_map(h, &self.links);
        digest_map(h, &self.tombstone);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockCtx;

    const A: Addr = 0;

    fn setup(nodes: u32) -> (MockCtx, Sci) {
        (MockCtx::new(nodes), Sci::new())
    }

    #[test]
    fn empty_list_read_is_two_messages() {
        let (mut ctx, mut p) = setup(8);
        let mark = ctx.mark();
        ctx.read(&mut p, 1, A);
        assert_eq!(ctx.critical_since(mark), 2);
    }

    #[test]
    fn nonempty_read_is_four_messages() {
        let (mut ctx, mut p) = setup(8);
        ctx.read(&mut p, 1, A);
        let mark = ctx.mark();
        ctx.read(&mut p, 2, A);
        // req + redirect + attach + data = 4 (paper Table 1).
        assert_eq!(ctx.critical_since(mark), 4);
        assert_eq!(p.chain(A, 8), vec![2, 1]);
    }

    #[test]
    fn write_purges_sequentially_with_2p_messages() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=4 {
            ctx.read(&mut p, n, A);
        }
        let mark = ctx.mark();
        ctx.write(&mut p, 6, A);
        // req + grant + (purge req + resp) × 4 + done = 11 = 2P + 3.
        assert_eq!(ctx.critical_since(mark), 11);
        for n in 1..=4 {
            assert!(!ctx.line_state(n, A).readable());
        }
        ctx.assert_swmr(A);
        assert_eq!(p.chain(A, 8), vec![6]);
    }

    #[test]
    fn dirty_read_attaches_to_owner() {
        let (mut ctx, mut p) = setup(8);
        ctx.write(&mut p, 2, A);
        ctx.read(&mut p, 5, A);
        assert_eq!(ctx.line_state(2, A), LineState::V);
        assert_eq!(ctx.line_state(5, A), LineState::V);
        assert_eq!(p.chain(A, 8), vec![5, 2]);
        ctx.write(&mut p, 3, A);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![3]);
    }

    #[test]
    fn rollout_splices_the_list() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=3 {
            ctx.read(&mut p, n, A); // 3-2-1
        }
        ctx.evict(&mut p, 2, A);
        assert_eq!(p.chain(A, 8), vec![3, 1], "2 spliced out");
        assert!(ctx.line_state(1, A).readable(), "roll-out kills nobody");
        ctx.write(&mut p, 5, A);
        ctx.assert_swmr(A);
    }

    #[test]
    fn head_rollout_updates_home() {
        let (mut ctx, mut p) = setup(8);
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A); // head 2
        ctx.evict(&mut p, 2, A);
        assert_eq!(p.chain(A, 8), vec![1]);
        let mark = ctx.mark();
        ctx.read(&mut p, 3, A); // attaches to 1 directly
        assert_eq!(ctx.critical_since(mark), 4);
    }

    #[test]
    fn attach_through_tombstone_bridges_the_race() {
        let (mut ctx, mut p) = setup(8);
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A); // 2-1
                                // Manually create the race: home redirects 3 to 2, but 2 rolls out
                                // before the attach arrives.
        ctx.begin_miss(&mut p, 3, A, OpKind::Read);
        // Process only the home's part: pump one message (ReadReq).
        // Then evict 2 so the SciAttachReq finds a tombstone.
        // MockCtx::run drains fully, so emulate by evicting first on a
        // fresh scenario instead:
        ctx.run(&mut p); // completes 3's read normally (2 was alive)
        ctx.evict(&mut p, 2, A);
        ctx.read(&mut p, 4, A); // head 3 alive; normal path
        ctx.write(&mut p, 5, A);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![5]);
    }

    #[test]
    fn upgrade_write_purges_own_successors() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=3 {
            ctx.read(&mut p, n, A); // 3-2-1
        }
        ctx.write(&mut p, 3, A); // head upgrades
        assert_eq!(ctx.line_state(3, A), LineState::E);
        assert!(!ctx.line_state(2, A).readable());
        assert!(!ctx.line_state(1, A).readable());
        ctx.assert_swmr(A);
    }

    #[test]
    fn mid_list_upgrade_write() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=3 {
            ctx.read(&mut p, n, A); // 3-2-1
        }
        ctx.write(&mut p, 2, A); // mid-list writer
        assert_eq!(ctx.line_state(2, A), LineState::E);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![2]);
    }

    #[test]
    fn exclusive_eviction_clears_home() {
        let (mut ctx, mut p) = setup(8);
        ctx.write(&mut p, 3, A);
        ctx.evict(&mut p, 3, A);
        let mark = ctx.mark();
        ctx.read(&mut p, 4, A);
        assert_eq!(ctx.critical_since(mark), 2);
    }

    #[test]
    fn sequential_writers_chain_ownership() {
        let (mut ctx, mut p) = setup(8);
        for n in 0..8 {
            ctx.write(&mut p, n, A);
            ctx.assert_swmr(A);
            assert_eq!(ctx.holders(A), vec![n]);
        }
    }

    #[test]
    fn tail_rollout_keeps_list_sound() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=3 {
            ctx.read(&mut p, n, A); // 3-2-1
        }
        ctx.evict(&mut p, 1, A); // tail leaves
        assert_eq!(p.chain(A, 8), vec![3, 2]);
        ctx.write(&mut p, 5, A);
        ctx.assert_swmr(A);
    }

    #[test]
    fn consecutive_rollouts_leave_singleton() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=4 {
            ctx.read(&mut p, n, A);
        }
        for n in [2u32, 4, 1] {
            ctx.evict(&mut p, n, A);
        }
        assert_eq!(p.chain(A, 8), vec![3]);
        let mark = ctx.mark();
        ctx.read(&mut p, 7, A); // attaches to survivor 3
        assert_eq!(ctx.critical_since(mark), 4);
        ctx.assert_swmr(A);
    }

    #[test]
    fn cache_overhead_is_two_pointers() {
        let p = Sci::new();
        assert_eq!(p.cache_bits_per_line(32), 15);
        assert_eq!(p.dir_bits_per_mem_block(32), 7);
    }
}
