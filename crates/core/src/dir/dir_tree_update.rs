//! Dir<sub>i</sub>Tree<sub>k</sub> with **update** writes — the variant
//! §3 of the paper mentions ("either an invalidation or an update
//! protocol") but does not evaluate.
//!
//! Reads build the same pointer forest as the invalidation variant
//! (identical Figure 6 insertion). A write, however, pushes the new value
//! *down the trees* with `Update` messages (paired even→odd like the
//! invalidations) and every copy stays valid; there is no exclusive state,
//! so every write — including repeated writes by the same processor — is
//! a full home transaction. Good for producer/consumer sharing, terrible
//! for private read-modify-write data: measurable with the
//! `ablation_update` binary.
//!
//! The home applies the value to memory when it processes the write, so
//! memory is always current and reads are always served by the home in 2
//! messages; there are no dirty recalls at all.
//!
//! Silent replacement keeps the same *zombie edge* discipline as the
//! invalidation variant (see `dir_tree.rs`): a disbanding node retains its
//! dead child edges until the next acked update wave re-traverses them.
//! Without this, a `Replace_INV` still in flight to an ex-child races a
//! completing write — the wave skips the disbanded subtree, the write
//! retires, and the ex-child reads its stale copy until the `Replace_INV`
//! lands. Per-pair FIFO orders the wave's `Update` behind the
//! `Replace_INV`, so an acked re-traversal proves the subtree is dead (or
//! has independently re-joined the forest).

use crate::ctx::{ProtoCtx, ProtoEvent};
use crate::dir::util::{AckCollectors, TxnGate};
use crate::msg::{Msg, MsgKind};
use crate::protocol::{ptr_bits, Protocol, ProtocolKind, ProtocolParams};
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::{FxHashMap, FxHashSet};

use super::dir_tree::{BlockXfer, Ptr};

#[derive(Clone, Default, Hash)]
struct Entry {
    ptrs: Vec<Option<Ptr>>,
    pending_writer: Option<NodeId>,
    wait_acks: u32,
}

/// The update-write Dir_iTree_k variant.
#[derive(Clone)]
pub struct DirTreeUpdate {
    pointers: u32,
    arity: u32,
    params: ProtocolParams,
    entries: FxHashMap<Addr, Entry>,
    gate: TxnGate,
    children: FxHashMap<(NodeId, Addr), Vec<NodeId>>,
    /// Disbanded child edges awaiting one acked wave re-traversal.
    zombies: FxHashMap<(NodeId, Addr), Vec<NodeId>>,
    /// `Replace_INV`s that landed while the target's update grant was in
    /// flight (state `WmIp`): the kill is deferred to grant time, because
    /// the edge that led here is already gone — a copy the grant made
    /// valid would be unreachable from the roots forever.
    pending_kill: FxHashSet<(NodeId, Addr)>,
    collectors: AckCollectors,
}

impl DirTreeUpdate {
    pub fn new(pointers: u32, arity: u32, params: ProtocolParams) -> Self {
        assert!(pointers >= 1);
        assert!(arity >= 2);
        Self {
            pointers,
            arity,
            params,
            entries: FxHashMap::default(),
            gate: TxnGate::new(),
            children: FxHashMap::default(),
            zombies: FxHashMap::default(),
            pending_kill: FxHashSet::default(),
            collectors: AckCollectors::new(),
        }
    }

    /// No home transaction, no ack collection, no pending write for `addr`:
    /// the block is safe to hand to the other write policy (the adaptive
    /// hybrid additionally requires zero in-flight messages).
    pub(crate) fn flip_idle(&self, addr: Addr) -> bool {
        !self.gate.has_traffic(addr)
            && !self.collectors.open_at_addr(addr)
            && !self.pending_kill.iter().any(|k| k.1 == addr)
            && self
                .entries
                .get(&addr)
                .is_none_or(|e| e.pending_writer.is_none() && e.wait_acks == 0)
    }

    /// Does this instance hold *any* state for `addr`? The adaptive hybrid
    /// pins this to false for the instance that does not own the block.
    pub(crate) fn has_block_state(&self, addr: Addr) -> bool {
        self.entries.contains_key(&addr)
            || self.gate.has_traffic(addr)
            || self.collectors.open_at_addr(addr)
            || self.children.keys().any(|k| k.1 == addr)
            || self.zombies.keys().any(|k| k.1 == addr)
            || self.pending_kill.iter().any(|k| k.1 == addr)
    }

    /// Remove and return the block's transferable tree state (roots, child
    /// edges, zombie edges). Caller must have checked [`Self::flip_idle`].
    pub(crate) fn take_block(&mut self, addr: Addr) -> BlockXfer {
        debug_assert!(self.flip_idle(addr));
        let ptrs = self
            .entries
            .remove(&addr)
            .map(|e| e.ptrs)
            .unwrap_or_else(|| vec![None; self.pointers as usize]);
        BlockXfer {
            ptrs,
            children: super::dir_tree::drain_addr(&mut self.children, addr),
            zombies: super::dir_tree::drain_addr(&mut self.zombies, addr),
        }
    }

    /// Install tree state taken from the other protocol instance.
    pub(crate) fn install_block(&mut self, addr: Addr, x: BlockXfer) {
        debug_assert!(!self.has_block_state(addr));
        debug_assert_eq!(x.ptrs.len(), self.pointers as usize);
        if x.ptrs.iter().any(Option::is_some) {
            self.entries.insert(
                addr,
                Entry {
                    ptrs: x.ptrs,
                    ..Entry::default()
                },
            );
        }
        for (node, kids) in x.children {
            self.children.insert((node, addr), kids);
        }
        for (node, kids) in x.zombies {
            self.zombies.insert((node, addr), kids);
        }
    }

    /// The node's copy is gone: kill the subtree with `Replace_INV` and
    /// retain the dead edges as zombies until an acked wave re-traverses.
    fn disband(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr) {
        let kids = self.children.remove(&(node, addr)).unwrap_or_default();
        if kids.is_empty() {
            return;
        }
        let z = self.zombies.entry((node, addr)).or_default();
        for k in kids {
            ctx.send(
                k,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::ReplaceInv,
                },
            );
            if !z.contains(&k) {
                z.push(k);
            }
        }
    }

    fn entry(&mut self, addr: Addr) -> &mut Entry {
        let i = self.pointers as usize;
        self.entries.entry(addr).or_insert_with(|| Entry {
            ptrs: vec![None; i],
            ..Entry::default()
        })
    }

    pub fn forest(&self, addr: Addr) -> Vec<Option<Ptr>> {
        self.entries
            .get(&addr)
            .map(|e| e.ptrs.clone())
            .unwrap_or_else(|| vec![None; self.pointers as usize])
    }

    pub fn children_of(&self, node: NodeId, addr: Addr) -> &[NodeId] {
        self.children
            .get(&(node, addr))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn finish_txn(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        if let Some(next) = self.gate.finish(addr) {
            ctx.redeliver(home, next, 0);
        }
    }

    /// Figure 6 insertion (same rules as the invalidation variant).
    fn insert_sharer(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        addr: Addr,
        requester: NodeId,
    ) -> Vec<NodeId> {
        let e = self.entry(addr);
        if e.ptrs.iter().flatten().any(|p| p.node == requester) {
            return vec![];
        }
        if let Some(slot) = e.ptrs.iter().position(Option::is_none) {
            e.ptrs[slot] = Some(Ptr {
                node: requester,
                level: 1,
            });
            return vec![];
        }
        let mut best: Option<(u32, usize, usize)> = None;
        for a in 0..e.ptrs.len() {
            for b in (a + 1)..e.ptrs.len() {
                let (la, lb) = (e.ptrs[a].unwrap().level, e.ptrs[b].unwrap().level);
                if la == lb && best.is_none_or(|(l, ..)| la > l) {
                    best = Some((la, a, b));
                }
            }
        }
        if let Some((level, a, b)) = best {
            let ra = e.ptrs[a].unwrap().node;
            let rb = e.ptrs[b].unwrap().node;
            e.ptrs[a] = Some(Ptr {
                node: requester,
                level: level + 1,
            });
            e.ptrs[b] = None;
            ctx.note(ProtoEvent::TreeMerge);
            return vec![ra, rb];
        }
        let (slot, ptr) = e
            .ptrs
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p)))
            .min_by_key(|&(_, p)| p.level)
            .expect("no pointers despite full directory");
        e.ptrs[slot] = Some(Ptr {
            node: requester,
            level: ptr.level + 1,
        });
        ctx.note(ProtoEvent::TreePushDown);
        vec![ptr.node]
    }

    fn handle_read_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::ReadReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let adopt = self.insert_sharer(ctx, addr, requester);
        ctx.send(
            requester,
            Msg {
                addr,
                src: home,
                kind: MsgKind::ReadReply { adopt },
            },
        );
        // Open until FillAck.
    }

    /// Send updates to the (pre-insertion) forest roots; returns expected
    /// ack count.
    fn update_forest(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) -> u32 {
        let pairing = self.params.dir_tree_pairing;
        let e = self.entries.get_mut(&addr).unwrap();
        let mut expected = 0;
        let mut send_to: Vec<(NodeId, Option<NodeId>)> = Vec::new();
        if pairing {
            let mut slot = 0;
            while slot < e.ptrs.len() {
                let even = e.ptrs[slot].map(|p| p.node);
                let odd = e.ptrs.get(slot + 1).copied().flatten().map(|p| p.node);
                match (even, odd) {
                    (Some(a), also) => send_to.push((a, also)),
                    (None, Some(b)) => send_to.push((b, None)),
                    (None, None) => {}
                }
                slot += 2;
            }
        } else {
            for p in e.ptrs.iter().flatten() {
                send_to.push((p.node, None));
            }
        }
        for (dst, also) in send_to {
            ctx.send(
                dst,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::Update {
                        also,
                        from_dir: true,
                    },
                },
            );
            expected += 1;
        }
        expected
    }

    fn grant(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr, writer: NodeId) {
        // Insert the writer as a sharer (it keeps a valid copy).
        let adopt = self.insert_sharer(ctx, addr, writer);
        ctx.send(
            writer,
            Msg {
                addr,
                src: home,
                kind: MsgKind::UpdateGrant { adopt },
            },
        );
        self.finish_txn(ctx, home, addr);
    }

    fn handle_write_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::WriteReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        self.entry(addr); // ensure the directory entry exists
        let expected = self.update_forest(ctx, home, addr);
        if expected == 0 {
            self.grant(ctx, home, addr, requester);
        } else {
            let e = self.entries.get_mut(&addr).unwrap();
            e.pending_writer = Some(requester);
            e.wait_acks = expected;
        }
    }

    fn handle_update(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::Update { also, from_dir } = msg.kind else {
            unreachable!()
        };
        if self.collectors.is_open(node, addr) {
            // Already collecting: answer immediately except for a pairing
            // duty, which must be forwarded and awaited (see dir_tree.rs
            // for the cycle-freedom argument).
            if let Some(partner) = also {
                ctx.send(
                    partner,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::Update {
                            also: None,
                            from_dir: false,
                        },
                    },
                );
                self.collectors.absorb(node, addr, msg.src, from_dir, 1);
            } else {
                ctx.send(
                    msg.src,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::UpdateAck { dir: from_dir },
                    },
                );
            }
            return;
        }
        // Forward to children (kept — nothing is invalidated) and the
        // pairing partner; the copy itself is refreshed in place. Zombie
        // edges are re-traversed exactly once — FIFO puts this wave's
        // `Update` behind the `Replace_INV` on the same pair, so the ack
        // proves the disbanded subtree processed its kill (or re-joined
        // the forest on its own and is reachable without this edge).
        let state = ctx.line_state(node, addr);
        let live = state == LineState::V;
        if live {
            ctx.note(ProtoEvent::Invalidation); // counted as "copies touched"
        }
        let mut targets: Vec<NodeId> = if live || state == LineState::WmIp {
            self.children_of(node, addr).to_vec()
        } else {
            Vec::new()
        };
        for z in self.zombies.remove(&(node, addr)).unwrap_or_default() {
            if !targets.contains(&z) {
                targets.push(z);
            }
        }
        let mut outstanding = 0;
        for k in targets {
            ctx.send(
                k,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::Update {
                        also: None,
                        from_dir: false,
                    },
                },
            );
            outstanding += 1;
        }
        if let Some(partner) = also {
            ctx.send(
                partner,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::Update {
                        also: None,
                        from_dir: false,
                    },
                },
            );
            outstanding += 1;
        }
        if outstanding == 0 {
            ctx.send(
                msg.src,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::UpdateAck { dir: from_dir },
                },
            );
        } else {
            self.collectors
                .open(node, addr, msg.src, from_dir, outstanding);
        }
    }

    fn handle_update_ack_cache(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr) {
        if let Some(targets) = self.collectors.ack(node, addr) {
            for (to, dir) in targets {
                ctx.send(
                    to,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::UpdateAck { dir },
                    },
                );
            }
        }
    }

    fn handle_update_ack_home(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        let e = self.entries.get_mut(&addr).expect("ack without entry");
        debug_assert!(e.wait_acks > 0);
        e.wait_acks -= 1;
        if e.wait_acks == 0 {
            let writer = e.pending_writer.take().expect("acks without writer");
            self.grant(ctx, home, addr, writer);
        }
    }
}

impl Protocol for DirTreeUpdate {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::DirTreeUpdate {
            pointers: self.pointers,
            arity: self.arity,
        }
    }

    fn is_update(&self) -> bool {
        true
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        let home = ctx.home_of(addr);
        let kind = match op {
            OpKind::Read => MsgKind::ReadReq { requester: node },
            OpKind::Write => MsgKind::WriteReq { requester: node },
        };
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind,
            },
        );
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        match msg.kind {
            MsgKind::ReadReq { .. } => self.handle_read_req(ctx, node, msg),
            MsgKind::WriteReq { .. } => self.handle_write_req(ctx, node, msg),
            MsgKind::FillAck => self.finish_txn(ctx, node, addr),
            MsgKind::UpdateAck { dir: true } => self.handle_update_ack_home(ctx, node, addr),
            MsgKind::UpdateAck { dir: false } => self.handle_update_ack_cache(ctx, node, addr),
            MsgKind::Update { .. } => self.handle_update(ctx, node, msg),
            MsgKind::ReadReply { adopt } => {
                debug_assert_eq!(ctx.line_state(node, addr), LineState::RmIp);
                debug_assert!(self.children_of(node, addr).is_empty());
                if !adopt.is_empty() {
                    self.children.insert((node, addr), adopt);
                }
                ctx.set_line_state(node, addr, LineState::V);
                ctx.complete(node, addr, OpKind::Read);
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::FillAck,
                    },
                );
            }
            MsgKind::UpdateGrant { adopt } => {
                debug_assert_eq!(ctx.line_state(node, addr), LineState::WmIp);
                if !adopt.is_empty() {
                    let slot = self.children.entry((node, addr)).or_default();
                    for a in adopt {
                        if !slot.contains(&a) && a != node {
                            slot.push(a);
                        }
                    }
                }
                if self.pending_kill.remove(&(node, addr)) {
                    // A `Replace_INV` raced this grant (see the handler
                    // below). The write itself is done — the home applied
                    // the value when it processed the request — but the
                    // local copy must go the way the kill intended, or it
                    // stays valid yet unreachable from the roots. Disband
                    // first so adopted subtrees get their own kills.
                    ctx.note(ProtoEvent::ReplacementInvalidation);
                    self.disband(ctx, node, addr);
                    ctx.set_line_state(node, addr, LineState::Iv);
                } else {
                    // The writer keeps a *valid* (not exclusive) copy.
                    ctx.set_line_state(node, addr, LineState::V);
                }
                ctx.complete(node, addr, OpKind::Write);
            }
            MsgKind::ReplaceInv => match ctx.line_state(node, addr) {
                LineState::V => {
                    ctx.note(ProtoEvent::ReplacementInvalidation);
                    self.disband(ctx, node, addr);
                    ctx.set_line_state(node, addr, LineState::Iv);
                }
                // The kill crossed our in-flight update grant: the parent
                // edge that led here is gone (an update wave consumes it
                // as a zombie), so the copy the grant is about to validate
                // would be unreachable from the roots. Ignoring the kill —
                // as the other transient states may — would leak a live
                // orphan; defer it to grant time instead.
                LineState::WmIp => {
                    self.pending_kill.insert((node, addr));
                }
                _ => {}
            },
            MsgKind::ReplNotify => {
                if let Some(e) = self.entries.get_mut(&addr) {
                    for p in e.ptrs.iter_mut() {
                        if p.map(|q| q.node) == Some(msg.src) {
                            *p = None;
                        }
                    }
                }
            }
            other => unreachable!("Dir_iTree_k(update) received {other:?}"),
        }
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        match state {
            LineState::V => {
                self.disband(ctx, node, addr);
                if !self.params.dir_tree_silent_replace {
                    let home = ctx.home_of(addr);
                    ctx.send(
                        home,
                        Msg {
                            addr,
                            src: node,
                            kind: MsgKind::ReplNotify,
                        },
                    );
                }
            }
            // No exclusive state exists; memory is always current.
            other => unreachable!("evicting line in state {other:?}"),
        }
    }

    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        2 * self.pointers as u64 * ptr_bits(nodes)
    }

    fn cache_bits_per_line(&self, nodes: u32) -> u64 {
        self.arity as u64 * ptr_bits(nodes) + 3
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        use crate::fingerprint::{digest_map, digest_set};
        digest_map(h, &self.entries);
        self.gate.digest(h);
        digest_map(h, &self.children);
        digest_map(h, &self.zombies);
        digest_set(h, &self.pending_kill);
        self.collectors.digest(h);
    }

    fn relabeled(&self, perm: &[NodeId]) -> Option<Box<dyn Protocol>> {
        Some(Box::new(self.relabeled_concrete(perm)))
    }

    fn deliveries_commute(&self) -> bool {
        true
    }

    fn check_invariants(
        &self,
        ctx: &dyn ProtoCtx,
        addrs: &[Addr],
        quiescent: bool,
    ) -> Result<(), String> {
        let nodes = ctx.num_nodes();
        for (&(node, addr), kids) in &self.children {
            if kids.len() > self.arity as usize {
                return Err(format!(
                    "node {node} holds {} children for {addr:#x} (arity {})",
                    kids.len(),
                    self.arity
                ));
            }
            for (i, k) in kids.iter().enumerate() {
                if *k == node {
                    return Err(format!("node {node} is its own child for {addr:#x}"));
                }
                if *k >= nodes {
                    return Err(format!("child {k} out of range at node {node}"));
                }
                if kids[..i].contains(k) {
                    return Err(format!("duplicate child {k} at node {node} for {addr:#x}"));
                }
            }
        }
        for (&(node, addr), kids) in &self.zombies {
            for (i, k) in kids.iter().enumerate() {
                if *k == node {
                    return Err(format!("node {node} is its own zombie for {addr:#x}"));
                }
                if *k >= nodes {
                    return Err(format!("zombie {k} out of range at node {node}"));
                }
                if kids[..i].contains(k) {
                    return Err(format!("duplicate zombie {k} at node {node} for {addr:#x}"));
                }
            }
        }
        for (&addr, e) in &self.entries {
            if e.ptrs.len() != self.pointers as usize {
                return Err(format!("entry for {addr:#x} has {} slots", e.ptrs.len()));
            }
            let mut roots = vec![];
            for p in e.ptrs.iter().flatten() {
                if p.level < 1 {
                    return Err(format!(
                        "root {} has level {} for {addr:#x}",
                        p.node, p.level
                    ));
                }
                if p.node >= nodes {
                    return Err(format!("root {} out of range for {addr:#x}", p.node));
                }
                if roots.contains(&p.node) {
                    return Err(format!("duplicate root {} for {addr:#x}", p.node));
                }
                roots.push(p.node);
            }
        }
        if !quiescent {
            return Ok(());
        }
        if self.collectors.open_count() != 0 {
            return Err("quiescent but ack collections open".into());
        }
        if self.gate.open_transactions() != 0 {
            return Err("quiescent but home transactions open".into());
        }
        for (&addr, e) in &self.entries {
            if e.pending_writer.is_some() || e.wait_acks != 0 {
                return Err(format!("quiescent but write pending for {addr:#x}"));
            }
        }
        if let Some((node, addr)) = self.pending_kill.iter().next() {
            return Err(format!(
                "quiescent but deferred kill at {node} for {addr:#x}"
            ));
        }
        for &addr in addrs {
            // No exclusive state exists in an update protocol, and every
            // valid copy must be reachable from the recorded roots through
            // child + zombie edges (or the next update wave misses it).
            let mut reach = vec![false; nodes as usize];
            let mut frontier: Vec<NodeId> = self
                .entries
                .get(&addr)
                .map(|e| e.ptrs.iter().flatten().map(|p| p.node).collect())
                .unwrap_or_default();
            while let Some(n) = frontier.pop() {
                if std::mem::replace(&mut reach[n as usize], true) {
                    continue;
                }
                frontier.extend_from_slice(self.children_of(n, addr));
                if let Some(z) = self.zombies.get(&(n, addr)) {
                    frontier.extend_from_slice(z);
                }
            }
            for n in 0..nodes {
                match ctx.line_state(n, addr) {
                    LineState::E => {
                        return Err(format!("update protocol holds E at {n} for {addr:#x}"));
                    }
                    LineState::V if !reach[n as usize] => {
                        return Err(format!(
                            "valid copy at {n} for {addr:#x} unreachable from roots"
                        ));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

impl DirTreeUpdate {
    /// Node-relabeled clone ([`Protocol::relabeled`]) — same argument as
    /// [`crate::dir::dir_tree::DirTree::relabeled_concrete`]: all decisions
    /// are slot/level/order based, so element-wise id mapping (preserving
    /// slot and edge-list order) commutes with execution.
    pub(crate) fn relabeled_concrete(&self, perm: &[NodeId]) -> DirTreeUpdate {
        let relabel_ptr = |p: &Option<Ptr>| {
            p.map(|p| Ptr {
                node: perm[p.node as usize],
                level: p.level,
            })
        };
        DirTreeUpdate {
            pointers: self.pointers,
            arity: self.arity,
            params: self.params,
            entries: self
                .entries
                .iter()
                .map(|(&a, e)| {
                    (
                        a,
                        Entry {
                            ptrs: e.ptrs.iter().map(relabel_ptr).collect(),
                            pending_writer: e.pending_writer.map(|n| perm[n as usize]),
                            wait_acks: e.wait_acks,
                        },
                    )
                })
                .collect(),
            gate: self.gate.relabeled(perm),
            children: crate::dir::dir_tree::relabel_edges(&self.children, perm),
            zombies: crate::dir::dir_tree::relabel_edges(&self.zombies, perm),
            pending_kill: self
                .pending_kill
                .iter()
                .map(|&(n, a)| (perm[n as usize], a))
                .collect(),
            collectors: self.collectors.relabeled(perm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockCtx;

    const A: Addr = 0;

    fn setup(nodes: u32) -> (MockCtx, DirTreeUpdate) {
        (
            MockCtx::new(nodes),
            DirTreeUpdate::new(4, 2, ProtocolParams::default()),
        )
    }

    /// An update-protocol write via the mock (the MockCtx `write` helper
    /// asserts E, which does not exist here).
    fn do_write(ctx: &mut MockCtx, p: &mut DirTreeUpdate, node: u32) {
        let before = ctx.completed.len();
        ctx.begin_miss(p, node, A, OpKind::Write);
        ctx.run(p);
        assert!(
            ctx.completed[before..].contains(&(node, A, OpKind::Write)),
            "write by {node} did not complete"
        );
        assert_eq!(ctx.line_state(node, A), LineState::V, "writer stays valid");
    }

    #[test]
    fn read_misses_cost_two_messages_like_invalidate_variant() {
        let (mut ctx, mut p) = setup(32);
        for n in 1..=10 {
            let mark = ctx.mark();
            ctx.read(&mut p, n, A);
            assert_eq!(ctx.critical_since(mark), 2);
        }
    }

    #[test]
    fn writes_leave_all_copies_valid() {
        let (mut ctx, mut p) = setup(32);
        for n in 1..=6 {
            ctx.read(&mut p, n, A);
        }
        do_write(&mut ctx, &mut p, 9);
        for n in 1..=6 {
            assert_eq!(
                ctx.line_state(n, A),
                LineState::V,
                "update must not kill node {n}"
            );
        }
        assert_eq!(ctx.holders(A).len(), 7, "writer joins the sharers");
    }

    #[test]
    fn forest_shape_matches_invalidation_variant() {
        let (mut ctx, mut p) = setup(32);
        for n in 1..=14 {
            ctx.read(&mut p, n, A);
        }
        ctx.read(&mut p, 15, A);
        assert_eq!(p.children_of(15, A), &[11, 13], "Figure 5 shape preserved");
    }

    #[test]
    fn every_sharer_receives_every_update() {
        let (mut ctx, mut p) = setup(32);
        for n in 1..=8 {
            ctx.read(&mut p, n, A);
        }
        let mark = ctx.mark();
        do_write(&mut ctx, &mut p, 4); // writer inside the forest
        let updates = ctx
            .sent_since(mark)
            .iter()
            .filter(|(_, m)| matches!(m.kind, MsgKind::Update { .. }))
            .count();
        assert_eq!(updates, 8, "one update per recorded sharer");
    }

    #[test]
    fn repeated_writes_by_same_node_each_pay_a_transaction() {
        let (mut ctx, mut p) = setup(32);
        do_write(&mut ctx, &mut p, 3);
        let mark = ctx.mark();
        do_write(&mut ctx, &mut p, 3);
        // req + self-update + ack + grant: the no-E price.
        assert!(ctx.critical_since(mark) >= 4);
    }

    #[test]
    fn silent_replacement_then_update_is_safe() {
        // Two pointers so the third read merges: 3 -> {1, 2}.
        let mut p = DirTreeUpdate::new(2, 2, ProtocolParams::default());
        let mut ctx = MockCtx::new(32);
        for n in 1..=3 {
            ctx.read(&mut p, n, A);
        }
        assert_eq!(p.children_of(3, A), &[1, 2]);
        ctx.evict(&mut p, 3, A); // kills 1 and 2 silently
        do_write(&mut ctx, &mut p, 5);
        assert!(!ctx.line_state(1, A).readable());
        assert!(!ctx.line_state(2, A).readable());
        assert_eq!(ctx.line_state(5, A), LineState::V);
    }

    #[test]
    fn disband_retains_zombie_edges_until_wave_retraverses() {
        let mut p = DirTreeUpdate::new(2, 2, ProtocolParams::default());
        let mut ctx = MockCtx::new(32);
        for n in 1..=3 {
            ctx.read(&mut p, n, A);
        }
        assert_eq!(p.children_of(3, A), &[1, 2]);
        ctx.evict(&mut p, 3, A);
        assert_eq!(
            p.zombies.get(&(3, A)).map(Vec::as_slice),
            Some(&[1u32, 2][..]),
            "disbanded edges are retained as zombies"
        );
        do_write(&mut ctx, &mut p, 5);
        assert!(
            p.zombies.is_empty(),
            "the acked update wave consumes zombie edges"
        );
        assert!(!ctx.line_state(1, A).readable());
        assert!(!ctx.line_state(2, A).readable());
    }

    #[test]
    fn pairing_bounds_home_acks() {
        let (mut ctx, mut p) = setup(32);
        for n in 1..=8 {
            ctx.read(&mut p, n, A);
        }
        let mark = ctx.mark();
        do_write(&mut ctx, &mut p, 9);
        let home_acks = ctx
            .sent_since(mark)
            .iter()
            .filter(|(_, m)| matches!(m.kind, MsgKind::UpdateAck { dir: true }))
            .count();
        assert!(
            home_acks <= 2,
            "pairing should bound home acks, got {home_acks}"
        );
    }
}
