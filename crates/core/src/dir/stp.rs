//! Scalable Tree Protocol (Nilsson & Stenström, 1992; §2.2 of the paper)
//! — Dir₂Tree<sub>k</sub> with top-down balanced trees.
//!
//! Sharers occupy tree positions in arrival order: the `j`-th member's
//! parent is member `(j−1)/k`, so the tree is always balanced and
//! invalidations complete in `log_k P` time. The price (the paper's point)
//! is the read miss: joining costs an attach handshake on top of the data
//! reply (4–8 messages), and *replacement* needs a full repair — the last
//! member is moved into the hole, with fix-ups at both parents.
//!
//! The home keeps the arrival list as a simulation convenience (real STP
//! distributes this bookkeeping); every structural change still pays its
//! messages. Repairs run as home transactions through the same per-block
//! gate as misses, so an invalidation walk never races a half-applied
//! repair.

use crate::ctx::{ProtoCtx, ProtoEvent};
use crate::dir::util::{ack, AckCollectors, TxnGate};
use crate::msg::{Msg, MsgKind};
use crate::protocol::{ptr_bits, Protocol, ProtocolKind};
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::FxHashMap;

#[derive(Clone, Default, Hash)]
struct Entry {
    dirty: bool,
    owner: NodeId,
    /// Members in arrival order; member `j`'s parent is member `(j−1)/k`.
    members: Vec<NodeId>,
    pending: Option<(NodeId, OpKind)>,
    wait_wb: bool,
    wait_acks: u32,
}

/// The STP protocol with `arity`-ary trees.
#[derive(Clone)]
pub struct Stp {
    arity: u32,
    entries: FxHashMap<Addr, Entry>,
    gate: TxnGate,
    children: FxHashMap<(NodeId, Addr), Vec<NodeId>>,
    collectors: AckCollectors,
    /// Mover-side count of outstanding repair fix-up acks.
    fixups: FxHashMap<(NodeId, Addr), u32>,
}

impl Stp {
    pub fn new(arity: u32) -> Self {
        assert!(arity >= 2);
        Self {
            arity,
            entries: FxHashMap::default(),
            gate: TxnGate::new(),
            children: FxHashMap::default(),
            collectors: AckCollectors::new(),
            fixups: FxHashMap::default(),
        }
    }

    /// Arrival list (diagnostics).
    pub fn members(&self, addr: Addr) -> Vec<NodeId> {
        self.entries
            .get(&addr)
            .map(|e| e.members.clone())
            .unwrap_or_default()
    }

    pub fn children_of(&self, node: NodeId, addr: Addr) -> &[NodeId] {
        self.children
            .get(&(node, addr))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn finish_txn(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        if let Some(next) = self.gate.finish(addr) {
            ctx.redeliver(home, next, 0);
        }
    }

    fn handle_read_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::ReadReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let arity = self.arity as usize;
        let e = self.entries.entry(addr).or_default();
        if e.dirty {
            debug_assert_ne!(e.owner, requester);
            e.pending = Some((requester, OpKind::Read));
            e.wait_wb = true;
            let owner = e.owner;
            ctx.send(
                owner,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::WbReq {
                        for_op: OpKind::Read,
                        requester,
                    },
                },
            );
            return;
        }
        let parent = if let Some(j) = e.members.iter().position(|&m| m == requester) {
            // Re-read while a racing leave is still queued: keep the
            // existing position.
            if j == 0 {
                None
            } else {
                Some(e.members[(j - 1) / arity])
            }
        } else {
            e.members.push(requester);
            let j = e.members.len() - 1;
            if j == 0 {
                None
            } else {
                Some(e.members[(j - 1) / arity])
            }
        };
        ctx.send(
            requester,
            Msg {
                addr,
                src: home,
                kind: MsgKind::StpJoinResp { parent },
            },
        );
        // Transaction stays open until the FillAck (sent after the attach
        // handshake completes).
    }

    fn grant_write(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr, writer: NodeId) {
        let e = self.entries.get_mut(&addr).unwrap();
        e.dirty = true;
        e.owner = writer;
        e.members.clear();
        ctx.send(
            writer,
            Msg {
                addr,
                src: home,
                kind: MsgKind::WriteReply {
                    kill_self_subtree: false,
                },
            },
        );
        self.finish_txn(ctx, home, addr);
    }

    fn handle_write_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::WriteReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let e = self.entries.entry(addr).or_default();
        if e.dirty {
            e.pending = Some((requester, OpKind::Write));
            e.wait_wb = true;
            let owner = e.owner;
            ctx.send(
                owner,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::WbReq {
                        for_op: OpKind::Write,
                        requester,
                    },
                },
            );
            return;
        }
        if e.members.is_empty() {
            self.grant_write(ctx, home, addr, requester);
        } else {
            let root = e.members[0];
            e.pending = Some((requester, OpKind::Write));
            e.wait_acks = 1;
            e.members.clear();
            ctx.send(
                root,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::Inv {
                        also: None,
                        from_dir: true,
                    },
                },
            );
        }
    }

    fn handle_wb(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        home: NodeId,
        addr: Addr,
        src: NodeId,
        evict: bool,
    ) {
        let _ = src;
        let e = self.entries.entry(addr).or_default();
        if e.wait_wb {
            e.wait_wb = false;
            let (requester, op) = e.pending.take().expect("wait_wb without pending");
            e.dirty = false;
            let old_owner = e.owner;
            match op {
                OpKind::Read => {
                    e.members.clear();
                    if !evict {
                        e.members.push(old_owner);
                    }
                    let parent = e.members.first().copied();
                    e.members.push(requester);
                    ctx.send(
                        requester,
                        Msg {
                            addr,
                            src: home,
                            kind: MsgKind::StpJoinResp { parent },
                        },
                    );
                }
                OpKind::Write => self.grant_write(ctx, home, addr, requester),
            }
        } else {
            debug_assert!(evict);
            e.dirty = false;
            e.members.clear();
        }
    }

    /// Invalidation at a tree node: forward to the children map regardless
    /// of line state (eviction repairs, unlike Dir_iTree_k's silent kill,
    /// leave children alive).
    fn handle_inv(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::Inv { from_dir, .. } = msg.kind else {
            unreachable!()
        };
        if self.collectors.is_open(node, addr) {
            // Already collecting: the subtree is covered by the first
            // invalidation path; waiting here risks ack cycles. Answer
            // immediately (see dir_tree.rs for the acyclicity argument).
            ack(ctx, node, addr, msg.src, from_dir);
            return;
        }
        let state = ctx.line_state(node, addr);
        let kids = self.children.remove(&(node, addr)).unwrap_or_default();
        match state {
            LineState::V => {
                ctx.note(ProtoEvent::Invalidation);
                ctx.set_line_state(
                    node,
                    addr,
                    if kids.is_empty() {
                        LineState::Iv
                    } else {
                        LineState::InvIp
                    },
                );
            }
            LineState::E => unreachable!("Inv reached an exclusive owner"),
            _ => {}
        }
        if kids.is_empty() {
            ack(ctx, node, addr, msg.src, from_dir);
        } else {
            self.collectors
                .open(node, addr, msg.src, from_dir, kids.len() as u32);
            for k in kids {
                ctx.send(
                    k,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::Inv {
                            also: None,
                            from_dir: false,
                        },
                    },
                );
            }
        }
    }

    fn handle_inv_ack_cache(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr) {
        if let Some(targets) = self.collectors.ack(node, addr) {
            if ctx.line_state(node, addr) == LineState::InvIp {
                ctx.set_line_state(node, addr, LineState::Iv);
            }
            for (to, dir) in targets {
                ack(ctx, node, addr, to, dir);
            }
        }
    }

    fn handle_inv_ack_home(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        let e = self.entries.get_mut(&addr).expect("ack without entry");
        debug_assert!(e.wait_acks > 0);
        e.wait_acks -= 1;
        if e.wait_acks == 0 {
            let (requester, op) = e.pending.take().expect("acks without pending");
            debug_assert_eq!(op, OpKind::Write);
            self.grant_write(ctx, home, addr, requester);
        }
    }

    /// A member left: repair the balanced tree by moving the last member
    /// into the hole (home transaction; see module docs).
    fn handle_leave(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let leaver = msg.src;
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let arity = self.arity as usize;
        let e = self.entries.entry(addr).or_default();
        let Some(j) = e.members.iter().position(|&m| m == leaver) else {
            // Already gone (a write transaction cleared the tree first).
            self.finish_txn(ctx, home, addr);
            return;
        };
        let last = e.members.len() - 1;
        ctx.note(ProtoEvent::ReplacementInvalidation);
        if j == last {
            e.members.pop();
            self.children.remove(&(leaver, addr));
            if j == 0 {
                // Sole member: nothing to fix.
                self.finish_txn(ctx, home, addr);
            } else {
                // Tell the parent to forget the leaver; its ack closes the
                // transaction.
                let parent = e.members[(j - 1) / arity];
                ctx.send(
                    parent,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::StpFixup {
                            remove: Some(leaver),
                            add: None,
                            from_home: true,
                        },
                    },
                );
            }
        } else {
            let mover = e.members[last];
            e.members[j] = mover;
            e.members.pop();
            let new_parent = if j == 0 {
                None
            } else {
                Some(e.members[(j - 1) / arity])
            };
            // The mover adopts the leaver's children (by position).
            let new_children: Vec<NodeId> = (1..=arity)
                .map(|c| arity * j + c)
                .filter(|&c| c < e.members.len())
                .map(|c| e.members[c])
                .collect();
            ctx.send(
                mover,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::StpMove {
                        replacing: leaver,
                        new_parent: new_parent.filter(|&p| p != mover),
                        new_children,
                    },
                },
            );
        }
    }

    fn handle_move(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::StpMove {
            replacing,
            new_parent,
            new_children,
        } = msg.kind
        else {
            unreachable!()
        };
        let home = ctx.home_of(addr);
        // Take over the leaver's children locally (we were the last member
        // so we had none of our own).
        let mut inherited = self.children.remove(&(replacing, addr)).unwrap_or_default();
        inherited.retain(|&c| c != node);
        for c in new_children {
            if !inherited.contains(&c) && c != node {
                inherited.push(c);
            }
        }
        if inherited.is_empty() {
            self.children.remove(&(node, addr));
        } else {
            self.children.insert((node, addr), inherited);
        }
        // Fix both parents; their acks close the leave transaction. Our
        // old parent is whoever currently lists us as a child.
        let old_parents: Vec<NodeId> = self
            .children
            .iter()
            .filter(|((p, a), kids)| *a == addr && *p != node && kids.contains(&node))
            .map(|((p, _), _)| *p)
            .collect();
        let mut outstanding = 0;
        for p in old_parents {
            ctx.send(
                p,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::StpFixup {
                        remove: Some(node),
                        add: None,
                        from_home: false,
                    },
                },
            );
            outstanding += 1;
        }
        if let Some(np) = new_parent {
            ctx.send(
                np,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::StpFixup {
                        remove: Some(replacing),
                        add: Some(node),
                        from_home: false,
                    },
                },
            );
            outstanding += 1;
        }
        if outstanding == 0 {
            ctx.send(
                home,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::StpLeaveDone,
                },
            );
        } else {
            self.fixups.insert((node, addr), outstanding);
        }
    }

    fn handle_fixup(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::StpFixup {
            remove,
            add,
            from_home,
        } = msg.kind
        else {
            unreachable!()
        };
        let kids = self.children.entry((node, addr)).or_default();
        if let Some(r) = remove {
            kids.retain(|&c| c != r);
        }
        if let Some(a) = add {
            if !kids.contains(&a) && a != node {
                kids.push(a);
            }
        }
        if kids.is_empty() {
            self.children.remove(&(node, addr));
        }
        ctx.send(
            msg.src,
            Msg {
                addr,
                src: node,
                kind: MsgKind::StpFixupAck { dir: from_home },
            },
        );
    }

    fn handle_fixup_ack(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, dir: bool) {
        if dir {
            // Home-issued fix-up (leaver-was-last case): close the txn.
            self.finish_txn(ctx, node, addr);
        } else {
            let remaining = self
                .fixups
                .get_mut(&(node, addr))
                .expect("fixup ack without pending repair");
            *remaining -= 1;
            if *remaining == 0 {
                self.fixups.remove(&(node, addr));
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::StpLeaveDone,
                    },
                );
            }
        }
    }

    fn handle_join_resp(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::StpJoinResp { parent } = msg.kind else {
            unreachable!()
        };
        debug_assert_eq!(ctx.line_state(node, addr), LineState::RmIp);
        match parent {
            Some(p) if p != node => {
                // Attach handshake before the miss completes.
                ctx.send(
                    p,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::StpAttach,
                    },
                );
            }
            _ => self.fill(ctx, node, addr),
        }
    }

    fn fill(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr) {
        ctx.set_line_state(node, addr, LineState::V);
        ctx.complete(node, addr, OpKind::Read);
        let home = ctx.home_of(addr);
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind: MsgKind::FillAck,
            },
        );
    }
}

impl Protocol for Stp {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Stp { arity: self.arity }
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        let home = ctx.home_of(addr);
        let kind = match op {
            OpKind::Read => MsgKind::ReadReq { requester: node },
            OpKind::Write => MsgKind::WriteReq { requester: node },
        };
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind,
            },
        );
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        match msg.kind {
            MsgKind::ReadReq { .. } => self.handle_read_req(ctx, node, msg),
            MsgKind::WriteReq { .. } => self.handle_write_req(ctx, node, msg),
            MsgKind::WbData { .. } => self.handle_wb(ctx, node, addr, msg.src, false),
            MsgKind::WbEvict => self.handle_wb(ctx, node, addr, msg.src, true),
            MsgKind::InvAck { dir: true } => self.handle_inv_ack_home(ctx, node, addr),
            MsgKind::InvAck { dir: false } => self.handle_inv_ack_cache(ctx, node, addr),
            MsgKind::FillAck => self.finish_txn(ctx, node, addr),
            MsgKind::StpJoinResp { .. } => self.handle_join_resp(ctx, node, msg),
            MsgKind::StpAttach => {
                let child = msg.src;
                let kids = self.children.entry((node, addr)).or_default();
                if !kids.contains(&child) {
                    kids.push(child);
                }
                ctx.send(
                    child,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::StpAttachAck,
                    },
                );
            }
            MsgKind::StpAttachAck => self.fill(ctx, node, addr),
            MsgKind::StpLeave => self.handle_leave(ctx, node, msg),
            MsgKind::StpLeaveDone => self.finish_txn(ctx, node, addr),
            MsgKind::StpMove { .. } => self.handle_move(ctx, node, msg),
            MsgKind::StpFixup { .. } => self.handle_fixup(ctx, node, msg),
            MsgKind::StpFixupAck { dir } => self.handle_fixup_ack(ctx, node, addr, dir),
            MsgKind::Inv { .. } => self.handle_inv(ctx, node, msg),
            MsgKind::WriteReply { .. } => {
                debug_assert_eq!(ctx.line_state(node, addr), LineState::WmIp);
                self.children.remove(&(node, addr));
                ctx.set_line_state(node, addr, LineState::E);
                ctx.complete(node, addr, OpKind::Write);
            }
            MsgKind::WbReq { for_op, requester } => {
                use crate::types::LineState as S;
                if ctx.line_state(node, addr) == S::E {
                    ctx.set_line_state(
                        node,
                        addr,
                        match for_op {
                            OpKind::Read => S::V,
                            OpKind::Write => S::Iv,
                        },
                    );
                    let home = ctx.home_of(addr);
                    ctx.send(
                        home,
                        Msg {
                            addr,
                            src: node,
                            kind: MsgKind::WbData { for_op, requester },
                        },
                    );
                }
            }
            other => unreachable!("STP received {other:?}"),
        }
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        let home = ctx.home_of(addr);
        match state {
            LineState::V => {
                // The tree is repaired by the home; children survive.
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::StpLeave,
                    },
                );
            }
            LineState::E => {
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::WbEvict,
                    },
                );
            }
            other => unreachable!("evicting line in state {other:?}"),
        }
    }

    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        // Root + latest pointers (Dir₂Tree_k) + dirty.
        2 * ptr_bits(nodes) + 1
    }

    fn cache_bits_per_line(&self, nodes: u32) -> u64 {
        self.arity as u64 * ptr_bits(nodes) + 3
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        use crate::fingerprint::digest_map;
        digest_map(h, &self.entries);
        self.gate.digest(h);
        digest_map(h, &self.children);
        self.collectors.digest(h);
        digest_map(h, &self.fixups);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockCtx;

    const A: Addr = 0;

    fn setup(nodes: u32) -> (MockCtx, Stp) {
        (MockCtx::new(nodes), Stp::new(2))
    }

    #[test]
    fn first_read_two_messages_then_four() {
        let (mut ctx, mut p) = setup(16);
        let mark = ctx.mark();
        ctx.read(&mut p, 1, A);
        assert_eq!(ctx.critical_since(mark), 2, "root joins without attach");
        let mark = ctx.mark();
        ctx.read(&mut p, 2, A);
        assert_eq!(
            ctx.critical_since(mark),
            4,
            "paper Table 1: req + join + attach + ack"
        );
    }

    #[test]
    fn tree_is_balanced_by_arrival_order() {
        let (mut ctx, mut p) = setup(16);
        for n in 1..=7 {
            ctx.read(&mut p, n, A);
        }
        assert_eq!(p.members(A), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(p.children_of(1, A), &[2, 3]);
        assert_eq!(p.children_of(2, A), &[4, 5]);
        assert_eq!(p.children_of(3, A), &[6, 7]);
    }

    #[test]
    fn write_invalidates_via_the_tree_with_one_home_ack() {
        let (mut ctx, mut p) = setup(16);
        for n in 1..=7 {
            ctx.read(&mut p, n, A);
        }
        let mark = ctx.mark();
        ctx.write(&mut p, 9, A);
        let dir_acks = ctx
            .sent_since(mark)
            .iter()
            .filter(|(_, m)| matches!(m.kind, MsgKind::InvAck { dir: true }))
            .count();
        assert_eq!(dir_acks, 1, "only the root acks the home");
        for n in 1..=7 {
            assert!(!ctx.line_state(n, A).readable());
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn leaf_eviction_repairs_cheaply() {
        let (mut ctx, mut p) = setup(16);
        for n in 1..=7 {
            ctx.read(&mut p, n, A);
        }
        ctx.evict(&mut p, 7, A); // last member: parent fix-up only
        assert_eq!(p.members(A), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(p.children_of(3, A), &[6]);
        ctx.write(&mut p, 9, A);
        ctx.assert_swmr(A);
    }

    #[test]
    fn interior_eviction_moves_last_member_into_hole() {
        let (mut ctx, mut p) = setup(16);
        for n in 1..=7 {
            ctx.read(&mut p, n, A);
        }
        ctx.evict(&mut p, 2, A); // member 7 moves into position 1
        assert_eq!(p.members(A), vec![1, 7, 3, 4, 5, 6]);
        assert_eq!(p.children_of(1, A), &[3, 7]);
        assert_eq!(p.children_of(7, A), &[4, 5]);
        // 7's old parent (3) no longer lists it.
        assert_eq!(p.children_of(3, A), &[6]);
        // Everyone still reachable: a write kills all survivors.
        ctx.write(&mut p, 9, A);
        for n in [1, 3, 4, 5, 6, 7] {
            assert!(!ctx.line_state(n, A).readable(), "node {n} survived");
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn root_eviction_promotes_last_member() {
        let (mut ctx, mut p) = setup(16);
        for n in 1..=5 {
            ctx.read(&mut p, n, A);
        }
        ctx.evict(&mut p, 1, A);
        assert_eq!(p.members(A), vec![5, 2, 3, 4]);
        assert_eq!(p.children_of(5, A), &[2, 3]);
        ctx.write(&mut p, 9, A);
        ctx.assert_swmr(A);
    }

    #[test]
    fn dirty_read_rebuilds_tree_from_owner() {
        let (mut ctx, mut p) = setup(16);
        ctx.write(&mut p, 2, A);
        ctx.read(&mut p, 5, A);
        assert_eq!(p.members(A), vec![2, 5]);
        assert_eq!(ctx.line_state(2, A), LineState::V);
        assert_eq!(p.children_of(2, A), &[5]);
    }

    #[test]
    fn upgrade_write_from_interior_node() {
        let (mut ctx, mut p) = setup(16);
        for n in 1..=5 {
            ctx.read(&mut p, n, A);
        }
        ctx.write(&mut p, 2, A);
        assert_eq!(ctx.line_state(2, A), LineState::E);
        for n in [1, 3, 4, 5] {
            assert!(!ctx.line_state(n, A).readable());
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn sequential_writers_chain_ownership() {
        let (mut ctx, mut p) = setup(8);
        for n in 0..8 {
            ctx.write(&mut p, n, A);
            ctx.assert_swmr(A);
            assert_eq!(ctx.holders(A), vec![n]);
        }
    }

    #[test]
    fn deep_tree_invalidation_reaches_all_leaves() {
        let (mut ctx, mut p) = setup(32);
        for n in 1..=20 {
            ctx.read(&mut p, n, A);
        }
        ctx.write(&mut p, 25, A);
        for n in 1..=20 {
            assert!(!ctx.line_state(n, A).readable());
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn directory_is_two_pointers() {
        let p = Stp::new(2);
        assert_eq!(p.dir_bits_per_mem_block(32), 11);
        assert_eq!(p.cache_bits_per_line(32), 13);
    }
}
