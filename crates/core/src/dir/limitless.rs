//! LimitLESS<sub>i</sub> — software-extended limited directory (Chaiken,
//! Kubiatowicz & Agarwal, ASPLOS 1991; §2.1B of the paper).
//!
//! `i` hardware pointers per block behave like Dir<sub>i</sub>NB while they
//! suffice. On overflow, the home processor traps into software and stores
//! the extra pointers in ordinary memory, so sharing information is never
//! lost — but every trap occupies the home controller for
//! `sw_trap_cycles`, and a write to an overflowed block pays a software
//! walk over the spilled pointers: the "(P − i) software handler delay" of
//! the paper's Table 1.

use crate::ctx::{ProtoCtx, ProtoEvent};
use crate::dir::util::{FlatCacheSide, TxnGate};
use crate::msg::{Msg, MsgKind};
use crate::protocol::{ptr_bits, Protocol, ProtocolKind};
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::{Cycle, FxHashMap};

#[derive(Clone, Default, Hash)]
struct Entry {
    dirty: bool,
    owner: NodeId,
    hw: Vec<NodeId>,
    sw: Vec<NodeId>,
    pending: Option<(NodeId, OpKind)>,
    wait_acks: u32,
    wait_wb: bool,
}

/// The LimitLESS_i protocol.
#[derive(Clone)]
pub struct LimitLess {
    pointers: u32,
    trap_cycles: Cycle,
    entries: FxHashMap<Addr, Entry>,
    gate: TxnGate,
    cache: FlatCacheSide,
}

impl LimitLess {
    pub fn new(pointers: u32, trap_cycles: Cycle) -> Self {
        assert!(pointers >= 1);
        Self {
            pointers,
            trap_cycles,
            entries: FxHashMap::default(),
            gate: TxnGate::new(),
            cache: FlatCacheSide::new(),
        }
    }

    fn finish_txn(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        if let Some(next) = self.gate.finish(addr) {
            ctx.redeliver(home, next, 0);
        }
    }

    fn grant_write(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr, writer: NodeId) {
        let e = self.entries.get_mut(&addr).unwrap();
        e.dirty = true;
        e.owner = writer;
        e.hw.clear();
        e.sw.clear();
        ctx.send(
            writer,
            Msg {
                addr,
                src: home,
                kind: MsgKind::WriteReply {
                    kill_self_subtree: false,
                },
            },
        );
        self.finish_txn(ctx, home, addr);
    }

    fn handle_read_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::ReadReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let pointers = self.pointers as usize;
        let trap = self.trap_cycles;
        let e = self.entries.entry(addr).or_default();
        if e.dirty {
            debug_assert_ne!(e.owner, requester);
            e.pending = Some((requester, OpKind::Read));
            e.wait_wb = true;
            let owner = e.owner;
            ctx.send(
                owner,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::WbReq {
                        for_op: OpKind::Read,
                        requester,
                    },
                },
            );
            return;
        }
        if !e.hw.contains(&requester) && !e.sw.contains(&requester) {
            if e.hw.len() < pointers {
                e.hw.push(requester);
            } else {
                // Pointer overflow: trap to software, spill to memory.
                e.sw.push(requester);
                ctx.note(ProtoEvent::SoftwareTrap);
                ctx.occupy(home, trap);
            }
        }
        ctx.send(
            requester,
            Msg {
                addr,
                src: home,
                kind: MsgKind::ReadReply { adopt: vec![] },
            },
        );
        // Transaction stays open until the FillAck.
    }

    fn handle_write_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::WriteReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let trap = self.trap_cycles;
        let e = self.entries.entry(addr).or_default();
        if e.dirty {
            e.pending = Some((requester, OpKind::Write));
            e.wait_wb = true;
            let owner = e.owner;
            ctx.send(
                owner,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::WbReq {
                        for_op: OpKind::Write,
                        requester,
                    },
                },
            );
            return;
        }
        let spilled = e.sw.len() as u64;
        let targets: Vec<NodeId> =
            e.hw.iter()
                .chain(e.sw.iter())
                .copied()
                .filter(|&n| n != requester)
                .collect();
        if spilled > 0 {
            // Software walk over the spilled pointers: the paper's
            // "(P − i) software handler delay".
            ctx.note(ProtoEvent::SoftwareTrap);
            ctx.occupy(home, trap * spilled);
        }
        if targets.is_empty() {
            self.grant_write(ctx, home, addr, requester);
        } else {
            e.pending = Some((requester, OpKind::Write));
            e.wait_acks = targets.len() as u32;
            e.hw.clear();
            e.sw.clear();
            for t in targets {
                ctx.send(
                    t,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::Inv {
                            also: None,
                            from_dir: true,
                        },
                    },
                );
            }
        }
    }

    fn handle_wb(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        home: NodeId,
        addr: Addr,
        src: NodeId,
        evict: bool,
    ) {
        let e = self.entries.entry(addr).or_default();
        if e.wait_wb {
            e.wait_wb = false;
            let (requester, op) = e.pending.take().expect("wait_wb without pending");
            e.dirty = false;
            let old_owner = e.owner;
            match op {
                OpKind::Read => {
                    e.hw.clear();
                    e.sw.clear();
                    if !evict {
                        e.hw.push(old_owner);
                    }
                    e.hw.push(requester);
                    ctx.send(
                        requester,
                        Msg {
                            addr,
                            src: home,
                            kind: MsgKind::ReadReply { adopt: vec![] },
                        },
                    );
                    // Transaction stays open until the FillAck.
                }
                OpKind::Write => self.grant_write(ctx, home, addr, requester),
            }
        } else {
            debug_assert!(evict);
            debug_assert!(e.dirty && e.owner == src);
            e.dirty = false;
            e.hw.clear();
            e.sw.clear();
        }
    }

    fn handle_inv_ack(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        let e = self.entries.get_mut(&addr).expect("ack without entry");
        debug_assert!(e.wait_acks > 0);
        e.wait_acks -= 1;
        if e.wait_acks == 0 {
            let (requester, op) = e.pending.take().expect("acks without pending");
            debug_assert_eq!(op, OpKind::Write);
            self.grant_write(ctx, home, addr, requester);
        }
    }
}

impl Protocol for LimitLess {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::LimitLess {
            pointers: self.pointers,
        }
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        let home = ctx.home_of(addr);
        let kind = match op {
            OpKind::Read => MsgKind::ReadReq { requester: node },
            OpKind::Write => MsgKind::WriteReq { requester: node },
        };
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind,
            },
        );
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        match msg.kind {
            MsgKind::ReadReq { .. } => self.handle_read_req(ctx, node, msg),
            MsgKind::WriteReq { .. } => self.handle_write_req(ctx, node, msg),
            MsgKind::WbData { .. } => self.handle_wb(ctx, node, addr, msg.src, false),
            MsgKind::WbEvict => self.handle_wb(ctx, node, addr, msg.src, true),
            MsgKind::InvAck { dir: true } => self.handle_inv_ack(ctx, node, addr),
            MsgKind::FillAck => self.finish_txn(ctx, node, addr),
            MsgKind::ReadReply { .. } => self.cache.read_fill(ctx, node, addr),
            MsgKind::WriteReply { .. } => self.cache.write_fill(ctx, node, addr),
            MsgKind::Inv { from_dir, .. } => self.cache.inv(ctx, node, addr, msg.src, from_dir),
            MsgKind::WbReq { for_op, requester } => {
                self.cache.wb_req(ctx, node, addr, for_op, requester)
            }
            other => unreachable!("LimitLESS received {other:?}"),
        }
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        match state {
            LineState::V => {}
            LineState::E => {
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::WbEvict,
                    },
                );
            }
            other => unreachable!("evicting line in state {other:?}"),
        }
    }

    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        // Hardware cost only: i pointers + dirty + trap bit. The software
        // spill lives in ordinary memory.
        self.pointers as u64 * ptr_bits(nodes) + 2
    }

    fn cache_bits_per_line(&self, _nodes: u32) -> u64 {
        3
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        crate::fingerprint::digest_map(h, &self.entries);
        self.gate.digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockCtx;

    const A: Addr = 0;

    fn setup(nodes: u32, pointers: u32) -> (MockCtx, LimitLess) {
        (MockCtx::new(nodes), LimitLess::new(pointers, 40))
    }

    #[test]
    fn no_trap_within_hardware_pointers() {
        let (mut ctx, mut p) = setup(16, 4);
        for n in 1..=4 {
            ctx.read(&mut p, n, A);
        }
        assert!(!ctx.events.contains(&ProtoEvent::SoftwareTrap));
    }

    #[test]
    fn overflow_traps_but_keeps_precision() {
        let (mut ctx, mut p) = setup(16, 4);
        for n in 1..=8 {
            ctx.read(&mut p, n, A);
        }
        let traps = ctx
            .events
            .iter()
            .filter(|e| **e == ProtoEvent::SoftwareTrap)
            .count();
        assert_eq!(traps, 4, "one trap per spilled pointer");
        // Precision retained: a write invalidates all 8.
        ctx.write(&mut p, 9, A);
        for n in 1..=8 {
            assert!(!ctx.line_state(n, A).readable());
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn write_with_spill_charges_handler_occupancy() {
        let (mut ctx, mut p) = setup(16, 4);
        for n in 1..=8 {
            ctx.read(&mut p, n, A);
        }
        let t0 = ctx.now;
        ctx.write(&mut p, 9, A);
        // The mock adds occupancy to `now`: 4 spilled pointers * 40 cycles
        // must appear (plus message steps, each +1).
        assert!(ctx.now - t0 >= 160, "software walk not charged");
    }

    #[test]
    fn no_trap_on_rereads_of_tracked_sharers() {
        let (mut ctx, mut p) = setup(16, 2);
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A);
        ctx.read(&mut p, 3, A); // trap
        let traps_before = ctx.events.len();
        ctx.evict(&mut p, 3, A);
        ctx.read(&mut p, 3, A); // already in sw list: no new trap
        assert_eq!(ctx.events.len(), traps_before);
    }

    #[test]
    fn dirty_paths_match_full_map_semantics() {
        let (mut ctx, mut p) = setup(16, 2);
        ctx.write(&mut p, 1, A);
        ctx.read(&mut p, 2, A);
        assert_eq!(ctx.line_state(1, A), LineState::V);
        ctx.write(&mut p, 3, A);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![3]);
    }

    #[test]
    fn spilled_sharer_upgrade_invalidates_everyone_else() {
        let (mut ctx, mut p) = setup(16, 2);
        for n in 1..=6 {
            ctx.read(&mut p, n, A); // 3..6 spilled to software
        }
        ctx.write(&mut p, 5, A); // a spilled sharer upgrades
        assert_eq!(ctx.line_state(5, A), LineState::E);
        for n in [1, 2, 3, 4, 6] {
            assert!(!ctx.line_state(n, A).readable(), "node {n} survived");
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn eviction_then_reread_hits_software_list_without_new_trap() {
        let (mut ctx, mut p) = setup(16, 1);
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A); // trap: spill 2
        let traps_before = ctx
            .events
            .iter()
            .filter(|e| **e == ProtoEvent::SoftwareTrap)
            .count();
        ctx.evict(&mut p, 2, A);
        ctx.read(&mut p, 2, A); // already recorded in software
        let traps_after = ctx
            .events
            .iter()
            .filter(|e| **e == ProtoEvent::SoftwareTrap)
            .count();
        assert_eq!(traps_before, traps_after);
    }

    #[test]
    fn hardware_bits_exclude_software_spill() {
        let p = LimitLess::new(4, 40);
        assert_eq!(p.dir_bits_per_mem_block(32), 4 * 5 + 2);
    }
}
