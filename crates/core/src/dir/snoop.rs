//! Snooping MSI protocol — the bus-based baseline of the paper's §1
//! framing ("most of the popular cache coherence protocols are based on
//! snooping on the bus... the obvious limitation is the limited number of
//! processors that can be supported by a single bus").
//!
//! A split-transaction design with the block's memory controller as the
//! serialization point: a miss is requested from the memory, which
//! broadcasts the snoop (`BusRead` / `BusReadX`) — a *single* transaction
//! on the bus fabric, observed by every cache simultaneously — waits a
//! fixed snoop window for the wired-OR snoop result, and then supplies the
//! data (the previous modified owner flushes through the same memory
//! observation, which on a snooping bus sees all traffic).
//!
//! Pair with [`dirtree_net::NetworkConfig::bus`] for the intended fabric;
//! on a point-to-point network the broadcast degenerates to `n − 1`
//! unicasts, which is exactly the §1 argument for directories.

use crate::ctx::{ProtoCtx, ProtoEvent};
use crate::dir::util::TxnGate;
use crate::msg::{Msg, MsgKind};
use crate::protocol::{Protocol, ProtocolKind};
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::{Cycle, FxHashMap};

/// Cycles between the snoop broadcast and the data supply: long enough for
/// every snooper to have retired the invalidation/downgrade (cache latency
/// plus slack), modeling the synchronous wired snoop-result lines.
const SNOOP_WINDOW: Cycle = 4;

#[derive(Clone, Default, Hash)]
struct Entry {
    /// The memory controller snoops the bus too, so it always knows the
    /// modified owner.
    owner: Option<NodeId>,
}

/// The snooping MSI protocol.
#[derive(Clone)]
pub struct Snoop {
    entries: FxHashMap<Addr, Entry>,
    gate: TxnGate,
}

impl Snoop {
    pub fn new() -> Self {
        Self {
            entries: FxHashMap::default(),
            gate: TxnGate::new(),
        }
    }

    fn finish_txn(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        if let Some(next) = self.gate.finish(addr) {
            ctx.redeliver(home, next, 0);
        }
    }

    fn handle_request(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg, write: bool) {
        let addr = msg.addr;
        let requester = match msg.kind {
            MsgKind::ReadReq { requester } | MsgKind::WriteReq { requester } => requester,
            _ => unreachable!(),
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        // Broadcast the snoop; every cache (including the old owner and an
        // upgrading requester) observes it simultaneously. The broadcast
        // skips its sender, but the home node's *cache* snoops the bus
        // like any other: deliver to ourselves locally as well.
        let snoop = if write {
            MsgKind::BusReadX { requester }
        } else {
            MsgKind::BusRead { requester }
        };
        let delivered_by = ctx.broadcast(Msg {
            addr,
            src: home,
            kind: snoop.clone(),
        });
        ctx.redeliver(
            home,
            Msg {
                addr,
                src: home,
                kind: snoop,
            },
            1,
        );
        let e = self.entries.entry(addr).or_default();
        if write {
            e.owner = Some(requester);
        } else {
            // Modified data is flushed during the snoop; memory is clean.
            e.owner = None;
        }
        // Supply after the snoop window, anchored to the broadcast's
        // actual delivery time (the bus may be backed up).
        let window = delivered_by.saturating_sub(ctx.now()) + SNOOP_WINDOW;
        ctx.redeliver(
            home,
            Msg {
                addr,
                src: home,
                kind: MsgKind::BusWindow {
                    requester,
                    exclusive: write,
                },
            },
            window,
        );
    }
}

impl Default for Snoop {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for Snoop {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Snoop
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        let home = ctx.home_of(addr);
        let kind = match op {
            OpKind::Read => MsgKind::ReadReq { requester: node },
            OpKind::Write => MsgKind::WriteReq { requester: node },
        };
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind,
            },
        );
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        match msg.kind {
            MsgKind::ReadReq { .. } => self.handle_request(ctx, node, msg, false),
            MsgKind::WriteReq { .. } => self.handle_request(ctx, node, msg, true),
            MsgKind::BusRead { requester } => {
                // Snoopers: a modified owner downgrades (flush is implicit
                // in the split transaction — memory snoops the bus).
                if node != requester && ctx.line_state(node, addr) == LineState::E {
                    ctx.set_line_state(node, addr, LineState::V);
                }
            }
            MsgKind::BusReadX { requester } => {
                if node != requester {
                    match ctx.line_state(node, addr) {
                        LineState::V | LineState::E => {
                            ctx.note(ProtoEvent::Invalidation);
                            ctx.set_line_state(node, addr, LineState::Iv);
                        }
                        _ => {}
                    }
                }
            }
            MsgKind::BusWindow {
                requester,
                exclusive,
            } => {
                // The snoop window elapsed at the memory: supply the data.
                ctx.send(
                    requester,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::BusData { exclusive },
                    },
                );
            }
            MsgKind::BusData { exclusive } => {
                ctx.set_line_state(
                    node,
                    addr,
                    if exclusive {
                        LineState::E
                    } else {
                        LineState::V
                    },
                );
                ctx.complete(
                    node,
                    addr,
                    if exclusive {
                        OpKind::Write
                    } else {
                        OpKind::Read
                    },
                );
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::FillAck,
                    },
                );
            }
            MsgKind::FillAck => self.finish_txn(ctx, node, addr),
            MsgKind::WbEvict => {
                let e = self.entries.entry(addr).or_default();
                if e.owner == Some(msg.src) {
                    e.owner = None;
                }
            }
            other => unreachable!("snooping MSI received {other:?}"),
        }
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        match state {
            LineState::V => {}
            LineState::E => {
                // Flush on the bus (one data transaction to memory).
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::WbEvict,
                    },
                );
            }
            other => unreachable!("evicting line in state {other:?}"),
        }
    }

    fn dir_bits_per_mem_block(&self, _nodes: u32) -> u64 {
        // No directory at all — the bus is the directory.
        0
    }

    fn cache_bits_per_line(&self, _nodes: u32) -> u64 {
        2 // MSI state
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        crate::fingerprint::digest_map(h, &self.entries);
        self.gate.digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockCtx;

    const A: Addr = 0;

    fn setup(nodes: u32) -> (MockCtx, Snoop) {
        (MockCtx::new(nodes), Snoop::new())
    }

    #[test]
    fn read_then_write_is_coherent() {
        let (mut ctx, mut p) = setup(8);
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A);
        ctx.write(&mut p, 3, A);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![3]);
    }

    #[test]
    fn bus_readx_invalidates_every_snooper() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=6 {
            ctx.read(&mut p, n, A);
        }
        ctx.write(&mut p, 7, A);
        for n in 1..=6 {
            assert!(!ctx.line_state(n, A).readable());
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn owner_downgrades_on_bus_read() {
        let (mut ctx, mut p) = setup(8);
        ctx.write(&mut p, 2, A);
        ctx.read(&mut p, 5, A);
        assert_eq!(ctx.line_state(2, A), LineState::V);
        assert_eq!(ctx.line_state(5, A), LineState::V);
        ctx.assert_swmr(A);
    }

    #[test]
    fn upgrade_keeps_writer_alive() {
        let (mut ctx, mut p) = setup(8);
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A);
        ctx.write(&mut p, 1, A);
        assert_eq!(ctx.line_state(1, A), LineState::E);
        assert!(!ctx.line_state(2, A).readable());
    }

    #[test]
    fn migratory_ownership_chain() {
        let (mut ctx, mut p) = setup(8);
        for n in 0..8 {
            ctx.write(&mut p, n, A);
            ctx.assert_swmr(A);
            assert_eq!(ctx.holders(A), vec![n]);
        }
    }

    #[test]
    fn no_directory_bits() {
        let p = Snoop::new();
        assert_eq!(p.dir_bits_per_mem_block(1024), 0);
        assert_eq!(p.cache_bits_per_line(1024), 2);
    }
}
