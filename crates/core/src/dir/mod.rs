//! Directory protocol implementations.
//!
//! * [`dir_tree`] — **the paper's contribution**, Dir<sub>i</sub>Tree<sub>k</sub>;
//! * [`full_map`], [`limited`], [`limitless`] — bit-map family baselines;
//! * [`singly`], [`sci`] — linked-list baselines;
//! * [`stp`], [`sci_tree`] — tree-structured baselines;
//! * [`snoop`] — the §1 snooping-MSI bus baseline;
//! * [`util`] — shared building blocks (per-block transaction gate,
//!   invalidation-ack collector).

pub mod dir_tree;
pub mod dir_tree_update;
pub mod full_map;
pub mod limited;
pub mod limitless;
pub mod sci;
pub mod sci_tree;
pub mod singly;
pub mod snoop;
pub mod stp;
pub mod util;
