//! Full-map directory protocol (Dir<sub>n</sub>NB), §2.1A of the paper.
//!
//! Each memory block keeps one presence bit per node plus a dirty bit. Read
//! misses cost 2 messages; a write miss invalidating `P` sharers costs
//! `2P + 2` messages, all serialized through the home. Directory overhead is
//! `n` bits per block (`B·n²` machine-wide), the scalability problem the
//! paper attacks.

use crate::ctx::ProtoCtx;
use crate::dir::util::{FlatCacheSide, NodeSet, TxnGate};
use crate::msg::{Msg, MsgKind};
use crate::protocol::{Protocol, ProtocolKind};
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::FxHashMap;

#[derive(Clone, Default, Hash)]
struct Entry {
    dirty: bool,
    owner: NodeId,
    sharers: Option<NodeSet>,
    /// Requester granted once the outstanding writeback / acks arrive.
    pending: Option<(NodeId, OpKind)>,
    wait_acks: u32,
    wait_wb: bool,
}

impl Entry {
    fn sharers(&mut self, nodes: u32) -> &mut NodeSet {
        self.sharers.get_or_insert_with(|| NodeSet::new(nodes))
    }
}

/// The Dir_nNB full bit-map directory protocol.
#[derive(Clone)]
pub struct FullMap {
    entries: FxHashMap<Addr, Entry>,
    gate: TxnGate,
    cache: FlatCacheSide,
}

impl FullMap {
    pub fn new() -> Self {
        Self {
            entries: FxHashMap::default(),
            gate: TxnGate::new(),
            cache: FlatCacheSide::new(),
        }
    }

    fn finish_txn(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        if let Some(next) = self.gate.finish(addr) {
            ctx.redeliver(home, next, 0);
        }
    }

    fn grant_write(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr, writer: NodeId) {
        let e = self.entries.get_mut(&addr).unwrap();
        e.dirty = true;
        e.owner = writer;
        if let Some(s) = e.sharers.as_mut() {
            s.clear();
        }
        ctx.send(
            writer,
            Msg {
                addr,
                src: home,
                kind: MsgKind::WriteReply {
                    kill_self_subtree: false,
                },
            },
        );
        self.finish_txn(ctx, home, addr);
    }

    fn handle_read_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::ReadReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let nodes = ctx.num_nodes();
        let e = self.entries.entry(addr).or_default();
        if e.dirty {
            debug_assert_ne!(e.owner, requester, "owner re-reading implies lost WbEvict");
            e.pending = Some((requester, OpKind::Read));
            e.wait_wb = true;
            let owner = e.owner;
            ctx.send(
                owner,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::WbReq {
                        for_op: OpKind::Read,
                        requester,
                    },
                },
            );
        } else {
            e.sharers(nodes).insert(requester);
            ctx.send(
                requester,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::ReadReply { adopt: vec![] },
                },
            );
            // Transaction stays open until the FillAck.
        }
    }

    fn handle_write_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::WriteReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let e = self.entries.entry(addr).or_default();
        if e.dirty {
            e.pending = Some((requester, OpKind::Write));
            e.wait_wb = true;
            let owner = e.owner;
            ctx.send(
                owner,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::WbReq {
                        for_op: OpKind::Write,
                        requester,
                    },
                },
            );
            return;
        }
        let targets: Vec<NodeId> = e
            .sharers
            .as_ref()
            .map(|s| s.iter().filter(|&n| n != requester).collect())
            .unwrap_or_default();
        if targets.is_empty() {
            self.grant_write(ctx, home, addr, requester);
        } else {
            e.pending = Some((requester, OpKind::Write));
            e.wait_acks = targets.len() as u32;
            e.sharers.as_mut().unwrap().clear();
            for t in targets {
                ctx.send(
                    t,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::Inv {
                            also: None,
                            from_dir: true,
                        },
                    },
                );
            }
        }
    }

    fn handle_wb(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        home: NodeId,
        addr: Addr,
        src: NodeId,
        evict: bool,
    ) {
        let e = self.entries.entry(addr).or_default();
        if e.wait_wb {
            // The recall (or a racing eviction writeback) resolves the
            // pending transaction.
            e.wait_wb = false;
            let (requester, op) = e.pending.take().expect("wait_wb without pending");
            e.dirty = false;
            let old_owner = e.owner;
            let nodes = ctx.num_nodes();
            match op {
                OpKind::Read => {
                    let s = e.sharers(nodes);
                    s.clear();
                    if !evict {
                        s.insert(old_owner);
                    }
                    s.insert(requester);
                    ctx.send(
                        requester,
                        Msg {
                            addr,
                            src: home,
                            kind: MsgKind::ReadReply { adopt: vec![] },
                        },
                    );
                    // Transaction stays open until the FillAck.
                }
                OpKind::Write => {
                    self.grant_write(ctx, home, addr, requester);
                }
            }
        } else {
            // Spontaneous eviction writeback of the owner.
            debug_assert!(evict);
            debug_assert!(e.dirty && e.owner == src);
            e.dirty = false;
            if let Some(s) = e.sharers.as_mut() {
                s.clear();
            }
        }
    }

    fn handle_inv_ack(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        let e = self.entries.get_mut(&addr).expect("ack without entry");
        debug_assert!(e.wait_acks > 0, "unexpected InvAck");
        e.wait_acks -= 1;
        if e.wait_acks == 0 {
            let (requester, op) = e.pending.take().expect("acks without pending grant");
            debug_assert_eq!(op, OpKind::Write);
            self.grant_write(ctx, home, addr, requester);
        }
    }
}

impl Default for FullMap {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for FullMap {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::FullMap
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        let home = ctx.home_of(addr);
        let kind = match op {
            OpKind::Read => MsgKind::ReadReq { requester: node },
            OpKind::Write => MsgKind::WriteReq { requester: node },
        };
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind,
            },
        );
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        match msg.kind {
            MsgKind::ReadReq { .. } => self.handle_read_req(ctx, node, msg),
            MsgKind::WriteReq { .. } => self.handle_write_req(ctx, node, msg),
            MsgKind::WbData { .. } => self.handle_wb(ctx, node, addr, msg.src, false),
            MsgKind::WbEvict => self.handle_wb(ctx, node, addr, msg.src, true),
            MsgKind::InvAck { dir: true } => self.handle_inv_ack(ctx, node, addr),
            MsgKind::FillAck => self.finish_txn(ctx, node, addr),
            MsgKind::ReadReply { .. } => self.cache.read_fill(ctx, node, addr),
            MsgKind::WriteReply { .. } => self.cache.write_fill(ctx, node, addr),
            MsgKind::Inv { from_dir, .. } => self.cache.inv(ctx, node, addr, msg.src, from_dir),
            MsgKind::WbReq { for_op, requester } => {
                self.cache.wb_req(ctx, node, addr, for_op, requester)
            }
            other => unreachable!("full-map received {other:?}"),
        }
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        match state {
            // Clean copies are dropped silently; the stale presence bit
            // costs at most one harmless future invalidation.
            LineState::V => {}
            LineState::E => {
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::WbEvict,
                    },
                );
            }
            other => unreachable!("evicting line in state {other:?}"),
        }
    }

    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        // presence bits + dirty bit
        nodes as u64 + 1
    }

    fn cache_bits_per_line(&self, nodes: u32) -> u64 {
        let _ = nodes;
        3 // state encoding only
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        crate::fingerprint::digest_map(h, &self.entries);
        self.gate.digest(h);
    }

    fn relabeled(&self, perm: &[NodeId]) -> Option<Box<dyn Protocol>> {
        Some(Box::new(self.relabeled_concrete(perm)))
    }

    fn deliveries_commute(&self) -> bool {
        true
    }
}

impl FullMap {
    /// Node-relabeled clone ([`Protocol::relabeled`]). All directory
    /// decisions here are functions of set membership and per-address
    /// metadata, never of node-id magnitude, so element-wise mapping is an
    /// exact equivariance.
    pub(crate) fn relabeled_concrete(&self, perm: &[NodeId]) -> FullMap {
        FullMap {
            entries: self
                .entries
                .iter()
                .map(|(&a, e)| {
                    (
                        a,
                        Entry {
                            dirty: e.dirty,
                            owner: perm[e.owner as usize],
                            sharers: e.sharers.as_ref().map(|s| s.relabeled(perm)),
                            pending: e.pending.map(|(n, op)| (perm[n as usize], op)),
                            wait_acks: e.wait_acks,
                            wait_wb: e.wait_wb,
                        },
                    )
                })
                .collect(),
            gate: self.gate.relabeled(perm),
            cache: FlatCacheSide::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockCtx;

    fn setup(nodes: u32) -> (MockCtx, FullMap) {
        (MockCtx::new(nodes), FullMap::new())
    }

    #[test]
    fn read_miss_costs_two_messages() {
        let (mut ctx, mut p) = setup(8);
        let mark = ctx.mark();
        ctx.read(&mut p, 3, 100);
        assert_eq!(ctx.critical_since(mark), 2, "paper Table 1: read miss = 2");
        assert_eq!(ctx.line_state(3, 100), LineState::V);
    }

    #[test]
    fn write_miss_with_p_sharers_costs_2p_plus_2() {
        let (mut ctx, mut p) = setup(16);
        let addr = 200;
        for n in 0..5 {
            ctx.read(&mut p, n, addr);
        }
        let mark = ctx.mark();
        ctx.write(&mut p, 9, addr);
        // P = 5 sharers: req + 5 inv + 5 ack + grant = 2P + 2 = 12.
        assert_eq!(ctx.critical_since(mark), 12);
        ctx.assert_swmr(addr);
        assert_eq!(ctx.holders(addr), vec![9]);
    }

    #[test]
    fn writer_in_sharers_is_not_invalidated() {
        let (mut ctx, mut p) = setup(8);
        let addr = 8; // home = 0
        ctx.read(&mut p, 1, addr);
        ctx.read(&mut p, 2, addr);
        let mark = ctx.mark();
        ctx.write(&mut p, 1, addr); // upgrade
                                    // req + 1 inv + 1 ack + grant = 4 messages (P = 1 other sharer).
        assert_eq!(ctx.critical_since(mark), 4);
        assert_eq!(ctx.line_state(1, addr), LineState::E);
        assert_eq!(ctx.line_state(2, addr), LineState::Iv);
    }

    #[test]
    fn read_of_dirty_block_recalls_owner() {
        let (mut ctx, mut p) = setup(8);
        let addr = 17;
        ctx.write(&mut p, 2, addr);
        let mark = ctx.mark();
        ctx.read(&mut p, 5, addr);
        // req + wbreq + wbdata + reply = 4 messages.
        assert_eq!(ctx.critical_since(mark), 4);
        assert_eq!(ctx.line_state(2, addr), LineState::V, "owner downgrades");
        assert_eq!(ctx.line_state(5, addr), LineState::V);
        ctx.assert_swmr(addr);
    }

    #[test]
    fn write_of_dirty_block_transfers_ownership() {
        let (mut ctx, mut p) = setup(8);
        let addr = 33;
        ctx.write(&mut p, 2, addr);
        ctx.write(&mut p, 6, addr);
        assert_eq!(ctx.line_state(2, addr), LineState::Iv);
        assert_eq!(ctx.line_state(6, addr), LineState::E);
        ctx.assert_swmr(addr);
    }

    #[test]
    fn exclusive_eviction_writes_back() {
        let (mut ctx, mut p) = setup(8);
        let addr = 42;
        ctx.write(&mut p, 3, addr);
        ctx.evict(&mut p, 3, addr);
        // A later read must be served clean (2 messages, no recall).
        let mark = ctx.mark();
        ctx.read(&mut p, 4, addr);
        assert_eq!(ctx.critical_since(mark), 2);
    }

    #[test]
    fn silent_clean_eviction_then_stale_inv_is_harmless() {
        let (mut ctx, mut p) = setup(8);
        let addr = 50;
        ctx.read(&mut p, 1, addr);
        ctx.read(&mut p, 2, addr);
        ctx.evict(&mut p, 1, addr); // silent: home still thinks 1 shares
        ctx.write(&mut p, 5, addr); // sends inv to both 1 and 2
        assert_eq!(ctx.line_state(5, addr), LineState::E);
        ctx.assert_swmr(addr);
    }

    #[test]
    fn rereading_after_silent_eviction_works() {
        let (mut ctx, mut p) = setup(8);
        let addr = 60;
        ctx.read(&mut p, 1, addr);
        ctx.evict(&mut p, 1, addr);
        let mark = ctx.mark();
        ctx.read(&mut p, 1, addr);
        assert_eq!(ctx.critical_since(mark), 2);
        assert_eq!(ctx.line_state(1, addr), LineState::V);
    }

    #[test]
    fn many_sharers_all_invalidated() {
        let (mut ctx, mut p) = setup(32);
        let addr = 7;
        for n in 0..32 {
            ctx.read(&mut p, n, addr);
        }
        ctx.write(&mut p, 0, addr);
        for n in 1..32 {
            assert!(!ctx.line_state(n, addr).readable(), "node {n} kept a copy");
        }
        assert_eq!(ctx.line_state(0, addr), LineState::E);
    }

    #[test]
    fn directory_bits_are_n_plus_one() {
        let p = FullMap::new();
        assert_eq!(p.dir_bits_per_mem_block(64), 65);
    }

    #[test]
    fn sequential_write_chain_is_coherent() {
        let (mut ctx, mut p) = setup(8);
        let addr = 11;
        for n in 0..8 {
            ctx.write(&mut p, n, addr);
            ctx.assert_swmr(addr);
            assert_eq!(ctx.holders(addr), vec![n]);
        }
    }

    #[test]
    fn interleaved_read_write_mix_maintains_swmr() {
        let (mut ctx, mut p) = setup(8);
        let addr = 13;
        ctx.read(&mut p, 0, addr);
        ctx.read(&mut p, 1, addr);
        ctx.write(&mut p, 2, addr);
        ctx.read(&mut p, 3, addr);
        ctx.read(&mut p, 4, addr);
        ctx.write(&mut p, 0, addr);
        ctx.assert_swmr(addr);
        assert_eq!(ctx.holders(addr), vec![0]);
    }
}
