//! Building blocks shared by the directory protocols.

use crate::msg::Msg;
use crate::types::{Addr, NodeId};
use dirtree_sim::FxHashMap;
use std::collections::VecDeque;

/// Per-block transaction serialization at the home directory.
///
/// Real directory controllers (Alewife, DASH) process one transaction per
/// block at a time and NAK or defer the rest; we defer. A protocol calls
/// [`TxnGate::admit`] when a transaction-opening request arrives; if the
/// block is busy the request is queued and `admit` returns `false`. When the
/// transaction retires, [`TxnGate::finish`] releases the block and returns
/// the next queued request (if any) for the protocol to redeliver to itself.
#[derive(Clone, Default)]
pub struct TxnGate {
    waiting: FxHashMap<Addr, VecDeque<Msg>>,
    busy: dirtree_sim::FxHashSet<Addr>,
}

impl TxnGate {
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to open a transaction for `addr`. Returns `true` if the caller
    /// may proceed; otherwise the message is queued for later redelivery.
    pub fn admit(&mut self, addr: Addr, msg: &Msg) -> bool {
        if self.busy.contains(&addr) {
            self.waiting.entry(addr).or_default().push_back(msg.clone());
            false
        } else {
            self.busy.insert(addr);
            true
        }
    }

    /// Retire the transaction for `addr`. Returns the next deferred request
    /// to redeliver (its redelivery will call [`TxnGate::admit`] again).
    #[must_use]
    pub fn finish(&mut self, addr: Addr) -> Option<Msg> {
        let was_busy = self.busy.remove(&addr);
        debug_assert!(was_busy, "finish without matching admit for {addr:#x}");
        let q = self.waiting.get_mut(&addr)?;
        let next = q.pop_front();
        if q.is_empty() {
            self.waiting.remove(&addr);
        }
        next
    }

    /// Is a transaction in flight for `addr`?
    pub fn is_busy(&self, addr: Addr) -> bool {
        self.busy.contains(&addr)
    }

    /// Any traffic for `addr` at all — an open transaction *or* deferred
    /// requests awaiting redelivery. This is the adaptive hybrid's drain
    /// check: between [`TxnGate::finish`] popping one deferred request and
    /// its redelivery re-admitting, `busy` is clear while later arrivals
    /// still sit in the queue; flipping the block's mode then would strand
    /// them in an instance that never retires another transaction.
    pub fn has_traffic(&self, addr: Addr) -> bool {
        self.busy.contains(&addr) || self.waiting.contains_key(&addr)
    }

    /// Number of blocks with open transactions (diagnostics / quiescence).
    pub fn open_transactions(&self) -> usize {
        self.busy.len()
    }

    /// Canonical digest of the gate state (model-checker support).
    pub fn digest(&self, h: &mut dyn std::hash::Hasher) {
        crate::fingerprint::digest_map(h, &self.waiting);
        crate::fingerprint::digest_set(h, &self.busy);
    }

    /// The gate with deferred requests relabeled through `perm`
    /// (`perm[old] = new`); per-block busy flags are node-free. Queue order
    /// is preserved — a relabeled execution defers in the same order.
    pub fn relabeled(&self, perm: &[NodeId]) -> TxnGate {
        TxnGate {
            waiting: self
                .waiting
                .iter()
                .map(|(&a, q)| (a, q.iter().map(|m| m.relabeled(perm)).collect()))
                .collect(),
            busy: self.busy.clone(),
        }
    }
}

/// Cache-side invalidation-ack collector for tree protocols.
///
/// When a tree node receives an `Inv`, it forwards the invalidation to its
/// children (and, for Dir_iTree_k even-numbered roots, to the paired odd
/// root) and must acknowledge its own parent only after every forwarded
/// invalidation has been acknowledged. Because silently-replaced nodes can
/// re-join the forest while stale parent edges still point at them, a node
/// can receive *several* `Inv`s for the same block concurrently; each one
/// deserves exactly one ack, so the collector keeps a list of ack targets.
#[derive(Clone, Default)]
pub struct AckCollectors {
    map: FxHashMap<(NodeId, Addr), Collector>,
}

#[derive(Clone, Hash)]
struct Collector {
    /// `(target, dir)` pairs: who to ack and whether the ack is
    /// directory-bound.
    targets: Vec<(NodeId, bool)>,
    remaining: u32,
}

impl AckCollectors {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a collection at `(node, addr)` owing one ack to `target`, with
    /// `remaining` forwarded invalidations outstanding. `remaining` must be
    /// nonzero (acks with nothing outstanding should be sent immediately).
    pub fn open(&mut self, node: NodeId, addr: Addr, target: NodeId, dir: bool, remaining: u32) {
        assert!(remaining > 0);
        let prev = self.map.insert(
            (node, addr),
            Collector {
                targets: vec![(target, dir)],
                remaining,
            },
        );
        assert!(
            prev.is_none(),
            "collector already open at ({node}, {addr:#x})"
        );
    }

    /// Is a collection in progress at `(node, addr)`?
    pub fn is_open(&self, node: NodeId, addr: Addr) -> bool {
        self.map.contains_key(&(node, addr))
    }

    /// A second `Inv` arrived while collecting: owe its sender an ack too,
    /// and optionally add more outstanding forwards (e.g. a late `also`).
    pub fn absorb(
        &mut self,
        node: NodeId,
        addr: Addr,
        target: NodeId,
        dir: bool,
        extra_remaining: u32,
    ) {
        let c = self
            .map
            .get_mut(&(node, addr))
            .expect("absorb on closed collector");
        c.targets.push((target, dir));
        c.remaining += extra_remaining;
    }

    /// An ack arrived. Returns the targets to acknowledge when the
    /// collection completes (empty `None` while still waiting).
    #[must_use]
    pub fn ack(&mut self, node: NodeId, addr: Addr) -> Option<Vec<(NodeId, bool)>> {
        let c = self.map.get_mut(&(node, addr))?;
        debug_assert!(c.remaining > 0);
        c.remaining -= 1;
        if c.remaining == 0 {
            let c = self.map.remove(&(node, addr)).unwrap();
            Some(c.targets)
        } else {
            None
        }
    }

    pub fn open_count(&self) -> usize {
        self.map.len()
    }

    /// Is a collection in progress for `addr` at *any* node? (Used by the
    /// adaptive hybrid's transition-drain check.)
    pub fn open_at_addr(&self, addr: Addr) -> bool {
        self.map.keys().any(|&(_, a)| a == addr)
    }

    /// Canonical digest of all open collections (model-checker support).
    pub fn digest(&self, h: &mut dyn std::hash::Hasher) {
        crate::fingerprint::digest_map(h, &self.map);
    }

    /// The collectors with every node id (keys and ack targets) mapped
    /// through `perm` (`perm[old] = new`). Target order is preserved.
    pub fn relabeled(&self, perm: &[NodeId]) -> AckCollectors {
        AckCollectors {
            map: self
                .map
                .iter()
                .map(|(&(n, a), c)| {
                    (
                        (perm[n as usize], a),
                        Collector {
                            targets: c
                                .targets
                                .iter()
                                .map(|&(t, d)| (perm[t as usize], d))
                                .collect(),
                            remaining: c.remaining,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Cache-controller behaviour shared by the flat (non-tree) bit-map
/// protocols: full-map, Dir_iNB, Dir_iB and LimitLESS. These protocols keep
/// no coherence metadata in the caches, so the cache side only fills lines,
/// answers invalidations (deferring those that race an outstanding read
/// fill), and serves writeback requests.
#[derive(Clone, Default)]
pub struct FlatCacheSide;

impl FlatCacheSide {
    pub fn new() -> Self {
        Self
    }

    /// Handle `ReadReply`: fill the line, complete the processor, and
    /// confirm the fill to the home (which holds the read transaction open
    /// until then, so no invalidation can race this fill).
    pub fn read_fill(&mut self, ctx: &mut dyn crate::ctx::ProtoCtx, node: NodeId, addr: Addr) {
        debug_assert_eq!(ctx.line_state(node, addr), crate::types::LineState::RmIp);
        ctx.set_line_state(node, addr, crate::types::LineState::V);
        ctx.complete(node, addr, crate::types::OpKind::Read);
        let home = ctx.home_of(addr);
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind: MsgKind::FillAck,
            },
        );
    }

    /// Handle `WriteReply`: the writer becomes exclusive.
    pub fn write_fill(&self, ctx: &mut dyn crate::ctx::ProtoCtx, node: NodeId, addr: Addr) {
        debug_assert_eq!(ctx.line_state(node, addr), crate::types::LineState::WmIp);
        ctx.set_line_state(node, addr, crate::types::LineState::E);
        ctx.complete(node, addr, crate::types::OpKind::Write);
    }

    /// Handle `Inv` at a cache with no children metadata.
    pub fn inv(
        &mut self,
        ctx: &mut dyn crate::ctx::ProtoCtx,
        node: NodeId,
        addr: Addr,
        from: NodeId,
        dir: bool,
    ) {
        use crate::types::LineState as S;
        match ctx.line_state(node, addr) {
            S::V => {
                ctx.note(crate::ctx::ProtoEvent::Invalidation);
                ctx.set_line_state(node, addr, S::Iv);
                ack(ctx, node, addr, from, dir);
            }
            // RmIp: the home holds read transactions open until the fill
            // is acknowledged, so an Inv here means our request has not
            // been served yet — there is no copy and no fill in flight.
            // Upgrading writer / stale target / already invalid: the copy
            // is (or will be) dead. All ack immediately.
            S::RmIp | S::WmIp | S::WmLip | S::Iv | S::NotPresent | S::InvIp => {
                ack(ctx, node, addr, from, dir);
            }
            S::E => {
                // Flat directories never invalidate an owner (they recall
                // with WbReq); reaching here is a protocol bug.
                unreachable!("Inv delivered to exclusive owner {node} for {addr:#x}");
            }
        }
    }

    /// Handle `WbReq` at the (possibly former) owner.
    pub fn wb_req(
        &self,
        ctx: &mut dyn crate::ctx::ProtoCtx,
        node: NodeId,
        addr: Addr,
        for_op: crate::types::OpKind,
        requester: NodeId,
    ) {
        use crate::types::{LineState as S, OpKind};
        if ctx.line_state(node, addr) == S::E {
            ctx.set_line_state(
                node,
                addr,
                match for_op {
                    OpKind::Read => S::V,
                    OpKind::Write => S::Iv,
                },
            );
            let home = ctx.home_of(addr);
            ctx.send(
                home,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::WbData { for_op, requester },
                },
            );
        }
        // Otherwise the line was evicted: the WbEvict already in flight
        // (FIFO ahead of any new request from this node) satisfies the home.
    }
}

/// Send an invalidation acknowledgement.
pub fn ack(ctx: &mut dyn crate::ctx::ProtoCtx, node: NodeId, addr: Addr, to: NodeId, dir: bool) {
    ctx.send(
        to,
        Msg {
            addr,
            src: node,
            kind: MsgKind::InvAck { dir },
        },
    );
}

use crate::msg::MsgKind;

/// A dense bitset of node ids (the full-map presence vector).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct NodeSet {
    words: Vec<u64>,
    len: u32,
}

impl NodeSet {
    pub fn new(nodes: u32) -> Self {
        Self {
            words: vec![0; nodes.div_ceil(64) as usize],
            len: 0,
        }
    }

    pub fn insert(&mut self, n: NodeId) -> bool {
        let (w, b) = (n as usize / 64, n % 64);
        let mask = 1u64 << b;
        let new = self.words[w] & mask == 0;
        if new {
            self.words[w] |= mask;
            self.len += 1;
        }
        new
    }

    pub fn remove(&mut self, n: NodeId) -> bool {
        let (w, b) = (n as usize / 64, n % 64);
        let mask = 1u64 << b;
        let had = self.words[w] & mask != 0;
        if had {
            self.words[w] &= !mask;
            self.len -= 1;
        }
        had
    }

    pub fn contains(&self, n: NodeId) -> bool {
        self.words[n as usize / 64] & (1u64 << (n % 64)) != 0
    }

    pub fn len(&self) -> u32 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// The set with every member mapped through `perm` (`perm[old] = new`).
    pub fn relabeled(&self, perm: &[NodeId]) -> NodeSet {
        let mut out = NodeSet::new(self.words.len() as u32 * 64);
        for n in self.iter() {
            out.insert(perm[n as usize]);
        }
        out
    }

    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(wi as NodeId * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;

    fn msg(addr: Addr) -> Msg {
        Msg {
            addr,
            src: 1,
            kind: MsgKind::ReadReq { requester: 1 },
        }
    }

    #[test]
    fn gate_admits_first_and_queues_rest() {
        let mut g = TxnGate::new();
        assert!(g.admit(5, &msg(5)));
        assert!(!g.admit(5, &msg(5)));
        assert!(!g.admit(5, &msg(5)));
        assert!(g.admit(6, &msg(6)), "different blocks are independent");
        assert!(g.is_busy(5));
        assert_eq!(g.open_transactions(), 2);
    }

    #[test]
    fn gate_finish_releases_and_pops_fifo() {
        let mut g = TxnGate::new();
        assert!(g.admit(5, &msg(5)));
        let m1 = Msg { src: 2, ..msg(5) };
        let m2 = Msg { src: 3, ..msg(5) };
        g.admit(5, &m1);
        g.admit(5, &m2);
        let next = g.finish(5).expect("queued request");
        assert_eq!(next.src, 2);
        assert!(!g.is_busy(5));
        // The redelivered request re-admits.
        assert!(g.admit(5, &next));
        let next2 = g.finish(5).expect("second queued request");
        assert_eq!(next2.src, 3);
        assert!(g.admit(5, &next2));
        assert!(g.finish(5).is_none());
    }

    #[test]
    fn collector_completes_after_all_acks() {
        let mut c = AckCollectors::new();
        c.open(4, 100, 9, true, 2);
        assert!(c.is_open(4, 100));
        assert!(c.ack(4, 100).is_none());
        let targets = c.ack(4, 100).expect("complete");
        assert_eq!(targets, vec![(9, true)]);
        assert!(!c.is_open(4, 100));
    }

    #[test]
    fn collector_absorbs_concurrent_invs() {
        let mut c = AckCollectors::new();
        c.open(4, 100, 9, true, 1);
        // A stale-parent Inv arrives mid-collection with one extra forward.
        c.absorb(4, 100, 7, false, 1);
        assert!(c.ack(4, 100).is_none());
        let targets = c.ack(4, 100).expect("complete");
        assert_eq!(targets, vec![(9, true), (7, false)]);
    }

    #[test]
    fn collector_ack_on_closed_is_none() {
        let mut c = AckCollectors::new();
        assert!(c.ack(1, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "already open")]
    fn collector_double_open_panics() {
        let mut c = AckCollectors::new();
        c.open(1, 1, 2, false, 1);
        c.open(1, 1, 3, false, 1);
    }

    #[test]
    fn nodeset_insert_remove_iter() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert");
        assert_eq!(s.len(), 3);
        assert!(s.contains(129));
        assert!(!s.contains(1));
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![0, 64, 129]);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
        s.clear();
        assert!(s.is_empty());
    }
}
