//! SCI tree extension, IEEE P1596.2 (Johnson, 1993; §2.2 of the paper) —
//! Dir₂Tree₂ with an AVL-balanced sharing tree.
//!
//! Sharers form an AVL tree keyed by node id. A read miss descends the
//! tree hop-by-hop to the insertion point (the paper's "4 to 2·log P"
//! read-miss cost) and every rebalancing rotation costs pointer fix-up
//! messages; a write miss invalidates down the balanced tree in
//! logarithmic time; a replacement is an AVL delete with its own fix-up
//! traffic — the "high replacement overhead" of Table 2.
//!
//! As with STP, the home holds the authoritative tree as a simulation
//! convenience; all structural changes are still paid for in messages,
//! and structural fix-ups are acknowledged before the enclosing home
//! transaction closes so invalidation walks never observe a half-applied
//! rotation.

use crate::ctx::{ProtoCtx, ProtoEvent};
use crate::dir::util::{ack, AckCollectors, TxnGate};
use crate::msg::{Msg, MsgKind};
use crate::protocol::{ptr_bits, Protocol, ProtocolKind};
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::FxHashMap;

/// A node of the home-side AVL tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
struct AvlN {
    l: Option<NodeId>,
    r: Option<NodeId>,
    h: i32,
}

/// An AVL tree of node ids (the sharing set).
#[derive(Default, Clone)]
pub struct Avl {
    nodes: FxHashMap<NodeId, AvlN>,
    root: Option<NodeId>,
}

// Canonical (sorted-key) hash so the model checker's state digest is
// independent of the map's insertion history.
impl std::hash::Hash for Avl {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mut entries: Vec<(&NodeId, &AvlN)> = self.nodes.iter().collect();
        entries.sort_by_key(|(k, _)| **k);
        state.write_usize(entries.len());
        for (k, v) in entries {
            k.hash(state);
            v.hash(state);
        }
        self.root.hash(state);
    }
}

impl Avl {
    fn h(&self, n: Option<NodeId>) -> i32 {
        n.map_or(0, |id| self.nodes[&id].h)
    }

    fn update(&mut self, id: NodeId) {
        let n = self.nodes[&id];
        let h = 1 + self.h(n.l).max(self.h(n.r));
        self.nodes.get_mut(&id).unwrap().h = h;
    }

    fn balance_factor(&self, id: NodeId) -> i32 {
        let n = self.nodes[&id];
        self.h(n.l) - self.h(n.r)
    }

    fn rotate_right(&mut self, y: NodeId) -> NodeId {
        let x = self.nodes[&y].l.expect("rotate_right without left child");
        let t2 = self.nodes[&x].r;
        self.nodes.get_mut(&y).unwrap().l = t2;
        self.nodes.get_mut(&x).unwrap().r = Some(y);
        self.update(y);
        self.update(x);
        x
    }

    fn rotate_left(&mut self, x: NodeId) -> NodeId {
        let y = self.nodes[&x].r.expect("rotate_left without right child");
        let t2 = self.nodes[&y].l;
        self.nodes.get_mut(&x).unwrap().r = t2;
        self.nodes.get_mut(&y).unwrap().l = Some(x);
        self.update(x);
        self.update(y);
        y
    }

    fn rebalance(&mut self, id: NodeId) -> NodeId {
        self.update(id);
        let bf = self.balance_factor(id);
        if bf > 1 {
            let l = self.nodes[&id].l.unwrap();
            if self.balance_factor(l) < 0 {
                let new_l = self.rotate_left(l);
                self.nodes.get_mut(&id).unwrap().l = Some(new_l);
            }
            self.rotate_right(id)
        } else if bf < -1 {
            let r = self.nodes[&id].r.unwrap();
            if self.balance_factor(r) > 0 {
                let new_r = self.rotate_right(r);
                self.nodes.get_mut(&id).unwrap().r = Some(new_r);
            }
            self.rotate_left(id)
        } else {
            id
        }
    }

    fn insert_at(&mut self, root: Option<NodeId>, id: NodeId) -> NodeId {
        let Some(cur) = root else {
            self.nodes.insert(
                id,
                AvlN {
                    l: None,
                    r: None,
                    h: 1,
                },
            );
            return id;
        };
        if id < cur {
            let new = self.insert_at(self.nodes[&cur].l, id);
            self.nodes.get_mut(&cur).unwrap().l = Some(new);
        } else if id > cur {
            let new = self.insert_at(self.nodes[&cur].r, id);
            self.nodes.get_mut(&cur).unwrap().r = Some(new);
        } else {
            return cur; // already present
        }
        self.rebalance(cur)
    }

    pub fn insert(&mut self, id: NodeId) {
        self.root = Some(self.insert_at(self.root, id));
    }

    fn min_id(&self, mut cur: NodeId) -> NodeId {
        while let Some(l) = self.nodes[&cur].l {
            cur = l;
        }
        cur
    }

    fn remove_at(&mut self, root: Option<NodeId>, id: NodeId) -> Option<NodeId> {
        let cur = root?;
        if id < cur {
            let new = self.remove_at(self.nodes[&cur].l, id);
            self.nodes.get_mut(&cur).unwrap().l = new;
        } else if id > cur {
            let new = self.remove_at(self.nodes[&cur].r, id);
            self.nodes.get_mut(&cur).unwrap().r = new;
        } else {
            let n = self.nodes[&cur];
            let replacement = match (n.l, n.r) {
                (None, None) => {
                    self.nodes.remove(&cur);
                    return None;
                }
                (Some(l), None) => {
                    self.nodes.remove(&cur);
                    return Some(self.rebalance_if_present(l));
                }
                (None, Some(r)) => {
                    self.nodes.remove(&cur);
                    return Some(self.rebalance_if_present(r));
                }
                (Some(_), Some(r)) => {
                    // Replace with the in-order successor's id.
                    let succ = self.min_id(r);
                    let new_r = self.remove_at(Some(r), succ);
                    let old = self.nodes.remove(&cur).unwrap();
                    self.nodes.insert(
                        succ,
                        AvlN {
                            l: old.l,
                            r: new_r,
                            h: old.h,
                        },
                    );
                    succ
                }
            };
            return Some(self.rebalance(replacement));
        }
        Some(self.rebalance(cur))
    }

    fn rebalance_if_present(&mut self, id: NodeId) -> NodeId {
        self.rebalance(id)
    }

    pub fn remove(&mut self, id: NodeId) {
        self.root = self.remove_at(self.root, id);
    }

    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    pub fn clear(&mut self) {
        self.nodes.clear();
        self.root = None;
    }

    /// BST descent path from the root to the would-be parent of `id`.
    pub fn descent_path(&self, id: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = self.root;
        while let Some(c) = cur {
            path.push(c);
            cur = if id < c {
                self.nodes[&c].l
            } else if id > c {
                self.nodes[&c].r
            } else {
                break;
            };
        }
        path
    }

    /// `(node → children)` snapshot for fix-up diffing.
    pub fn children_snapshot(&self) -> FxHashMap<NodeId, Vec<NodeId>> {
        self.nodes
            .iter()
            .map(|(&id, n)| {
                let mut c = Vec::new();
                if let Some(l) = n.l {
                    c.push(l);
                }
                if let Some(r) = n.r {
                    c.push(r);
                }
                (id, c)
            })
            .collect()
    }

    /// Validate AVL invariants (tests/debug).
    pub fn validate(&self) {
        fn walk(t: &Avl, n: Option<NodeId>, lo: Option<NodeId>, hi: Option<NodeId>) -> i32 {
            let Some(id) = n else { return 0 };
            if let Some(lo) = lo {
                assert!(id > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(id < hi, "BST order violated");
            }
            let node = t.nodes[&id];
            let hl = walk(t, node.l, lo, Some(id));
            let hr = walk(t, node.r, Some(id), hi);
            assert!((hl - hr).abs() <= 1, "AVL balance violated at {id}");
            assert_eq!(node.h, 1 + hl.max(hr), "stale height at {id}");
            node.h
        }
        walk(self, self.root, None, None);
    }
}

#[derive(Clone, Default, Hash)]
struct Entry {
    dirty: bool,
    owner: NodeId,
    tree: Avl,
    pending: Option<(NodeId, OpKind)>,
    wait_wb: bool,
    wait_acks: u32,
    /// Outstanding structural fix-up acks + fill ack before txn close.
    wait_parts: u32,
}

/// The SCI tree extension protocol.
#[derive(Clone)]
pub struct SciTree {
    entries: FxHashMap<Addr, Entry>,
    gate: TxnGate,
    children: FxHashMap<(NodeId, Addr), Vec<NodeId>>,
    collectors: AckCollectors,
}

impl SciTree {
    pub fn new() -> Self {
        Self {
            entries: FxHashMap::default(),
            gate: TxnGate::new(),
            children: FxHashMap::default(),
            collectors: AckCollectors::new(),
        }
    }

    pub fn tree(&self, addr: Addr) -> Option<&Avl> {
        self.entries.get(&addr).map(|e| &e.tree)
    }

    pub fn children_of(&self, node: NodeId, addr: Addr) -> &[NodeId] {
        self.children
            .get(&(node, addr))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn finish_txn(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        if let Some(next) = self.gate.finish(addr) {
            ctx.redeliver(home, next, 0);
        }
    }

    fn part_done(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        let e = self.entries.get_mut(&addr).expect("part ack without entry");
        debug_assert!(e.wait_parts > 0, "unexpected structural ack");
        e.wait_parts -= 1;
        if e.wait_parts == 0 {
            self.finish_txn(ctx, home, addr);
        }
    }

    /// Apply a structural mutation to the home tree and broadcast the
    /// children-map diff as fix-ups. Returns the number of fix-ups sent.
    fn mutate_tree(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        home: NodeId,
        addr: Addr,
        mutate: impl FnOnce(&mut Avl),
    ) -> u32 {
        let e = self.entries.get_mut(&addr).unwrap();
        let before = e.tree.children_snapshot();
        mutate(&mut e.tree);
        #[cfg(debug_assertions)]
        e.tree.validate();
        let after = e.tree.children_snapshot();
        let mut fixups = 0;
        let mut targets: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for (&id, kids) in &after {
            // A brand-new childless node needs no fix-up (its cache-side
            // map starts empty anyway).
            let newcomer_without_children = kids.is_empty() && !before.contains_key(&id);
            if before.get(&id) != Some(kids) && !newcomer_without_children {
                targets.push((id, kids.clone()));
            }
        }
        for (&id, _) in before.iter().filter(|(id, _)| !after.contains_key(*id)) {
            targets.push((id, Vec::new()));
        }
        // Deterministic order.
        targets.sort_by_key(|(id, _)| *id);
        for (id, kids) in targets {
            ctx.send(
                id,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::SctFixup { children: kids },
                },
            );
            fixups += 1;
        }
        fixups
    }

    fn handle_read_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::ReadReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let e = self.entries.entry(addr).or_default();
        if e.dirty {
            debug_assert_ne!(e.owner, requester);
            e.pending = Some((requester, OpKind::Read));
            e.wait_wb = true;
            let owner = e.owner;
            ctx.send(
                owner,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::WbReq {
                        for_op: OpKind::Read,
                        requester,
                    },
                },
            );
            return;
        }
        if e.tree.is_empty() || e.tree.contains(requester) {
            // Root insertion (or a re-read by a still-recorded node whose
            // leave is queued): home supplies directly.
            e.wait_parts = 1; // the FillAck
            let fixups = self.mutate_tree(ctx, home, addr, |t| t.insert(requester));
            let e = self.entries.get_mut(&addr).unwrap();
            e.wait_parts += fixups;
            ctx.send(
                requester,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::ReadReply { adopt: vec![] },
                },
            );
        } else {
            let path = e.tree.descent_path(requester);
            e.wait_parts = 1; // the FillAck
            let fixups = self.mutate_tree(ctx, home, addr, |t| t.insert(requester));
            let e = self.entries.get_mut(&addr).unwrap();
            e.wait_parts += fixups;
            let first = path[0];
            ctx.send(
                first,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::SctDescend {
                        requester,
                        path: path[1..].to_vec(),
                    },
                },
            );
        }
    }

    fn grant_write(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr, writer: NodeId) {
        let e = self.entries.get_mut(&addr).unwrap();
        e.dirty = true;
        e.owner = writer;
        e.tree.clear();
        ctx.send(
            writer,
            Msg {
                addr,
                src: home,
                kind: MsgKind::WriteReply {
                    kill_self_subtree: false,
                },
            },
        );
        self.finish_txn(ctx, home, addr);
    }

    fn handle_write_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::WriteReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let e = self.entries.entry(addr).or_default();
        if e.dirty {
            e.pending = Some((requester, OpKind::Write));
            e.wait_wb = true;
            let owner = e.owner;
            ctx.send(
                owner,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::WbReq {
                        for_op: OpKind::Write,
                        requester,
                    },
                },
            );
            return;
        }
        match e.tree.root() {
            None => self.grant_write(ctx, home, addr, requester),
            Some(root) => {
                e.pending = Some((requester, OpKind::Write));
                e.wait_acks = 1;
                e.tree.clear();
                ctx.send(
                    root,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::Inv {
                            also: None,
                            from_dir: true,
                        },
                    },
                );
            }
        }
    }

    fn handle_wb(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr, evict: bool) {
        let e = self.entries.entry(addr).or_default();
        if e.wait_wb {
            e.wait_wb = false;
            let (requester, op) = e.pending.take().expect("wait_wb without pending");
            e.dirty = false;
            let old_owner = e.owner;
            match op {
                OpKind::Read => {
                    e.tree.clear();
                    e.wait_parts = 1;
                    let fixups = self.mutate_tree(ctx, home, addr, |t| {
                        if !evict {
                            t.insert(old_owner);
                        }
                        t.insert(requester);
                    });
                    let e = self.entries.get_mut(&addr).unwrap();
                    e.wait_parts += fixups;
                    ctx.send(
                        requester,
                        Msg {
                            addr,
                            src: home,
                            kind: MsgKind::ReadReply { adopt: vec![] },
                        },
                    );
                }
                OpKind::Write => self.grant_write(ctx, home, addr, requester),
            }
        } else {
            debug_assert!(evict);
            e.dirty = false;
            e.tree.clear();
        }
    }

    fn handle_inv(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::Inv { from_dir, .. } = msg.kind else {
            unreachable!()
        };
        if self.collectors.is_open(node, addr) {
            // Already collecting: the subtree is covered by the first
            // invalidation path; waiting here risks ack cycles. Answer
            // immediately (see dir_tree.rs for the acyclicity argument).
            ack(ctx, node, addr, msg.src, from_dir);
            return;
        }
        let state = ctx.line_state(node, addr);
        let kids = self.children.remove(&(node, addr)).unwrap_or_default();
        match state {
            LineState::V => {
                ctx.note(ProtoEvent::Invalidation);
                ctx.set_line_state(
                    node,
                    addr,
                    if kids.is_empty() {
                        LineState::Iv
                    } else {
                        LineState::InvIp
                    },
                );
            }
            LineState::E => unreachable!("Inv reached an exclusive owner"),
            _ => {}
        }
        if kids.is_empty() {
            ack(ctx, node, addr, msg.src, from_dir);
        } else {
            self.collectors
                .open(node, addr, msg.src, from_dir, kids.len() as u32);
            for k in kids {
                ctx.send(
                    k,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::Inv {
                            also: None,
                            from_dir: false,
                        },
                    },
                );
            }
        }
    }

    fn handle_leave(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let leaver = msg.src;
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let e = self.entries.entry(addr).or_default();
        if !e.tree.contains(leaver) {
            self.finish_txn(ctx, home, addr);
            return;
        }
        ctx.note(ProtoEvent::ReplacementInvalidation);
        e.wait_parts = 0;
        let fixups = self.mutate_tree(ctx, home, addr, |t| t.remove(leaver));
        let e = self.entries.get_mut(&addr).unwrap();
        e.wait_parts = fixups;
        if fixups == 0 {
            self.finish_txn(ctx, home, addr);
        }
    }

    fn fill(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr) {
        debug_assert_eq!(ctx.line_state(node, addr), LineState::RmIp);
        ctx.set_line_state(node, addr, LineState::V);
        ctx.complete(node, addr, OpKind::Read);
        let home = ctx.home_of(addr);
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind: MsgKind::FillAck,
            },
        );
    }
}

impl Default for SciTree {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for SciTree {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::SciTree
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        let home = ctx.home_of(addr);
        let kind = match op {
            OpKind::Read => MsgKind::ReadReq { requester: node },
            OpKind::Write => MsgKind::WriteReq { requester: node },
        };
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind,
            },
        );
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        match msg.kind {
            MsgKind::ReadReq { .. } => self.handle_read_req(ctx, node, msg),
            MsgKind::WriteReq { .. } => self.handle_write_req(ctx, node, msg),
            MsgKind::WbData { .. } => self.handle_wb(ctx, node, addr, false),
            MsgKind::WbEvict => self.handle_wb(ctx, node, addr, true),
            MsgKind::InvAck { dir: true } => {
                let e = self.entries.get_mut(&addr).expect("ack without entry");
                debug_assert!(e.wait_acks > 0);
                e.wait_acks -= 1;
                if e.wait_acks == 0 {
                    let (requester, op) = e.pending.take().expect("acks without pending");
                    debug_assert_eq!(op, OpKind::Write);
                    self.grant_write(ctx, node, addr, requester);
                }
            }
            MsgKind::InvAck { dir: false } => {
                if let Some(targets) = self.collectors.ack(node, addr) {
                    if ctx.line_state(node, addr) == LineState::InvIp {
                        ctx.set_line_state(node, addr, LineState::Iv);
                    }
                    for (to, dir) in targets {
                        ack(ctx, node, addr, to, dir);
                    }
                }
            }
            MsgKind::FillAck => self.part_done(ctx, node, addr),
            MsgKind::StpFixupAck { .. } => self.part_done(ctx, node, addr),
            MsgKind::SctFixup { children } => {
                if children.is_empty() {
                    self.children.remove(&(node, addr));
                } else {
                    self.children.insert((node, addr), children);
                }
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::StpFixupAck { dir: true },
                    },
                );
            }
            MsgKind::SctDescend { requester, path } => {
                if path.is_empty() {
                    ctx.send(
                        requester,
                        Msg {
                            addr,
                            src: node,
                            kind: MsgKind::SctInsertResp,
                        },
                    );
                } else {
                    ctx.send(
                        path[0],
                        Msg {
                            addr,
                            src: node,
                            kind: MsgKind::SctDescend {
                                requester,
                                path: path[1..].to_vec(),
                            },
                        },
                    );
                }
            }
            MsgKind::SctInsertResp | MsgKind::ReadReply { .. } => self.fill(ctx, node, addr),
            MsgKind::WriteReply { .. } => {
                debug_assert_eq!(ctx.line_state(node, addr), LineState::WmIp);
                self.children.remove(&(node, addr));
                ctx.set_line_state(node, addr, LineState::E);
                ctx.complete(node, addr, OpKind::Write);
            }
            MsgKind::Inv { .. } => self.handle_inv(ctx, node, msg),
            MsgKind::SctLeave => self.handle_leave(ctx, node, msg),
            MsgKind::WbReq { for_op, requester } => {
                use crate::types::LineState as S;
                if ctx.line_state(node, addr) == S::E {
                    ctx.set_line_state(
                        node,
                        addr,
                        match for_op {
                            OpKind::Read => S::V,
                            OpKind::Write => S::Iv,
                        },
                    );
                    let home = ctx.home_of(addr);
                    ctx.send(
                        home,
                        Msg {
                            addr,
                            src: node,
                            kind: MsgKind::WbData { for_op, requester },
                        },
                    );
                }
            }
            other => unreachable!("SCI tree extension received {other:?}"),
        }
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        let home = ctx.home_of(addr);
        match state {
            LineState::V => {
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::SctLeave,
                    },
                );
            }
            LineState::E => {
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::WbEvict,
                    },
                );
            }
            other => unreachable!("evicting line in state {other:?}"),
        }
    }

    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        // Root + head pointers (Dir₂Tree₂) + dirty.
        2 * ptr_bits(nodes) + 1
    }

    fn cache_bits_per_line(&self, nodes: u32) -> u64 {
        // Two child pointers + balance bits + state.
        2 * ptr_bits(nodes) + 2 + 3
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        use crate::fingerprint::digest_map;
        digest_map(h, &self.entries);
        self.gate.digest(h);
        digest_map(h, &self.children);
        self.collectors.digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockCtx;
    use dirtree_sim::SimRng;

    const A: Addr = 0;

    fn setup(nodes: u32) -> (MockCtx, SciTree) {
        (MockCtx::new(nodes), SciTree::new())
    }

    #[test]
    fn avl_insert_remove_keeps_invariants() {
        let mut t = Avl::default();
        let mut rng = SimRng::new(42);
        let mut present = Vec::new();
        for _ in 0..200 {
            let id = rng.gen_range(64) as NodeId;
            if present.contains(&id) {
                t.remove(id);
                present.retain(|&x| x != id);
            } else {
                t.insert(id);
                present.push(id);
            }
            t.validate();
            assert_eq!(t.len(), present.len());
        }
    }

    #[test]
    fn avl_height_is_logarithmic() {
        let mut t = Avl::default();
        for id in 0..1024u32 {
            t.insert(id); // adversarial (sorted) insertion order
        }
        t.validate();
        let root = t.root().unwrap();
        let h = t.nodes[&root].h;
        assert!(h <= 15, "AVL height {h} too large for 1024 nodes");
    }

    #[test]
    fn reads_descend_and_writes_invalidate_tree() {
        let (mut ctx, mut p) = setup(32);
        for n in 1..=10 {
            ctx.read(&mut p, n, A);
        }
        p.tree(A).unwrap().validate();
        assert_eq!(p.tree(A).unwrap().len(), 10);
        ctx.write(&mut p, 15, A);
        for n in 1..=10 {
            assert!(!ctx.line_state(n, A).readable(), "node {n} survived");
        }
        ctx.assert_swmr(A);
        assert!(p.tree(A).unwrap().is_empty());
    }

    #[test]
    fn first_read_costs_two_messages_later_reads_descend() {
        let (mut ctx, mut p) = setup(32);
        let mark = ctx.mark();
        ctx.read(&mut p, 5, A);
        assert_eq!(ctx.critical_since(mark), 2);
        let mark = ctx.mark();
        ctx.read(&mut p, 3, A);
        // req + descend(1 hop: root=5) + insert resp = 3 critical, plus
        // possible fix-ups. Within the paper's "4 to 2 log P" ballpark.
        assert!(ctx.critical_since(mark) >= 3);
    }

    #[test]
    fn home_collects_exactly_one_inv_ack() {
        let (mut ctx, mut p) = setup(32);
        for n in 1..=7 {
            ctx.read(&mut p, n, A);
        }
        let mark = ctx.mark();
        ctx.write(&mut p, 9, A);
        let dir_acks = ctx
            .sent_since(mark)
            .iter()
            .filter(|(_, m)| matches!(m.kind, MsgKind::InvAck { dir: true }))
            .count();
        assert_eq!(dir_acks, 1);
    }

    #[test]
    fn replacement_is_an_avl_delete_with_fixups() {
        let (mut ctx, mut p) = setup(32);
        for n in 1..=7 {
            ctx.read(&mut p, n, A);
        }
        let before = p.tree(A).unwrap().len();
        ctx.evict(&mut p, 4, A); // interior node
        let t = p.tree(A).unwrap();
        t.validate();
        assert_eq!(t.len(), before - 1);
        assert!(!t.contains(4));
        // Invalidation still reaches everyone.
        ctx.write(&mut p, 20, A);
        for n in [1, 2, 3, 5, 6, 7] {
            assert!(!ctx.line_state(n, A).readable(), "node {n} survived");
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn root_replacement_keeps_tree_reachable() {
        let (mut ctx, mut p) = setup(32);
        for n in 1..=7 {
            ctx.read(&mut p, n, A);
        }
        let root = p.tree(A).unwrap().root().unwrap();
        ctx.evict(&mut p, root, A);
        p.tree(A).unwrap().validate();
        ctx.write(&mut p, 20, A);
        for n in (1..=7).filter(|&n| n != root) {
            assert!(!ctx.line_state(n, A).readable(), "node {n} survived");
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn dirty_read_recalls_owner() {
        let (mut ctx, mut p) = setup(32);
        ctx.write(&mut p, 2, A);
        ctx.read(&mut p, 5, A);
        assert_eq!(ctx.line_state(2, A), LineState::V);
        assert_eq!(ctx.line_state(5, A), LineState::V);
        assert_eq!(p.tree(A).unwrap().len(), 2);
    }

    #[test]
    fn upgrade_write_from_inside_tree() {
        let (mut ctx, mut p) = setup(32);
        for n in 1..=5 {
            ctx.read(&mut p, n, A);
        }
        ctx.write(&mut p, 3, A);
        assert_eq!(ctx.line_state(3, A), LineState::E);
        ctx.assert_swmr(A);
    }

    #[test]
    fn sequential_writers_chain_ownership() {
        let (mut ctx, mut p) = setup(8);
        for n in 0..8 {
            ctx.write(&mut p, n, A);
            ctx.assert_swmr(A);
            assert_eq!(ctx.holders(A), vec![n]);
        }
    }

    #[test]
    fn churn_storm_keeps_avl_and_caches_consistent() {
        let (mut ctx, mut p) = setup(32);
        let mut rng = SimRng::new(7);
        for round in 0..100 {
            let n = 1 + rng.gen_range(30) as NodeId;
            match rng.gen_range(10) {
                0..=5 => {
                    if !ctx.line_state(n, A).readable() {
                        ctx.read(&mut p, n, A);
                    }
                }
                6..=7 => {
                    if ctx.line_state(n, A) == LineState::V {
                        ctx.evict(&mut p, n, A);
                    }
                }
                _ => {
                    ctx.write(&mut p, n, A);
                    ctx.assert_swmr(A);
                }
            }
            if let Some(t) = p.tree(A) {
                t.validate();
            }
            let _ = round;
        }
    }
}
