//! Limited directory protocols Dir<sub>i</sub>NB and Dir<sub>i</sub>B
//! (§2.1B of the paper, after Agarwal et al.'s `Dir_iX` taxonomy).
//!
//! Both keep `i` node pointers per memory block. They differ in overflow
//! handling:
//!
//! * **Dir<sub>i</sub>NB** (no broadcast): when an `i+1`-th sharer arrives,
//!   one of the pointed-to processors is *invalidated* and its pointer
//!   reused — an "unnecessary invalidation" that hurts when the real
//!   sharing degree exceeds `i`.
//! * **Dir<sub>i</sub>B** (broadcast): an overflow bit is set and the
//!   pointers stop being precise; the next write must broadcast
//!   invalidations to *every* node in the machine.

use crate::ctx::{ProtoCtx, ProtoEvent};
use crate::dir::util::{FlatCacheSide, TxnGate};
use crate::msg::{Msg, MsgKind};
use crate::protocol::{ptr_bits, Protocol, ProtocolKind};
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::FxHashMap;

#[derive(Clone, Default, Hash)]
struct Entry {
    dirty: bool,
    owner: NodeId,
    sharers: Vec<NodeId>,
    overflow: bool,
    pending: Option<(NodeId, OpKind)>,
    wait_acks: u32,
    wait_wb: bool,
    /// Dir_iNB: a read blocked on the pointer-victim's invalidation ack.
    victim_swap: Option<NodeId>,
}

/// Dir_iNB / Dir_iB limited directory.
#[derive(Clone)]
pub struct Limited {
    pointers: u32,
    broadcast: bool,
    entries: FxHashMap<Addr, Entry>,
    gate: TxnGate,
    cache: FlatCacheSide,
}

impl Limited {
    pub fn new(pointers: u32, broadcast: bool) -> Self {
        assert!(pointers >= 1);
        Self {
            pointers,
            broadcast,
            entries: FxHashMap::default(),
            gate: TxnGate::new(),
            cache: FlatCacheSide::new(),
        }
    }

    fn finish_txn(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        if let Some(next) = self.gate.finish(addr) {
            ctx.redeliver(home, next, 0);
        }
    }

    fn send_read_reply(ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr, requester: NodeId) {
        ctx.send(
            requester,
            Msg {
                addr,
                src: home,
                kind: MsgKind::ReadReply { adopt: vec![] },
            },
        );
    }

    fn grant_write(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr, writer: NodeId) {
        let e = self.entries.get_mut(&addr).unwrap();
        e.dirty = true;
        e.owner = writer;
        e.overflow = false;
        e.sharers.clear();
        ctx.send(
            writer,
            Msg {
                addr,
                src: home,
                kind: MsgKind::WriteReply {
                    kill_self_subtree: false,
                },
            },
        );
        self.finish_txn(ctx, home, addr);
    }

    fn handle_read_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::ReadReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let pointers = self.pointers as usize;
        let broadcast = self.broadcast;
        let e = self.entries.entry(addr).or_default();
        if e.dirty {
            debug_assert_ne!(e.owner, requester);
            e.pending = Some((requester, OpKind::Read));
            e.wait_wb = true;
            let owner = e.owner;
            ctx.send(
                owner,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::WbReq {
                        for_op: OpKind::Read,
                        requester,
                    },
                },
            );
            return;
        }
        if e.sharers.contains(&requester) {
            Self::send_read_reply(ctx, home, addr, requester);
            // Transaction stays open until the FillAck.
        } else if e.sharers.len() < pointers {
            e.sharers.push(requester);
            Self::send_read_reply(ctx, home, addr, requester);
        } else if broadcast {
            // Dir_iB: stop tracking precisely; the requester gets data but
            // no pointer. A future write will broadcast.
            e.overflow = true;
            Self::send_read_reply(ctx, home, addr, requester);
        } else {
            // Dir_iNB: invalidate the oldest pointed-to sharer, then admit
            // the requester in its place. The reply waits for the ack so a
            // subsequent write cannot leave a stale copy alive.
            let victim = e.sharers[0];
            e.pending = Some((requester, OpKind::Read));
            e.victim_swap = Some(victim);
            e.wait_acks = 1;
            ctx.note(ProtoEvent::ReplacementInvalidation);
            ctx.send(
                victim,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::Inv {
                        also: None,
                        from_dir: true,
                    },
                },
            );
        }
    }

    fn handle_write_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::WriteReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let nodes = ctx.num_nodes();
        let e = self.entries.entry(addr).or_default();
        if e.dirty {
            e.pending = Some((requester, OpKind::Write));
            e.wait_wb = true;
            let owner = e.owner;
            ctx.send(
                owner,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::WbReq {
                        for_op: OpKind::Write,
                        requester,
                    },
                },
            );
            return;
        }
        let targets: Vec<NodeId> = if e.overflow {
            ctx.note(ProtoEvent::Broadcast);
            (0..nodes).filter(|&n| n != requester).collect()
        } else {
            e.sharers
                .iter()
                .copied()
                .filter(|&n| n != requester)
                .collect()
        };
        if targets.is_empty() {
            self.grant_write(ctx, home, addr, requester);
        } else {
            e.pending = Some((requester, OpKind::Write));
            e.wait_acks = targets.len() as u32;
            e.sharers.clear();
            e.overflow = false;
            for t in targets {
                ctx.send(
                    t,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::Inv {
                            also: None,
                            from_dir: true,
                        },
                    },
                );
            }
        }
    }

    fn handle_wb(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        home: NodeId,
        addr: Addr,
        src: NodeId,
        evict: bool,
    ) {
        let e = self.entries.entry(addr).or_default();
        if e.wait_wb {
            e.wait_wb = false;
            let (requester, op) = e.pending.take().expect("wait_wb without pending");
            e.dirty = false;
            let old_owner = e.owner;
            match op {
                OpKind::Read => {
                    e.sharers.clear();
                    if !evict {
                        e.sharers.push(old_owner);
                    }
                    e.sharers.push(requester);
                    Self::send_read_reply(ctx, home, addr, requester);
                    // Transaction stays open until the FillAck.
                }
                OpKind::Write => self.grant_write(ctx, home, addr, requester),
            }
        } else {
            debug_assert!(evict);
            debug_assert!(e.dirty && e.owner == src);
            e.dirty = false;
            e.sharers.clear();
        }
    }

    fn handle_inv_ack(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        let e = self.entries.get_mut(&addr).expect("ack without entry");
        debug_assert!(e.wait_acks > 0);
        e.wait_acks -= 1;
        if e.wait_acks > 0 {
            return;
        }
        if let Some(victim) = e.victim_swap.take() {
            // Dir_iNB pointer replacement completed: swap in the requester.
            let (requester, op) = e.pending.take().expect("swap without pending");
            debug_assert_eq!(op, OpKind::Read);
            let pos = e
                .sharers
                .iter()
                .position(|&n| n == victim)
                .expect("victim disappeared");
            // Keep FIFO order for future victim selection: drop the victim,
            // append the newcomer.
            e.sharers.remove(pos);
            e.sharers.push(requester);
            Self::send_read_reply(ctx, home, addr, requester);
            // Transaction stays open until the FillAck.
        } else {
            let (requester, op) = e.pending.take().expect("acks without pending");
            debug_assert_eq!(op, OpKind::Write);
            self.grant_write(ctx, home, addr, requester);
        }
    }
}

impl Protocol for Limited {
    fn kind(&self) -> ProtocolKind {
        if self.broadcast {
            ProtocolKind::LimitedB {
                pointers: self.pointers,
            }
        } else {
            ProtocolKind::LimitedNB {
                pointers: self.pointers,
            }
        }
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        let home = ctx.home_of(addr);
        let kind = match op {
            OpKind::Read => MsgKind::ReadReq { requester: node },
            OpKind::Write => MsgKind::WriteReq { requester: node },
        };
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind,
            },
        );
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        match msg.kind {
            MsgKind::ReadReq { .. } => self.handle_read_req(ctx, node, msg),
            MsgKind::WriteReq { .. } => self.handle_write_req(ctx, node, msg),
            MsgKind::WbData { .. } => self.handle_wb(ctx, node, addr, msg.src, false),
            MsgKind::WbEvict => self.handle_wb(ctx, node, addr, msg.src, true),
            MsgKind::InvAck { dir: true } => self.handle_inv_ack(ctx, node, addr),
            MsgKind::FillAck => self.finish_txn(ctx, node, addr),
            MsgKind::ReadReply { .. } => self.cache.read_fill(ctx, node, addr),
            MsgKind::WriteReply { .. } => self.cache.write_fill(ctx, node, addr),
            MsgKind::Inv { from_dir, .. } => self.cache.inv(ctx, node, addr, msg.src, from_dir),
            MsgKind::WbReq { for_op, requester } => {
                self.cache.wb_req(ctx, node, addr, for_op, requester)
            }
            other => unreachable!("limited directory received {other:?}"),
        }
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        match state {
            LineState::V => {}
            LineState::E => {
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::WbEvict,
                    },
                );
            }
            other => unreachable!("evicting line in state {other:?}"),
        }
    }

    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        // i pointers of log n bits + dirty (+ overflow for the B variant).
        self.pointers as u64 * ptr_bits(nodes) + 1 + self.broadcast as u64
    }

    fn cache_bits_per_line(&self, _nodes: u32) -> u64 {
        3
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        crate::fingerprint::digest_map(h, &self.entries);
        self.gate.digest(h);
    }

    fn relabeled(&self, perm: &[NodeId]) -> Option<Box<dyn Protocol>> {
        Some(Box::new(self.relabeled_concrete(perm)))
    }

    fn deliveries_commute(&self) -> bool {
        true
    }
}

impl Limited {
    /// Node-relabeled clone ([`Protocol::relabeled`]). Pointer-victim
    /// selection is positional (`sharers[0]`), so preserving vector order
    /// while mapping elements keeps the relabeled execution in lock-step.
    pub(crate) fn relabeled_concrete(&self, perm: &[NodeId]) -> Limited {
        Limited {
            pointers: self.pointers,
            broadcast: self.broadcast,
            entries: self
                .entries
                .iter()
                .map(|(&a, e)| {
                    (
                        a,
                        Entry {
                            dirty: e.dirty,
                            owner: perm[e.owner as usize],
                            sharers: e.sharers.iter().map(|&n| perm[n as usize]).collect(),
                            overflow: e.overflow,
                            pending: e.pending.map(|(n, op)| (perm[n as usize], op)),
                            wait_acks: e.wait_acks,
                            wait_wb: e.wait_wb,
                            victim_swap: e.victim_swap.map(|n| perm[n as usize]),
                        },
                    )
                })
                .collect(),
            gate: self.gate.relabeled(perm),
            cache: FlatCacheSide::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockCtx;

    const A: Addr = 0;

    fn nb(nodes: u32, pointers: u32) -> (MockCtx, Limited) {
        (MockCtx::new(nodes), Limited::new(pointers, false))
    }

    fn b(nodes: u32, pointers: u32) -> (MockCtx, Limited) {
        (MockCtx::new(nodes), Limited::new(pointers, true))
    }

    #[test]
    fn read_within_pointer_budget_costs_two_messages() {
        let (mut ctx, mut p) = nb(8, 2);
        let mark = ctx.mark();
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A);
        assert_eq!(ctx.critical_since(mark), 4);
    }

    #[test]
    fn nb_overflow_invalidates_a_pointer_victim() {
        let (mut ctx, mut p) = nb(8, 2);
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A);
        let mark = ctx.mark();
        ctx.read(&mut p, 3, A); // overflow: node 1 is invalidated
                                // req + inv + ack + reply = 4 messages.
        assert_eq!(ctx.critical_since(mark), 4);
        assert!(!ctx.line_state(1, A).readable(), "victim invalidated");
        assert!(ctx.line_state(2, A).readable());
        assert!(ctx.line_state(3, A).readable());
    }

    #[test]
    fn nb_write_invalidates_only_pointed_sharers() {
        let (mut ctx, mut p) = nb(8, 2);
        for n in 1..=4 {
            ctx.read(&mut p, n, A); // 1 and 2 get evicted by overflow
        }
        ctx.write(&mut p, 5, A);
        for n in 1..=4 {
            assert!(!ctx.line_state(n, A).readable());
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn b_variant_sets_overflow_and_broadcasts_on_write() {
        let (mut ctx, mut p) = b(8, 2);
        for n in 1..=4 {
            ctx.read(&mut p, n, A);
        }
        // Nodes 3 and 4 are cached but untracked.
        assert!(ctx.line_state(3, A).readable());
        let mark = ctx.mark();
        ctx.write(&mut p, 5, A);
        // Broadcast: req + 7 inv + 7 ack + grant = 16 messages.
        assert_eq!(ctx.critical_since(mark), 16);
        assert!(ctx.events.contains(&ProtoEvent::Broadcast));
        for n in 1..=4 {
            assert!(
                !ctx.line_state(n, A).readable(),
                "node {n} survived broadcast"
            );
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn b_variant_clears_overflow_after_write() {
        let (mut ctx, mut p) = b(8, 1);
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A); // overflow
        ctx.write(&mut p, 3, A); // broadcast, overflow cleared
        let mark = ctx.mark();
        ctx.read(&mut p, 4, A);
        ctx.write(&mut p, 5, A);
        // Non-broadcast write: req + wbreq + wbdata (dirty read for 4)
        // then write: req + 2 inv... count only asserts no broadcast blow-up.
        assert!(
            ctx.critical_since(mark) < 14,
            "overflow must not persist after the broadcast write"
        );
    }

    #[test]
    fn dirty_block_recall_works() {
        let (mut ctx, mut p) = nb(8, 4);
        ctx.write(&mut p, 2, A);
        ctx.read(&mut p, 5, A);
        assert_eq!(ctx.line_state(2, A), LineState::V);
        assert_eq!(ctx.line_state(5, A), LineState::V);
        ctx.write(&mut p, 6, A);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![6]);
    }

    #[test]
    fn rereading_tracked_sharer_is_cheap() {
        let (mut ctx, mut p) = nb(8, 2);
        ctx.read(&mut p, 1, A);
        ctx.evict(&mut p, 1, A);
        let mark = ctx.mark();
        ctx.read(&mut p, 1, A);
        assert_eq!(ctx.critical_since(mark), 2, "no pointer churn");
    }

    #[test]
    fn sequential_writers_stay_coherent() {
        let (mut ctx, mut p) = nb(8, 1);
        for n in 0..8 {
            ctx.write(&mut p, n, A);
            ctx.assert_swmr(A);
        }
    }

    #[test]
    fn directory_bits_formula() {
        let p = Limited::new(4, false);
        assert_eq!(p.dir_bits_per_mem_block(32), 4 * 5 + 1);
        let pb = Limited::new(4, true);
        assert_eq!(pb.dir_bits_per_mem_block(32), 4 * 5 + 2);
    }

    #[test]
    fn b_overflow_reads_stay_cheap() {
        // Once overflowed, further reads are 2 messages (data only, no
        // tracking) — the cost is deferred to the broadcast write.
        let (mut ctx, mut p) = b(8, 1);
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A); // sets the overflow bit
        let mark = ctx.mark();
        ctx.read(&mut p, 3, A);
        assert_eq!(ctx.critical_since(mark), 2);
    }

    #[test]
    fn nb_upgrade_by_tracked_sharer() {
        let (mut ctx, mut p) = nb(8, 2);
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A);
        ctx.write(&mut p, 1, A); // tracked upgrade: invalidate only node 2
        assert_eq!(ctx.line_state(1, A), LineState::E);
        assert!(!ctx.line_state(2, A).readable());
        ctx.assert_swmr(A);
    }

    #[test]
    fn b_write_by_untracked_sharer_is_still_coherent() {
        let (mut ctx, mut p) = b(8, 1);
        for n in 1..=4 {
            ctx.read(&mut p, n, A); // 2..4 untracked
        }
        ctx.write(&mut p, 4, A); // untracked node writes: broadcast
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![4]);
    }

    #[test]
    fn nb_victim_selection_is_fifo() {
        let (mut ctx, mut p) = nb(8, 2);
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A);
        ctx.read(&mut p, 3, A); // victim = 1
        assert!(!ctx.line_state(1, A).readable());
        ctx.read(&mut p, 4, A); // victim = 2 (oldest remaining)
        assert!(!ctx.line_state(2, A).readable());
        assert!(ctx.line_state(3, A).readable());
        assert!(ctx.line_state(4, A).readable());
    }
}
