//! **Dir<sub>i</sub>Tree<sub>k</sub>** — the paper's contribution (§3).
//!
//! The home directory keeps `i` pointers per memory block, each with a
//! *level* counter recording the height of the tree it points at; cache
//! blocks keep up to `k` child pointers (forward pointers only). Sharers
//! form a forest of at most `i` near-balanced trees.
//!
//! **Read miss** (Figure 6), always 2 messages:
//! 1. requester already pointed at by a directory pointer → just resupply;
//! 2. a free pointer exists → point it at the requester, level 1;
//! 3. two pointers have trees of equal height → both are handed to the
//!    requester, whose cache adopts the two roots as children; the first
//!    pointer now points at the requester (level + 1) and the second
//!    becomes free (*tree merge*);
//! 4. otherwise the pointer with the smallest level is handed over; its
//!    root becomes the requester's only child (*push down*).
//!
//! When several equal-height pairs exist we merge the pair of **maximal**
//! equal level: this reproduces the paper's Figure 5, where the 15th read
//! miss adopts processors 11 and 13.
//!
//! **Write miss** (~log P latency): the home sends invalidations to the
//! roots; each node forwards to its children and acknowledges its parent
//! after its subtree acks. Even-numbered pointers additionally invalidate
//! their odd-numbered partners, so the home collects at most `⌈i/2⌉` acks.
//!
//! **Replacement**: the evicted block silently kills its subtree with
//! unacknowledged `Replace_INV` messages and never informs the home —
//! directory pointers may go stale; invalidation handling is idempotent so
//! every `Inv` still produces exactly one ack.
//!
//! Because `Replace_INV` is unacknowledged, nothing orders the silent kill
//! before a later write grant: if the disbanding node forgot its child
//! edges, a write could complete (all *recorded* sharers acked) while a
//! `Replace_INV` is still in flight toward a live copy. The disbanded
//! edges are therefore remembered as **zombie edges** and every
//! acknowledged invalidation wave re-traverses them; per-channel FIFO
//! delivery guarantees the wave's `Inv` reaches each ex-child after the
//! `Replace_INV` did, so its acknowledgement proves the copy is dead.
//! (The model checker in `crates/check` finds the 12-step counterexample
//! at P=2 if the edges are dropped instead.)
//!
//! ```
//! use dirtree_core::dir::dir_tree::DirTree;
//! use dirtree_core::protocol::{Protocol, ProtocolParams};
//! use dirtree_core::testkit::MockCtx;
//!
//! // Reproduce Figure 5: after 14 read misses, the 15th requester adopts
//! // processors 11 and 13 (the maximal equal-height pair).
//! let mut ctx = MockCtx::new(32);
//! let mut proto = DirTree::new(4, 2, ProtocolParams::default());
//! for reader in 1..=15 {
//!     ctx.read(&mut proto, reader, 0);
//! }
//! assert_eq!(proto.children_of(15, 0), &[11, 13]);
//! ```

use crate::ctx::{ProtoCtx, ProtoEvent};
use crate::dir::util::{ack, AckCollectors, TxnGate};
use crate::msg::{Msg, MsgKind};
use crate::protocol::{ptr_bits, Protocol, ProtocolKind, ProtocolParams};
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::FxHashMap;

/// A directory pointer: the root of one sharer tree and its recorded level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ptr {
    pub node: NodeId,
    pub level: u32,
}

/// One block's transferable tree state — directory roots, cache-side child
/// edges, zombie edges — moved verbatim between the invalidate and update
/// protocol instances when the adaptive hybrid flips the block's write
/// policy. Both variants build Figure-6 forests with identical metadata, so
/// a drained block's tree is meaningful to either.
#[derive(Debug, Default)]
pub(crate) struct BlockXfer {
    pub(crate) ptrs: Vec<Option<Ptr>>,
    pub(crate) children: Vec<(NodeId, Vec<NodeId>)>,
    pub(crate) zombies: Vec<(NodeId, Vec<NodeId>)>,
}

/// Remove every `(node, addr)` entry matching `addr` from a per-node edge
/// map, returned sorted by node (the map is unordered; sorting keeps the
/// transfer deterministic for debugging even though reinsertion into a map
/// erases the order again).
pub(crate) fn drain_addr(
    map: &mut FxHashMap<(NodeId, Addr), Vec<NodeId>>,
    addr: Addr,
) -> Vec<(NodeId, Vec<NodeId>)> {
    let keys: Vec<NodeId> = map.keys().filter(|k| k.1 == addr).map(|k| k.0).collect();
    let mut out: Vec<(NodeId, Vec<NodeId>)> = keys
        .into_iter()
        .map(|n| (n, map.remove(&(n, addr)).unwrap()))
        .collect();
    out.sort_by_key(|(n, _)| *n);
    out
}

#[derive(Clone, Default, Hash)]
struct Entry {
    dirty: bool,
    owner: NodeId,
    ptrs: Vec<Option<Ptr>>,
    pending: Option<(NodeId, OpKind)>,
    wait_acks: u32,
    wait_wb: bool,
    /// The pending writer was itself a recorded root: the grant will tell
    /// it to kill its own subtree locally.
    grant_self_root: bool,
}

/// An invalidation obligation: who to acknowledge and the pairing duty.
struct DeferredInv {
    from: NodeId,
    dir: bool,
    also: Option<NodeId>,
}

/// The Dir_iTree_k protocol.
#[derive(Clone)]
pub struct DirTree {
    pointers: u32,
    arity: u32,
    params: ProtocolParams,
    entries: FxHashMap<Addr, Entry>,
    gate: TxnGate,
    /// Cache-side child pointers (up to `arity` per line).
    children: FxHashMap<(NodeId, Addr), Vec<NodeId>>,
    /// Edges of a disbanded subtree: children a node has already sent an
    /// *unacknowledged* `ReplaceInv`, remembered until an acknowledged
    /// invalidation wave re-traverses them. Nothing orders a silent kill
    /// before a later write grant except per-channel FIFO — so the wave's
    /// `Inv` must follow the same channels the `ReplaceInv` took. Dropping
    /// these edges at replacement time lets a write complete while the
    /// kill is still in flight (the model checker finds the race in 12
    /// steps at P=2).
    zombies: FxHashMap<(NodeId, Addr), Vec<NodeId>>,
    collectors: AckCollectors,
    /// Writeback requests that arrived while the owner was still killing
    /// its own subtree (`WmLip`); served when it becomes exclusive.
    pending_wb: FxHashMap<(NodeId, Addr), (OpKind, NodeId)>,
    /// Reusable scratch for one invalidation wave's `(target, partner)`
    /// fan-out — cleared before every use, so its carry-over contents are
    /// *not* protocol state: it is excluded from [`Protocol::fingerprint`]
    /// (the model checker must never observe scratch reuse; a mutant that
    /// aliases this buffer across waves is caught by the witness — see
    /// `dirtree-check`'s `MutantKind::StaleWaveScratch`).
    wave_scratch: Vec<(NodeId, Option<NodeId>)>,
}

impl DirTree {
    pub fn new(pointers: u32, arity: u32, params: ProtocolParams) -> Self {
        assert!(pointers >= 1, "need at least one directory pointer");
        assert!(arity >= 2, "cache blocks need at least two child pointers");
        Self {
            pointers,
            arity,
            params,
            entries: FxHashMap::default(),
            gate: TxnGate::new(),
            children: FxHashMap::default(),
            zombies: FxHashMap::default(),
            collectors: AckCollectors::new(),
            pending_wb: FxHashMap::default(),
            wave_scratch: Vec::new(),
        }
    }

    fn entry(&mut self, addr: Addr) -> &mut Entry {
        let i = self.pointers as usize;
        self.entries.entry(addr).or_insert_with(|| Entry {
            ptrs: vec![None; i],
            ..Entry::default()
        })
    }

    /// The current forest for `addr`: `(root, level)` per non-null pointer,
    /// in pointer-index order (for tests, analysis cross-checks, and the
    /// tree-shape experiment).
    pub fn forest(&self, addr: Addr) -> Vec<Option<Ptr>> {
        self.entries
            .get(&addr)
            .map(|e| e.ptrs.clone())
            .unwrap_or_else(|| vec![None; self.pointers as usize])
    }

    /// Cache-side children of `(node, addr)`.
    pub fn children_of(&self, node: NodeId, addr: Addr) -> &[NodeId] {
        self.children
            .get(&(node, addr))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Disbanded-subtree edges of `(node, addr)` still awaiting an
    /// acknowledged re-traversal (see the `zombies` field).
    pub fn zombies_of(&self, node: NodeId, addr: Addr) -> &[NodeId] {
        self.zombies
            .get(&(node, addr))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// No home transaction, no ack collection, no pending writeback, clean
    /// directory entry: the block is safe to hand to the other write policy
    /// (the adaptive hybrid additionally requires zero in-flight messages).
    /// A dirty block is *not* idle — the update variant has no exclusive
    /// state, so the owner must write back before the block can flip.
    pub(crate) fn flip_idle(&self, addr: Addr) -> bool {
        !self.gate.has_traffic(addr)
            && !self.collectors.open_at_addr(addr)
            && !self.pending_wb.keys().any(|k| k.1 == addr)
            && self.entries.get(&addr).is_none_or(|e| {
                !e.dirty
                    && e.pending.is_none()
                    && e.wait_acks == 0
                    && !e.wait_wb
                    && !e.grant_self_root
            })
    }

    /// Does this instance hold *any* state for `addr`? The adaptive hybrid
    /// pins this to false for the instance that does not own the block.
    pub(crate) fn has_block_state(&self, addr: Addr) -> bool {
        self.entries.contains_key(&addr)
            || self.gate.has_traffic(addr)
            || self.collectors.open_at_addr(addr)
            || self.pending_wb.keys().any(|k| k.1 == addr)
            || self.children.keys().any(|k| k.1 == addr)
            || self.zombies.keys().any(|k| k.1 == addr)
    }

    /// Remove and return the block's transferable tree state. Caller must
    /// have checked [`Self::flip_idle`] (in particular the entry is clean,
    /// so dropping `dirty`/`owner` loses nothing).
    pub(crate) fn take_block(&mut self, addr: Addr) -> BlockXfer {
        debug_assert!(self.flip_idle(addr));
        let ptrs = self
            .entries
            .remove(&addr)
            .map(|e| e.ptrs)
            .unwrap_or_else(|| vec![None; self.pointers as usize]);
        BlockXfer {
            ptrs,
            children: drain_addr(&mut self.children, addr),
            zombies: drain_addr(&mut self.zombies, addr),
        }
    }

    /// Install tree state taken from the other protocol instance.
    pub(crate) fn install_block(&mut self, addr: Addr, x: BlockXfer) {
        debug_assert!(!self.has_block_state(addr));
        debug_assert_eq!(x.ptrs.len(), self.pointers as usize);
        if x.ptrs.iter().any(Option::is_some) {
            self.entries.insert(
                addr,
                Entry {
                    ptrs: x.ptrs,
                    ..Entry::default()
                },
            );
        }
        for (node, kids) in x.children {
            self.children.insert((node, addr), kids);
        }
        for (node, kids) in x.zombies {
            self.zombies.insert((node, addr), kids);
        }
    }

    /// Silently disband `(node, addr)`'s subtree: one unacknowledged
    /// `ReplaceInv` per child, with the edges moved to the zombie set so
    /// the next acknowledged invalidation wave still covers them.
    fn disband(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr) {
        let kids = self.children.remove(&(node, addr)).unwrap_or_default();
        if kids.is_empty() {
            return;
        }
        let z = self.zombies.entry((node, addr)).or_default();
        for k in kids {
            ctx.send(
                k,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::ReplaceInv,
                },
            );
            if !z.contains(&k) {
                z.push(k);
            }
        }
    }

    /// Collect the whole tree rooted at `root` by following child pointers
    /// (diagnostics; cycles are guarded against).
    pub fn subtree(&self, root: NodeId, addr: Addr) -> Vec<NodeId> {
        let mut out = vec![root];
        let mut i = 0;
        while i < out.len() && out.len() < 100_000 {
            let n = out[i];
            for &c in self.children_of(n, addr) {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
            i += 1;
        }
        out
    }

    fn finish_txn(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        if let Some(next) = self.gate.finish(addr) {
            ctx.redeliver(home, next, 0);
        }
    }

    /// Figure 6: insert `requester` into the forest, returning the roots it
    /// must adopt as children (empty for cases 1 and 2).
    fn insert_sharer(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        addr: Addr,
        requester: NodeId,
    ) -> Vec<NodeId> {
        let arity = self.arity as usize;
        let e = self.entry(addr);
        // Case 1: already recorded (e.g. silently replaced, now re-reading).
        if e.ptrs.iter().flatten().any(|p| p.node == requester) {
            return vec![];
        }
        // Case 2: a free pointer.
        if let Some(slot) = e.ptrs.iter().position(Option::is_none) {
            e.ptrs[slot] = Some(Ptr {
                node: requester,
                level: 1,
            });
            return vec![];
        }
        // Case 3: merge equal-height trees of maximal equal height. The
        // paper always merges exactly two ("two pointers are selected");
        // with arity k > 2 we generalize and adopt up to k equal-height
        // roots at once (an extension; k = 2 reproduces the paper).
        let mut best: Option<(u32, Vec<usize>)> = None; // (level, slots)
        for a in 0..e.ptrs.len() {
            let la = e.ptrs[a].unwrap().level;
            if best.as_ref().is_some_and(|(l, _)| *l >= la) {
                continue;
            }
            let slots: Vec<usize> = (a..e.ptrs.len())
                .filter(|&b| e.ptrs[b].unwrap().level == la)
                .take(arity)
                .collect();
            if slots.len() >= 2 {
                best = Some((la, slots));
            }
        }
        if let Some((level, slots)) = best {
            let adopt: Vec<NodeId> = slots.iter().map(|&i| e.ptrs[i].unwrap().node).collect();
            e.ptrs[slots[0]] = Some(Ptr {
                node: requester,
                level: level + 1,
            });
            for &i in &slots[1..] {
                e.ptrs[i] = None;
            }
            ctx.note(ProtoEvent::TreeMerge);
            return adopt;
        }
        // Case 4: all levels distinct — push down the smallest tree.
        let (slot, ptr) = e
            .ptrs
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p)))
            .min_by_key(|&(_, p)| p.level)
            .expect("no pointers despite full directory");
        e.ptrs[slot] = Some(Ptr {
            node: requester,
            level: ptr.level + 1,
        });
        ctx.note(ProtoEvent::TreePushDown);
        vec![ptr.node]
    }

    fn handle_read_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::ReadReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        if self.entry(addr).dirty {
            let e = self.entry(addr);
            debug_assert_ne!(e.owner, requester);
            e.pending = Some((requester, OpKind::Read));
            e.wait_wb = true;
            let owner = e.owner;
            ctx.send(
                owner,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::WbReq {
                        for_op: OpKind::Read,
                        requester,
                    },
                },
            );
        } else {
            let adopt = self.insert_sharer(ctx, addr, requester);
            ctx.send(
                requester,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::ReadReply { adopt },
                },
            );
            // Transaction stays open until the FillAck.
        }
    }

    /// Send invalidations to the forest roots, skipping a root that is the
    /// requesting writer itself — the grant tells it to kill its own
    /// subtree locally (it holds the child pointers; an `Inv` would only
    /// bounce back to it). Returns `(expected home acks, writer was a
    /// recorded root)`.
    fn invalidate_forest(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        home: NodeId,
        addr: Addr,
        requester: NodeId,
    ) -> (u32, bool) {
        let pairing = self.params.dir_tree_pairing;
        // Reuse the wave scratch buffer (taken, cleared, and put back) so a
        // write's fan-out list never allocates on the hot path.
        let mut sends = std::mem::take(&mut self.wave_scratch);
        sends.clear();
        let e = self.entries.get_mut(&addr).unwrap();
        let self_root = e.ptrs.iter().flatten().any(|p| p.node == requester);
        let mut expected = 0;
        if pairing {
            // Even-numbered roots invalidate their odd partners: the home
            // receives at most ceil(i/2) acknowledgements.
            let mut slot = 0;
            while slot < e.ptrs.len() {
                let even = e.ptrs[slot].map(|p| p.node).filter(|&n| n != requester);
                let odd = e
                    .ptrs
                    .get(slot + 1)
                    .copied()
                    .flatten()
                    .map(|p| p.node)
                    .filter(|&n| n != requester);
                match (even, odd) {
                    (Some(a), also) => sends.push((a, also)),
                    (None, Some(b)) => sends.push((b, None)),
                    (None, None) => {}
                }
                slot += 2;
            }
        } else {
            for p in e.ptrs.iter().flatten() {
                if p.node != requester {
                    sends.push((p.node, None));
                }
            }
        }
        e.ptrs.iter_mut().for_each(|p| *p = None);
        for &(dst, also) in &sends {
            ctx.send(
                dst,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::Inv {
                        also,
                        from_dir: true,
                    },
                },
            );
            expected += 1;
        }
        self.wave_scratch = sends;
        (expected, self_root)
    }

    fn grant_write(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr, writer: NodeId) {
        let e = self.entries.get_mut(&addr).unwrap();
        e.dirty = true;
        e.owner = writer;
        e.ptrs.iter_mut().for_each(|p| *p = None);
        let kill_self_subtree = e.grant_self_root;
        e.grant_self_root = false;
        ctx.send(
            writer,
            Msg {
                addr,
                src: home,
                kind: MsgKind::WriteReply { kill_self_subtree },
            },
        );
        self.finish_txn(ctx, home, addr);
    }

    fn handle_write_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::WriteReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let e = self.entry(addr);
        if e.dirty {
            e.pending = Some((requester, OpKind::Write));
            e.wait_wb = true;
            let owner = e.owner;
            ctx.send(
                owner,
                Msg {
                    addr,
                    src: home,
                    kind: MsgKind::WbReq {
                        for_op: OpKind::Write,
                        requester,
                    },
                },
            );
            return;
        }
        let (expected, self_root) = self.invalidate_forest(ctx, home, addr, requester);
        {
            let e = self.entries.get_mut(&addr).unwrap();
            e.grant_self_root = self_root;
        }
        if expected == 0 {
            self.grant_write(ctx, home, addr, requester);
        } else {
            let e = self.entries.get_mut(&addr).unwrap();
            e.pending = Some((requester, OpKind::Write));
            e.wait_acks = expected;
        }
    }

    fn handle_wb(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        home: NodeId,
        addr: Addr,
        src: NodeId,
        evict: bool,
    ) {
        let e = self.entry(addr);
        if e.wait_wb {
            e.wait_wb = false;
            let (requester, op) = e.pending.take().expect("wait_wb without pending");
            e.dirty = false;
            let old_owner = e.owner;
            match op {
                OpKind::Read => {
                    // The downgraded owner becomes the first root; then the
                    // requester joins through the normal insertion path.
                    if !evict {
                        e.ptrs[0] = Some(Ptr {
                            node: old_owner,
                            level: 1,
                        });
                    }
                    let adopt = self.insert_sharer(ctx, addr, requester);
                    ctx.send(
                        requester,
                        Msg {
                            addr,
                            src: home,
                            kind: MsgKind::ReadReply { adopt },
                        },
                    );
                    // Transaction stays open until the FillAck.
                }
                OpKind::Write => {
                    self.grant_write(ctx, home, addr, requester);
                }
            }
        } else {
            debug_assert!(evict);
            let e = self.entries.get_mut(&addr).unwrap();
            debug_assert!(e.dirty && e.owner == src);
            e.dirty = false;
        }
    }

    fn handle_inv_ack_home(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        let e = self.entries.get_mut(&addr).expect("ack without entry");
        debug_assert!(e.wait_acks > 0);
        e.wait_acks -= 1;
        if e.wait_acks == 0 {
            let (requester, op) = e.pending.take().expect("acks without pending");
            debug_assert_eq!(op, OpKind::Write);
            self.grant_write(ctx, home, addr, requester);
        }
    }

    /// Perform the invalidation of a live copy at `node`: forward to
    /// children and any `also` partner, then ack the debt (immediately or
    /// through a collector). Every invalidation delivery settles exactly one
    /// debt — later arrivals find the collector open and are absorbed in
    /// [`Self::handle_inv`] — so the debt is passed by value, not boxed in a
    /// single-element `Vec`.
    fn kill_copy(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        node: NodeId,
        addr: Addr,
        debt: DeferredInv,
        invalidate_line: bool,
    ) {
        let mut kids = self.children.remove(&(node, addr)).unwrap_or_default();
        for z in self.zombies.remove(&(node, addr)).unwrap_or_default() {
            if !kids.contains(&z) {
                kids.push(z);
            }
        }
        let mut outstanding = 0;
        for k in kids {
            ctx.send(
                k,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::Inv {
                        also: None,
                        from_dir: false,
                    },
                },
            );
            outstanding += 1;
        }
        if let Some(partner) = debt.also {
            ctx.send(
                partner,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::Inv {
                        also: None,
                        from_dir: false,
                    },
                },
            );
            outstanding += 1;
        }
        if outstanding == 0 {
            if invalidate_line {
                ctx.set_line_state(node, addr, LineState::Iv);
            }
            ack(ctx, node, addr, debt.from, debt.dir);
        } else {
            if invalidate_line {
                ctx.set_line_state(node, addr, LineState::InvIp);
            }
            self.collectors
                .open(node, addr, debt.from, debt.dir, outstanding);
        }
    }

    fn handle_inv(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::Inv { also, from_dir } = msg.kind else {
            unreachable!()
        };
        let debt = DeferredInv {
            from: msg.src,
            dir: from_dir,
            also,
        };
        // A node already collecting acknowledgements answers immediately:
        // its subtree is covered by the first invalidation path, and
        // waiting here could deadlock on child-pointer *cycles* created by
        // silent replacement + rejoin (A is replaced, re-reads, and adopts
        // its own ex-ancestor). Immediate acks make every wait edge follow
        // first-visit order, which is acyclic. A pairing duty ('also') is
        // the one thing that must still be discharged and awaited.
        if self.collectors.is_open(node, addr) {
            if let Some(partner) = debt.also {
                ctx.send(
                    partner,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::Inv {
                            also: None,
                            from_dir: false,
                        },
                    },
                );
                self.collectors.absorb(node, addr, debt.from, debt.dir, 1);
            } else {
                ack(ctx, node, addr, debt.from, debt.dir);
            }
            return;
        }
        match ctx.line_state(node, addr) {
            LineState::V => {
                ctx.note(ProtoEvent::Invalidation);
                self.kill_copy(ctx, node, addr, debt, true);
            }
            LineState::WmIp | LineState::WmLip => {
                // Upgrading writer: its old copy (and subtree) dies, but the
                // line stays transient awaiting the grant.
                self.kill_copy(ctx, node, addr, debt, false);
            }
            LineState::InvIp => {
                // InvIp with a closed collector cannot happen (the state is
                // set exactly while a collector is open, and the open case
                // returned above).
                unreachable!("InvIp line without an open collector");
            }
            LineState::Iv | LineState::NotPresent | LineState::RmIp => {
                // Stale target (or a requester whose read has not been
                // served yet — the home holds read transactions open until
                // the FillAck, so no fill can be in flight here): no copy,
                // no children. But a disbanded subtree (zombie edges) must
                // be re-traversed with *acknowledged* invalidations — the
                // silent `ReplaceInv`s may still be in flight, and this
                // wave is what orders the kill before the write grant —
                // and a pairing duty must still be discharged. `kill_copy`
                // handles all of it (with no live line to invalidate).
                debug_assert!(self.children_of(node, addr).is_empty());
                self.kill_copy(ctx, node, addr, debt, false);
            }
            LineState::E => {
                // Unreachable by construction (see module docs); be safe.
                debug_assert!(false, "Inv reached an exclusive owner");
                ack(ctx, node, addr, debt.from, debt.dir);
            }
        }
    }

    fn handle_inv_ack_cache(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr) {
        if let Some(targets) = self.collectors.ack(node, addr) {
            if ctx.line_state(node, addr) == LineState::InvIp {
                ctx.set_line_state(node, addr, LineState::Iv);
            }
            for (to, dir) in targets {
                if to == node && !dir {
                    // Self-subtree kill finished: the write completes.
                    debug_assert_eq!(ctx.line_state(node, addr), LineState::WmLip);
                    ctx.set_line_state(node, addr, LineState::E);
                    ctx.complete(node, addr, OpKind::Write);
                    if let Some((for_op, requester)) = self.pending_wb.remove(&(node, addr)) {
                        self.serve_wb_req(ctx, node, addr, for_op, requester);
                    }
                } else {
                    ack(ctx, node, addr, to, dir);
                }
            }
        }
    }

    /// Serve a home recall at the exclusive owner.
    fn serve_wb_req(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        node: NodeId,
        addr: Addr,
        for_op: OpKind,
        requester: NodeId,
    ) {
        use crate::types::LineState as S;
        debug_assert_eq!(ctx.line_state(node, addr), S::E);
        debug_assert!(self.children_of(node, addr).is_empty());
        ctx.set_line_state(
            node,
            addr,
            match for_op {
                OpKind::Read => S::V,
                OpKind::Write => S::Iv,
            },
        );
        let home = ctx.home_of(addr);
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind: MsgKind::WbData { for_op, requester },
            },
        );
    }

    fn handle_read_reply(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::ReadReply { adopt } = msg.kind else {
            unreachable!()
        };
        debug_assert_eq!(ctx.line_state(node, addr), LineState::RmIp);
        debug_assert!(
            self.children_of(node, addr).is_empty(),
            "filling a line that still owns children"
        );
        debug_assert!(adopt.len() <= self.arity as usize);
        if !adopt.is_empty() {
            self.children.insert((node, addr), adopt);
        }
        ctx.set_line_state(node, addr, LineState::V);
        ctx.complete(node, addr, OpKind::Read);
        let home = ctx.home_of(addr);
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind: MsgKind::FillAck,
            },
        );
    }

    fn handle_replace_inv(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr) {
        // A transient, invalid or exclusive line is no longer the copy the
        // stale parent thought it was killing; only a live shared copy dies.
        if ctx.line_state(node, addr) == LineState::V {
            ctx.note(ProtoEvent::ReplacementInvalidation);
            self.disband(ctx, node, addr);
            ctx.set_line_state(node, addr, LineState::Iv);
        }
    }

    fn handle_repl_notify(&mut self, _ctx: &mut dyn ProtoCtx, addr: Addr, src: NodeId) {
        // Ablation policy E12: clear a stale root pointer eagerly.
        if let Some(e) = self.entries.get_mut(&addr) {
            for p in e.ptrs.iter_mut() {
                if p.map(|q| q.node) == Some(src) {
                    *p = None;
                }
            }
        }
    }
}

impl Protocol for DirTree {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::DirTree {
            pointers: self.pointers,
            arity: self.arity,
        }
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        let home = ctx.home_of(addr);
        let kind = match op {
            OpKind::Read => MsgKind::ReadReq { requester: node },
            OpKind::Write => MsgKind::WriteReq { requester: node },
        };
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind,
            },
        );
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        match msg.kind {
            MsgKind::ReadReq { .. } => self.handle_read_req(ctx, node, msg),
            MsgKind::WriteReq { .. } => self.handle_write_req(ctx, node, msg),
            MsgKind::WbData { .. } => self.handle_wb(ctx, node, addr, msg.src, false),
            MsgKind::WbEvict => self.handle_wb(ctx, node, addr, msg.src, true),
            MsgKind::InvAck { dir: true } => self.handle_inv_ack_home(ctx, node, addr),
            MsgKind::FillAck => self.finish_txn(ctx, node, addr),
            MsgKind::InvAck { dir: false } => self.handle_inv_ack_cache(ctx, node, addr),
            MsgKind::ReadReply { .. } => self.handle_read_reply(ctx, node, msg),
            MsgKind::WriteReply { kill_self_subtree } => {
                debug_assert_eq!(ctx.line_state(node, addr), LineState::WmIp);
                let mut kids = if kill_self_subtree {
                    self.children.remove(&(node, addr)).unwrap_or_default()
                } else {
                    // Any children the writer had were killed when the
                    // invalidation reached it through the forest (before
                    // its subtree acked, hence before this grant).
                    debug_assert!(self.children_of(node, addr).is_empty());
                    Vec::new()
                };
                // A subtree this writer disbanded earlier (silent
                // replacement, then re-miss) may still have its
                // `ReplaceInv`s in flight: re-kill it with acknowledged
                // invalidations so the write cannot complete first.
                for z in self.zombies.remove(&(node, addr)).unwrap_or_default() {
                    if !kids.contains(&z) {
                        kids.push(z);
                    }
                }
                if kids.is_empty() {
                    ctx.set_line_state(node, addr, LineState::E);
                    ctx.complete(node, addr, OpKind::Write);
                } else {
                    // Kill our own subtree before the write completes.
                    ctx.set_line_state(node, addr, LineState::WmLip);
                    self.collectors
                        .open(node, addr, node, false, kids.len() as u32);
                    for k in kids {
                        ctx.send(
                            k,
                            Msg {
                                addr,
                                src: node,
                                kind: MsgKind::Inv {
                                    also: None,
                                    from_dir: false,
                                },
                            },
                        );
                    }
                }
            }
            MsgKind::Inv { .. } => self.handle_inv(ctx, node, msg),
            MsgKind::ReplaceInv => self.handle_replace_inv(ctx, node, addr),
            MsgKind::ReplNotify => self.handle_repl_notify(ctx, addr, msg.src),
            MsgKind::WbReq { for_op, requester } => {
                use crate::types::LineState as S;
                match ctx.line_state(node, addr) {
                    S::E => self.serve_wb_req(ctx, node, addr, for_op, requester),
                    // Still killing our own subtree after the grant: serve
                    // the recall once exclusive.
                    S::WmLip => {
                        self.pending_wb.insert((node, addr), (for_op, requester));
                    }
                    // Evicted: the WbEvict in flight satisfies the home.
                    _ => {}
                }
            }
            other => unreachable!("Dir_iTree_k received {other:?}"),
        }
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        match state {
            LineState::V => {
                self.disband(ctx, node, addr);
                if !self.params.dir_tree_silent_replace {
                    let home = ctx.home_of(addr);
                    ctx.send(
                        home,
                        Msg {
                            addr,
                            src: node,
                            kind: MsgKind::ReplNotify,
                        },
                    );
                }
            }
            LineState::E => {
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::WbEvict,
                    },
                );
            }
            other => unreachable!("evicting line in state {other:?}"),
        }
    }

    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        // i pointers, each (node id + level) ≈ 2·log n bits, plus dirty.
        2 * self.pointers as u64 * ptr_bits(nodes) + 1
    }

    fn cache_bits_per_line(&self, nodes: u32) -> u64 {
        // k child pointers of log n bits, plus state.
        self.arity as u64 * ptr_bits(nodes) + 3
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        use crate::fingerprint::digest_map;
        digest_map(h, &self.entries);
        self.gate.digest(h);
        digest_map(h, &self.children);
        digest_map(h, &self.zombies);
        self.collectors.digest(h);
        digest_map(h, &self.pending_wb);
    }

    fn relabeled(&self, perm: &[NodeId]) -> Option<Box<dyn Protocol>> {
        Some(Box::new(self.relabeled_concrete(perm)))
    }

    fn deliveries_commute(&self) -> bool {
        true
    }

    /// Dir_iTree_k structural invariants (§3 well-formedness).
    ///
    /// Checked at **every** state:
    /// * every directory entry keeps exactly `i` pointer slots (≤ i roots);
    /// * pointers reference valid nodes with level ≥ 1;
    /// * no two pointers of one block reference the same root;
    /// * cache-side child lists hold ≤ `k` distinct children, never the
    ///   node itself;
    /// * zombie (disbanded-subtree) edge lists hold distinct valid nodes,
    ///   never the node itself.
    ///
    /// Checked only at **quiescence** (no message in flight — mid-
    /// transaction these are legitimately violated, e.g. while a recalled
    /// owner's data is on the wire):
    /// * no ack collector or home transaction is left open;
    /// * `dirty` entries have an empty forest, no child or zombie edges
    ///   (the granting wave drains both), and the recorded owner exclusive;
    /// * clean blocks have no exclusive copy, and every valid copy is
    ///   reachable from the recorded roots through child and zombie
    ///   pointers — a sharer the forest cannot see would silently survive
    ///   the next write invalidation.
    ///
    /// Note the *absence* of a height-vs-level claim: recorded levels are
    /// upper bounds at insertion time, and silent replacement + rejoin can
    /// leave stale cross-tree edges that make a traversal longer than any
    /// recorded level, so levels are deliberately only sanity-checked.
    fn check_invariants(
        &self,
        ctx: &dyn ProtoCtx,
        addrs: &[Addr],
        quiescent: bool,
    ) -> Result<(), String> {
        let nodes = ctx.num_nodes();
        for (&(node, addr), kids) in &self.children {
            if kids.len() > self.arity as usize {
                return Err(format!(
                    "node {node} holds {} children for {addr:#x}, arity is {}",
                    kids.len(),
                    self.arity
                ));
            }
            let mut seen = kids.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != kids.len() {
                return Err(format!(
                    "duplicate child pointer at node {node} for {addr:#x}"
                ));
            }
            if kids.contains(&node) {
                return Err(format!(
                    "self-loop child pointer at node {node} for {addr:#x}"
                ));
            }
            if kids.iter().any(|&k| k >= nodes) {
                return Err(format!(
                    "out-of-range child pointer at node {node} for {addr:#x}"
                ));
            }
        }
        for (&(node, addr), kids) in &self.zombies {
            let mut seen = kids.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != kids.len() {
                return Err(format!(
                    "duplicate zombie edge at node {node} for {addr:#x}"
                ));
            }
            if kids.contains(&node) {
                return Err(format!(
                    "self-loop zombie edge at node {node} for {addr:#x}"
                ));
            }
            if kids.iter().any(|&k| k >= nodes) {
                return Err(format!(
                    "out-of-range zombie edge at node {node} for {addr:#x}"
                ));
            }
        }
        for (&addr, e) in &self.entries {
            if e.ptrs.len() != self.pointers as usize {
                return Err(format!(
                    "directory entry for {addr:#x} has {} pointer slots, expected {}",
                    e.ptrs.len(),
                    self.pointers
                ));
            }
            let roots: Vec<Ptr> = e.ptrs.iter().flatten().copied().collect();
            for p in &roots {
                if p.node >= nodes {
                    return Err(format!("pointer at {addr:#x} references node {}", p.node));
                }
                if p.level == 0 {
                    return Err(format!("pointer at {addr:#x} has level 0"));
                }
            }
            let mut root_nodes: Vec<NodeId> = roots.iter().map(|p| p.node).collect();
            root_nodes.sort_unstable();
            root_nodes.dedup();
            if root_nodes.len() != roots.len() {
                return Err(format!("duplicate root pointer at {addr:#x}"));
            }
        }
        if !quiescent {
            return Ok(());
        }
        if self.collectors.open_count() != 0 {
            return Err(format!(
                "{} ack collector(s) still open at quiescence",
                self.collectors.open_count()
            ));
        }
        if self.gate.open_transactions() != 0 {
            return Err(format!(
                "{} home transaction(s) still open at quiescence",
                self.gate.open_transactions()
            ));
        }
        for &addr in addrs {
            let Some(e) = self.entries.get(&addr) else {
                continue;
            };
            if e.dirty {
                if e.ptrs.iter().any(Option::is_some) {
                    return Err(format!("dirty block {addr:#x} still records roots"));
                }
                if ctx.line_state(e.owner, addr) != LineState::E {
                    return Err(format!(
                        "dirty block {addr:#x}: recorded owner {} is not exclusive",
                        e.owner
                    ));
                }
                if self
                    .children
                    .iter()
                    .any(|(&(_, a), k)| a == addr && !k.is_empty())
                {
                    return Err(format!("dirty block {addr:#x} still has child edges"));
                }
                if self
                    .zombies
                    .iter()
                    .any(|(&(_, a), k)| a == addr && !k.is_empty())
                {
                    return Err(format!("dirty block {addr:#x} still has zombie edges"));
                }
                continue;
            }
            // Clean block: no exclusive copy, and every valid copy must be
            // reachable from the recorded roots.
            let mut reachable: Vec<NodeId> = Vec::new();
            let mut frontier: Vec<NodeId> = self
                .entries
                .get(&addr)
                .map(|e| e.ptrs.iter().flatten().map(|p| p.node).collect())
                .unwrap_or_default();
            while let Some(n) = frontier.pop() {
                if reachable.contains(&n) {
                    continue;
                }
                reachable.push(n);
                frontier.extend_from_slice(self.children_of(n, addr));
                frontier.extend_from_slice(self.zombies_of(n, addr));
            }
            for n in 0..nodes {
                match ctx.line_state(n, addr) {
                    LineState::E => {
                        return Err(format!(
                            "clean block {addr:#x} has an exclusive copy at node {n}"
                        ));
                    }
                    LineState::V if !reachable.contains(&n) => {
                        return Err(format!(
                            "valid copy at node {n} for {addr:#x} unreachable from the forest"
                        ));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

/// Relabel a per-`(node, addr)` edge map (children / zombies) through
/// `perm`, preserving each edge list's order.
pub(crate) fn relabel_edges(
    map: &FxHashMap<(NodeId, Addr), Vec<NodeId>>,
    perm: &[NodeId],
) -> FxHashMap<(NodeId, Addr), Vec<NodeId>> {
    map.iter()
        .map(|(&(n, a), kids)| {
            (
                (perm[n as usize], a),
                kids.iter().map(|&k| perm[k as usize]).collect(),
            )
        })
        .collect()
}

impl DirTree {
    /// Node-relabeled clone ([`Protocol::relabeled`]). Every decision the
    /// protocol makes — slot selection, level comparison, wave pairing
    /// (`slot += 2`), push-down target — is a function of slot indices and
    /// levels, never of node-id magnitude, so element-wise mapping of ids
    /// (preserving slot and edge-list order) is an exact equivariance.
    /// `wave_scratch` is cleared before every use and is not protocol
    /// state, so the clone starts with it empty.
    pub(crate) fn relabeled_concrete(&self, perm: &[NodeId]) -> DirTree {
        let relabel_ptr = |p: &Option<Ptr>| {
            p.map(|p| Ptr {
                node: perm[p.node as usize],
                level: p.level,
            })
        };
        DirTree {
            pointers: self.pointers,
            arity: self.arity,
            params: self.params,
            entries: self
                .entries
                .iter()
                .map(|(&a, e)| {
                    (
                        a,
                        Entry {
                            dirty: e.dirty,
                            owner: perm[e.owner as usize],
                            ptrs: e.ptrs.iter().map(relabel_ptr).collect(),
                            pending: e.pending.map(|(n, op)| (perm[n as usize], op)),
                            wait_acks: e.wait_acks,
                            wait_wb: e.wait_wb,
                            grant_self_root: e.grant_self_root,
                        },
                    )
                })
                .collect(),
            gate: self.gate.relabeled(perm),
            children: relabel_edges(&self.children, perm),
            zombies: relabel_edges(&self.zombies, perm),
            collectors: self.collectors.relabeled(perm),
            pending_wb: self
                .pending_wb
                .iter()
                .map(|(&(n, a), &(op, req))| ((perm[n as usize], a), (op, perm[req as usize])))
                .collect(),
            wave_scratch: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolParams;
    use crate::testutil::MockCtx;

    fn setup(nodes: u32, pointers: u32) -> (MockCtx, DirTree) {
        (
            MockCtx::new(nodes),
            DirTree::new(pointers, 2, ProtocolParams::default()),
        )
    }

    /// Home of every address used below is node 0 (addr % nodes == 0), so
    /// requesters 1..=15 never collide with the home.
    const A: Addr = 0;

    #[test]
    fn read_miss_is_always_two_messages() {
        let (mut ctx, mut p) = setup(32, 4);
        for n in 1..=20 {
            let mark = ctx.mark();
            ctx.read(&mut p, n, A);
            assert_eq!(
                ctx.critical_since(mark),
                2,
                "read miss #{n} must cost exactly 2 messages (paper Table 1)"
            );
        }
    }

    #[test]
    fn paper_figure5_fifteenth_request_adopts_11_and_13() {
        let (mut ctx, mut p) = setup(32, 4);
        for n in 1..=14 {
            ctx.read(&mut p, n, A);
        }
        // After 14 requests the maximal-equal-level pair is (11, 13).
        ctx.read(&mut p, 15, A);
        assert_eq!(p.children_of(15, A), &[11, 13]);
    }

    #[test]
    fn forest_levels_follow_figure6() {
        let (mut ctx, mut p) = setup(32, 2);
        // Dir2Tree2 trace from Table 3: levels evolve 1,1 -> merge.
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A);
        assert_eq!(
            p.forest(A),
            vec![
                Some(Ptr { node: 1, level: 1 }),
                Some(Ptr { node: 2, level: 1 })
            ]
        );
        ctx.read(&mut p, 3, A); // merge: 3 adopts 1 and 2
        assert_eq!(p.forest(A), vec![Some(Ptr { node: 3, level: 2 }), None]);
        assert_eq!(p.children_of(3, A), &[1, 2]);
        ctx.read(&mut p, 4, A); // free slot
        ctx.read(&mut p, 5, A); // push down: 5 adopts 4 (levels 2 and 1 differ)
        assert_eq!(
            p.forest(A),
            vec![
                Some(Ptr { node: 3, level: 2 }),
                Some(Ptr { node: 5, level: 2 })
            ]
        );
        assert_eq!(p.children_of(5, A), &[4]);
        ctx.read(&mut p, 6, A); // merge 3 and 5 under 6
        assert_eq!(p.forest(A), vec![Some(Ptr { node: 6, level: 3 }), None]);
        assert_eq!(p.children_of(6, A), &[3, 5]);
    }

    #[test]
    fn rereading_when_already_recorded_does_not_restructure() {
        let (mut ctx, mut p) = setup(32, 4);
        for n in 1..=4 {
            ctx.read(&mut p, n, A);
        }
        let forest = p.forest(A);
        ctx.evict(&mut p, 2, A); // silent
        ctx.read(&mut p, 2, A); // case 1: still recorded
        assert_eq!(p.forest(A), forest, "forest unchanged by re-read");
    }

    #[test]
    fn write_invalidates_entire_forest() {
        let (mut ctx, mut p) = setup(32, 4);
        for n in 1..=15 {
            ctx.read(&mut p, n, A);
        }
        ctx.write(&mut p, 20, A);
        for n in 1..=15 {
            assert!(
                !ctx.line_state(n, A).readable(),
                "node {n} survived the write"
            );
        }
        assert_eq!(ctx.line_state(20, A), LineState::E);
        ctx.assert_swmr(A);
        // Forest is empty and dirty.
        assert!(p.forest(A).iter().all(Option::is_none));
    }

    #[test]
    fn pairing_halves_home_acks() {
        let (mut ctx, mut p) = setup(32, 4);
        for n in 1..=8 {
            ctx.read(&mut p, n, A); // fills 4 pointers, then merges
        }
        let mark = ctx.mark();
        ctx.write(&mut p, 9, A);
        let dir_acks = ctx
            .sent_since(mark)
            .iter()
            .filter(|(_, m)| matches!(m.kind, MsgKind::InvAck { dir: true }))
            .count();
        let live_roots = 4; // after 8 inserts all four pointers are live
        assert!(
            dir_acks <= live_roots / 2 + 1,
            "home saw {dir_acks} acks, pairing should bound it by ceil(roots/2)"
        );
    }

    #[test]
    fn no_pairing_ablation_sends_ack_per_root() {
        let params = ProtocolParams {
            dir_tree_pairing: false,
            ..Default::default()
        };
        let mut p = DirTree::new(4, 2, params);
        let mut ctx = MockCtx::new(32);
        for n in 1..=8 {
            ctx.read(&mut p, n, A);
        }
        let roots = p.forest(A).iter().flatten().count();
        let mark = ctx.mark();
        ctx.write(&mut p, 9, A);
        let dir_acks = ctx
            .sent_since(mark)
            .iter()
            .filter(|(_, m)| matches!(m.kind, MsgKind::InvAck { dir: true }))
            .count();
        assert_eq!(dir_acks, roots);
    }

    #[test]
    fn silent_replacement_kills_subtree_only() {
        let (mut ctx, mut p) = setup(32, 2);
        for n in 1..=3 {
            ctx.read(&mut p, n, A); // 3 is root with children {1, 2}
        }
        ctx.read(&mut p, 4, A);
        ctx.evict(&mut p, 3, A); // Replace_INV kills 1 and 2 silently
        assert!(!ctx.line_state(1, A).readable());
        assert!(!ctx.line_state(2, A).readable());
        assert!(ctx.line_state(4, A).readable(), "other tree untouched");
        // Home still (staleley) points at 3; a write must still work.
        ctx.write(&mut p, 5, A);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![5]);
    }

    #[test]
    fn stale_root_rejoin_with_duplicate_invs_is_coherent() {
        let (mut ctx, mut p) = setup(32, 2);
        // Build: 3 -> {1, 2}; evict 1 silently (leaf). Home pointer still
        // references the tree; 1 re-reads and is re-inserted elsewhere,
        // creating a stale 3 -> 1 edge plus a fresh position for 1.
        for n in 1..=3 {
            ctx.read(&mut p, n, A);
        }
        ctx.evict(&mut p, 1, A);
        ctx.read(&mut p, 4, A); // occupies second pointer
        ctx.read(&mut p, 1, A); // 1 rejoins: push-down of tree 4 (levels 2 vs 1)
        assert_eq!(p.children_of(1, A), &[4]);
        // Now the write's invalidation visits 1 once from home (root) and
        // once via the stale edge from 3.
        ctx.write(&mut p, 9, A);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![9]);
    }

    #[test]
    fn dirty_read_recall_keeps_owner_as_root() {
        let (mut ctx, mut p) = setup(32, 4);
        ctx.write(&mut p, 2, A);
        ctx.read(&mut p, 5, A);
        assert_eq!(ctx.line_state(2, A), LineState::V);
        assert_eq!(ctx.line_state(5, A), LineState::V);
        let forest = p.forest(A);
        assert_eq!(forest[0], Some(Ptr { node: 2, level: 1 }));
        assert_eq!(forest[1], Some(Ptr { node: 5, level: 1 }));
    }

    #[test]
    fn upgrade_write_from_inside_the_forest() {
        let (mut ctx, mut p) = setup(32, 2);
        for n in 1..=5 {
            ctx.read(&mut p, n, A);
        }
        ctx.write(&mut p, 3, A); // 3 is inside the forest (has children)
        assert_eq!(ctx.line_state(3, A), LineState::E);
        for n in [1, 2, 4, 5] {
            assert!(!ctx.line_state(n, A).readable());
        }
        ctx.assert_swmr(A);
        assert!(p.children_of(3, A).is_empty(), "writer's children cleared");
    }

    #[test]
    fn exclusive_eviction_cleans_dirty_state() {
        let (mut ctx, mut p) = setup(32, 4);
        ctx.write(&mut p, 3, A);
        ctx.evict(&mut p, 3, A);
        let mark = ctx.mark();
        ctx.read(&mut p, 4, A);
        assert_eq!(ctx.critical_since(mark), 2, "clean read after writeback");
    }

    #[test]
    fn repl_notify_ablation_clears_stale_pointer() {
        let params = ProtocolParams {
            dir_tree_silent_replace: false,
            ..Default::default()
        };
        let mut p = DirTree::new(4, 2, params);
        let mut ctx = MockCtx::new(32);
        ctx.read(&mut p, 1, A);
        ctx.read(&mut p, 2, A);
        ctx.evict(&mut p, 1, A);
        assert_eq!(p.forest(A)[0], None, "notify cleared the pointer");
        assert_eq!(p.forest(A)[1], Some(Ptr { node: 2, level: 1 }));
    }

    #[test]
    fn deep_forest_write_storm_many_nodes() {
        let (mut ctx, mut p) = setup(32, 1);
        // Dir1Tree2 degenerates to a single (chain-heavy) tree.
        for n in 1..=25 {
            ctx.read(&mut p, n, A);
        }
        ctx.write(&mut p, 30, A);
        for n in 1..=25 {
            assert!(!ctx.line_state(n, A).readable());
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn sequential_writers_chain_ownership() {
        let (mut ctx, mut p) = setup(16, 4);
        for n in 0..16 {
            ctx.write(&mut p, n, A);
            ctx.assert_swmr(A);
            assert_eq!(ctx.holders(A), vec![n]);
        }
    }

    #[test]
    fn subtree_inspection_walks_children() {
        let (mut ctx, mut p) = setup(32, 2);
        for n in 1..=3 {
            ctx.read(&mut p, n, A);
        }
        let t = p.subtree(3, A);
        assert_eq!(t, vec![3, 1, 2]);
    }

    #[test]
    fn memory_formula_matches_section3() {
        let p = DirTree::new(4, 2, ProtocolParams::default());
        // 2·i·log n + dirty = 2·4·5 + 1 for n = 32.
        assert_eq!(p.dir_bits_per_mem_block(32), 41);
        // k·log n + state = 2·5 + 3.
        assert_eq!(p.cache_bits_per_line(32), 13);
    }

    #[test]
    fn upgrade_by_sole_sharer_costs_two_messages() {
        // Migratory pattern: read then write by the same node. The home
        // skips the self-invalidation (the grant carries the subtree-kill
        // instruction), so the upgrade costs req + grant only.
        let (mut ctx, mut p) = setup(32, 4);
        ctx.read(&mut p, 3, A);
        let mark = ctx.mark();
        ctx.write(&mut p, 3, A);
        assert_eq!(ctx.critical_since(mark), 2, "upgrade must match full-map");
        assert_eq!(ctx.line_state(3, A), LineState::E);
    }

    #[test]
    fn upgrade_by_root_with_children_kills_subtree_locally() {
        let (mut ctx, mut p) = setup(32, 2);
        for n in 1..=3 {
            ctx.read(&mut p, n, A); // 3 -> {1, 2}
        }
        assert_eq!(p.children_of(3, A), &[1, 2]);
        let mark = ctx.mark();
        ctx.write(&mut p, 3, A); // 3 is the sole root
                                 // req + grant + 2 self-issued invs + 2 acks = 6, still cheaper
                                 // than bouncing an Inv off the home.
        assert_eq!(ctx.critical_since(mark), 6);
        assert!(!ctx.line_state(1, A).readable());
        assert!(!ctx.line_state(2, A).readable());
        assert_eq!(ctx.line_state(3, A), LineState::E);
        assert!(p.children_of(3, A).is_empty());
        ctx.assert_swmr(A);
    }

    #[test]
    fn writer_as_odd_partner_is_skipped_in_pairing() {
        let (mut ctx, mut p) = setup(32, 4);
        ctx.read(&mut p, 5, A); // ptr0
        ctx.read(&mut p, 7, A); // ptr1
        let mark = ctx.mark();
        ctx.write(&mut p, 7, A); // the odd partner upgrades
                                 // Home invalidates only node 5 (no `also` back to the writer):
                                 // req + inv(5) + ack + grant = 4.
        assert_eq!(ctx.critical_since(mark), 4);
        assert!(!ctx.line_state(5, A).readable());
        assert_eq!(ctx.line_state(7, A), LineState::E);
    }

    #[test]
    fn recall_during_self_subtree_kill_is_deferred() {
        // Build 3 -> {1, 2}; 3 upgrades (self-kill in progress keeps it
        // WmLip briefly); a reader's recall must wait for exclusivity.
        // With the mock's synchronous delivery the window closes inside
        // run(), so this exercises the pending_wb bookkeeping end-to-end.
        let (mut ctx, mut p) = setup(32, 2);
        for n in 1..=3 {
            ctx.read(&mut p, n, A);
        }
        ctx.write(&mut p, 3, A);
        ctx.read(&mut p, 9, A); // dirty recall from 3
        assert_eq!(ctx.line_state(3, A), LineState::V);
        assert_eq!(ctx.line_state(9, A), LineState::V);
        ctx.assert_swmr(A);
    }

    #[test]
    fn arity_four_merges_up_to_four_trees() {
        let mut p = DirTree::new(4, 4, ProtocolParams::default());
        let mut ctx = MockCtx::new(32);
        for n in 1..=4 {
            ctx.read(&mut p, n, A); // fill the four pointers, level 1 each
        }
        ctx.read(&mut p, 5, A); // 4-way merge: 5 adopts all four
        assert_eq!(p.children_of(5, A), &[1, 2, 3, 4]);
        let forest = p.forest(A);
        assert_eq!(forest[0], Some(Ptr { node: 5, level: 2 }));
        assert!(forest[1..].iter().all(Option::is_none));
        // Coherence still holds through the wider tree.
        ctx.write(&mut p, 9, A);
        for n in 1..=5 {
            assert!(!ctx.line_state(n, A).readable());
        }
        ctx.assert_swmr(A);
    }

    #[test]
    fn arity_two_merge_is_unchanged_by_the_generalization() {
        // The k = 2 behaviour must stay exactly the paper's (Figure 5).
        let (mut ctx, mut p) = setup(32, 4);
        for n in 1..=15 {
            ctx.read(&mut p, n, A);
        }
        assert_eq!(p.children_of(15, A), &[11, 13]);
    }

    #[test]
    fn interleaved_reads_and_writes_converge() {
        let (mut ctx, mut p) = setup(32, 4);
        for round in 0..4 {
            for n in 1..=10 {
                ctx.read(&mut p, n, A);
            }
            ctx.write(&mut p, round, A);
            ctx.assert_swmr(A);
            assert_eq!(ctx.holders(A), vec![round]);
        }
    }
}
