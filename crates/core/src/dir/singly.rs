//! Singly-linked-list protocol (Thapar, Delagi & Flynn; §2.2 of the
//! paper) — Dir₁Tree₁ with forward pointers only.
//!
//! The home keeps one pointer to the list *head* (the most recent reader);
//! each cache keeps a forward pointer to the next sharer; the tail points
//! back at the home (`next = None`). A read miss costs 3 messages (home
//! redirects the old head to supply); a write miss walks the chain
//! sequentially — the protocol's defining weakness.
//!
//! **Replacement** is under-specified in the original; forward-only
//! pointers cannot splice a node out locally. We invalidate the evicted
//! node's *tail* (everything downstream) with unacknowledged
//! `ReplaceInv`s, and let invalidation walks treat any dead node as the
//! end of the chain — every walk then terminates with exactly one
//! `SllChainDone`, even across stale pointers and re-insertions (see the
//! walk-termination tests).

use crate::ctx::{ProtoCtx, ProtoEvent};
use crate::dir::util::TxnGate;
use crate::msg::{Msg, MsgKind};
use crate::protocol::{ptr_bits, Protocol, ProtocolKind};
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::FxHashMap;

#[derive(Clone, Default, Hash)]
struct Entry {
    head: Option<NodeId>,
    dirty: bool,
    /// Open-transaction bookkeeping.
    wait_fill: bool,
    wait_wbdata: bool,
    pending_writer: Option<NodeId>,
}

/// The singly-linked-list protocol.
#[derive(Clone)]
pub struct SinglyList {
    entries: FxHashMap<Addr, Entry>,
    gate: TxnGate,
    /// Cache-side forward pointer (`None` = tail).
    next: FxHashMap<(NodeId, Addr), Option<NodeId>>,
}

impl SinglyList {
    pub fn new() -> Self {
        Self {
            entries: FxHashMap::default(),
            gate: TxnGate::new(),
            next: FxHashMap::default(),
        }
    }

    /// The list as seen from the home (diagnostics; stops at dead ends).
    pub fn chain(&self, addr: Addr, max: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.entries.get(&addr).and_then(|e| e.head);
        while let Some(n) = cur {
            if out.contains(&n) || out.len() >= max {
                break;
            }
            out.push(n);
            cur = self.next.get(&(n, addr)).copied().flatten();
        }
        out
    }

    fn maybe_finish(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        let e = self.entries.get_mut(&addr).unwrap();
        if !e.wait_fill && !e.wait_wbdata {
            if let Some(next) = self.gate.finish(addr) {
                ctx.redeliver(home, next, 0);
            }
        }
    }

    fn handle_read_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::ReadReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let e = self.entries.entry(addr).or_default();
        e.wait_fill = true;
        match e.head {
            None => {
                ctx.send(
                    requester,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::ReadReply { adopt: vec![] },
                    },
                );
                e.head = Some(requester);
            }
            Some(old_head) if old_head == requester => {
                // Stale self-pointer: the requester was the head, silently
                // lost its copy (its tail died with it), and is re-reading.
                ctx.send(
                    requester,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::ReadReply { adopt: vec![] },
                    },
                );
                e.dirty = false;
            }
            Some(old_head) => {
                // Redirect the old head to supply; requester becomes head.
                e.head = Some(requester);
                if e.dirty {
                    e.wait_wbdata = true;
                }
                ctx.send(
                    old_head,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::SllSupply { requester },
                    },
                );
            }
        }
    }

    fn handle_write_req(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::WriteReq { requester } = msg.kind else {
            unreachable!()
        };
        if !self.gate.admit(addr, &msg) {
            return;
        }
        let e = self.entries.entry(addr).or_default();
        match e.head {
            None => {
                e.head = Some(requester);
                e.dirty = true;
                ctx.send(
                    requester,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::WriteReply {
                            kill_self_subtree: false,
                        },
                    },
                );
                if let Some(next) = self.gate.finish(addr) {
                    ctx.redeliver(home, next, 0);
                }
            }
            Some(head) => {
                e.pending_writer = Some(requester);
                ctx.send(
                    head,
                    Msg {
                        addr,
                        src: home,
                        kind: MsgKind::SllInv { writer: requester },
                    },
                );
            }
        }
    }

    fn handle_chain_done(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        let e = self
            .entries
            .get_mut(&addr)
            .expect("chain done without entry");
        let writer = e.pending_writer.take().expect("chain done without writer");
        e.head = Some(writer);
        e.dirty = true;
        ctx.send(
            writer,
            Msg {
                addr,
                src: home,
                kind: MsgKind::WriteReply {
                    kill_self_subtree: false,
                },
            },
        );
        if let Some(next) = self.gate.finish(addr) {
            ctx.redeliver(home, next, 0);
        }
    }

    /// A node's slot in the chain has ended (invalidated or dead): either
    /// forward the walk or report completion to the home.
    fn walk_step(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, writer: NodeId) {
        let next = self.next.remove(&(node, addr)).flatten();
        match next {
            Some(nx) => ctx.send(
                nx,
                Msg {
                    addr,
                    src: node,
                    kind: MsgKind::SllInv { writer },
                },
            ),
            None => {
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::SllChainDone { writer },
                    },
                );
            }
        }
    }

    fn handle_inv(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::SllInv { writer } = msg.kind else {
            unreachable!()
        };
        match ctx.line_state(node, addr) {
            // A dirty owner sits in the chain like any sharer: its copy
            // dies (ownership passes to the writer via the home's grant).
            LineState::V | LineState::E => {
                ctx.note(ProtoEvent::Invalidation);
                ctx.set_line_state(node, addr, LineState::Iv);
                self.walk_step(ctx, node, addr, writer);
            }
            LineState::WmIp | LineState::WmLip => {
                // The upgrading writer's old copy: dies, but the line stays
                // transient awaiting its own grant.
                self.walk_step(ctx, node, addr, writer);
            }
            // Dead end (evicted, or never served): the downstream tail was
            // killed by the eviction's ReplaceInv, so the walk ends here.
            _ => {
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::SllChainDone { writer },
                    },
                );
            }
        }
    }

    fn handle_supply(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let MsgKind::SllSupply { requester } = msg.kind else {
            unreachable!()
        };
        let home = ctx.home_of(addr);
        match ctx.line_state(node, addr) {
            // A WmIp/WmLip holder still has its old (pre-upgrade) copy: the
            // redirected read is ordered before its queued write, so it
            // supplies normally and stays in the chain for the write's walk.
            LineState::V | LineState::E | LineState::WmIp | LineState::WmLip => {
                if ctx.line_state(node, addr) == LineState::E {
                    ctx.set_line_state(node, addr, LineState::V);
                    ctx.send(
                        home,
                        Msg {
                            addr,
                            src: node,
                            kind: MsgKind::WbData {
                                for_op: OpKind::Read,
                                requester,
                            },
                        },
                    );
                }
                ctx.send(
                    requester,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::SllData,
                    },
                );
            }
            _ => {
                // Dead head (silent replacement race): the home supplies.
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::SllSupplyFail { requester },
                    },
                );
            }
        }
    }

    /// Dirty-read writeback from a live supplier: memory is fresh again.
    fn handle_wbdata(&mut self, ctx: &mut dyn ProtoCtx, home: NodeId, addr: Addr) {
        let e = self.entries.entry(addr).or_default();
        e.dirty = false;
        e.wait_wbdata = false;
        self.maybe_finish(ctx, home, addr);
    }

    /// The redirected old head was dead: serve the requester from memory.
    fn handle_supply_fail(
        &mut self,
        ctx: &mut dyn ProtoCtx,
        home: NodeId,
        addr: Addr,
        requester: NodeId,
    ) {
        let e = self.entries.entry(addr).or_default();
        e.dirty = false;
        e.wait_wbdata = false;
        ctx.send(
            requester,
            Msg {
                addr,
                src: home,
                kind: MsgKind::ReadReply { adopt: vec![] },
            },
        );
        self.maybe_finish(ctx, home, addr);
    }

    fn fill(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, next: Option<NodeId>) {
        debug_assert_eq!(ctx.line_state(node, addr), LineState::RmIp);
        self.next.insert((node, addr), next);
        ctx.set_line_state(node, addr, LineState::V);
        ctx.complete(node, addr, OpKind::Read);
        let home = ctx.home_of(addr);
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind: MsgKind::FillAck,
            },
        );
    }
}

impl Default for SinglyList {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for SinglyList {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::SinglyList
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        let home = ctx.home_of(addr);
        let kind = match op {
            OpKind::Read => MsgKind::ReadReq { requester: node },
            OpKind::Write => MsgKind::WriteReq { requester: node },
        };
        ctx.send(
            home,
            Msg {
                addr,
                src: node,
                kind,
            },
        );
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        match msg.kind {
            MsgKind::ReadReq { .. } => self.handle_read_req(ctx, node, msg),
            MsgKind::WriteReq { .. } => self.handle_write_req(ctx, node, msg),
            MsgKind::SllChainDone { .. } => self.handle_chain_done(ctx, node, addr),
            MsgKind::SllInv { .. } => self.handle_inv(ctx, node, msg),
            MsgKind::SllSupply { .. } => self.handle_supply(ctx, node, msg),
            MsgKind::SllData => {
                let supplier = msg.src;
                self.fill(ctx, node, addr, Some(supplier));
            }
            MsgKind::ReadReply { .. } => self.fill(ctx, node, addr, None),
            MsgKind::WriteReply { .. } => {
                debug_assert_eq!(ctx.line_state(node, addr), LineState::WmIp);
                self.next.insert((node, addr), None);
                ctx.set_line_state(node, addr, LineState::E);
                ctx.complete(node, addr, OpKind::Write);
            }
            MsgKind::WbData { .. } => self.handle_wbdata(ctx, node, addr),
            MsgKind::SllSupplyFail { requester } => {
                self.handle_supply_fail(ctx, node, addr, requester)
            }
            MsgKind::WbEvict => {
                let e = self.entries.entry(addr).or_default();
                if e.head == Some(msg.src) {
                    e.head = None;
                }
                e.dirty = false;
            }
            MsgKind::FillAck => {
                let e = self.entries.entry(addr).or_default();
                e.wait_fill = false;
                self.maybe_finish(ctx, node, addr);
            }
            MsgKind::ReplaceInv => {
                if ctx.line_state(node, addr) == LineState::V {
                    ctx.note(ProtoEvent::ReplacementInvalidation);
                    ctx.set_line_state(node, addr, LineState::Iv);
                    if let Some(Some(nx)) = self.next.remove(&(node, addr)) {
                        ctx.send(
                            nx,
                            Msg {
                                addr,
                                src: node,
                                kind: MsgKind::ReplaceInv,
                            },
                        );
                    }
                }
            }
            other => unreachable!("singly-linked list received {other:?}"),
        }
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        match state {
            LineState::V => {
                // Forward pointers cannot splice: kill the tail downstream.
                if let Some(Some(nx)) = self.next.remove(&(node, addr)) {
                    ctx.send(
                        nx,
                        Msg {
                            addr,
                            src: node,
                            kind: MsgKind::ReplaceInv,
                        },
                    );
                }
            }
            LineState::E => {
                self.next.remove(&(node, addr));
                let home = ctx.home_of(addr);
                ctx.send(
                    home,
                    Msg {
                        addr,
                        src: node,
                        kind: MsgKind::WbEvict,
                    },
                );
            }
            other => unreachable!("evicting line in state {other:?}"),
        }
    }

    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        ptr_bits(nodes) + 2 // head pointer + valid + dirty
    }

    fn cache_bits_per_line(&self, nodes: u32) -> u64 {
        ptr_bits(nodes) + 1 + 3 // next pointer + tail flag + state
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        use crate::fingerprint::digest_map;
        digest_map(h, &self.entries);
        self.gate.digest(h);
        digest_map(h, &self.next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockCtx;

    const A: Addr = 0;

    fn setup(nodes: u32) -> (MockCtx, SinglyList) {
        (MockCtx::new(nodes), SinglyList::new())
    }

    #[test]
    fn first_read_is_two_messages_then_three() {
        let (mut ctx, mut p) = setup(8);
        let mark = ctx.mark();
        ctx.read(&mut p, 1, A);
        assert_eq!(ctx.critical_since(mark), 2, "empty list: home supplies");
        let mark = ctx.mark();
        ctx.read(&mut p, 2, A);
        assert_eq!(
            ctx.critical_since(mark),
            3,
            "paper Table 1: req + supply-redirect + data"
        );
    }

    #[test]
    fn list_orders_newest_first() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=4 {
            ctx.read(&mut p, n, A);
        }
        assert_eq!(p.chain(A, 16), vec![4, 3, 2, 1]);
    }

    #[test]
    fn write_walks_the_whole_chain() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=4 {
            ctx.read(&mut p, n, A);
        }
        let mark = ctx.mark();
        ctx.write(&mut p, 6, A);
        // req + 4 chain hops + done + grant = P + 3 = 7.
        assert_eq!(ctx.critical_since(mark), 7);
        for n in 1..=4 {
            assert!(!ctx.line_state(n, A).readable());
        }
        ctx.assert_swmr(A);
        assert_eq!(p.chain(A, 16), vec![6]);
    }

    #[test]
    fn dirty_read_downgrades_owner_and_chains() {
        let (mut ctx, mut p) = setup(8);
        ctx.write(&mut p, 2, A);
        ctx.read(&mut p, 5, A);
        assert_eq!(ctx.line_state(2, A), LineState::V);
        assert_eq!(ctx.line_state(5, A), LineState::V);
        assert_eq!(p.chain(A, 16), vec![5, 2]);
        ctx.write(&mut p, 3, A);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![3]);
    }

    #[test]
    fn eviction_kills_the_tail_but_walk_still_terminates() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=4 {
            ctx.read(&mut p, n, A); // chain 4-3-2-1
        }
        ctx.evict(&mut p, 3, A); // kills 2 and 1 downstream
        assert!(!ctx.line_state(2, A).readable());
        assert!(!ctx.line_state(1, A).readable());
        assert!(ctx.line_state(4, A).readable(), "upstream survives");
        // The write walk crosses the dead zone and still completes.
        ctx.write(&mut p, 6, A);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![6]);
    }

    #[test]
    fn dead_head_read_falls_back_to_home_supply() {
        let (mut ctx, mut p) = setup(8);
        ctx.read(&mut p, 1, A);
        ctx.evict(&mut p, 1, A); // head dead, home pointer stale
        ctx.read(&mut p, 2, A); // supply fails; home serves
        assert!(ctx.line_state(2, A).readable());
        ctx.write(&mut p, 3, A);
        ctx.assert_swmr(A);
    }

    #[test]
    fn reinsertion_with_stale_pointer_walk_terminates_once() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=3 {
            ctx.read(&mut p, n, A); // 3-2-1
        }
        ctx.evict(&mut p, 2, A); // kills 1; 3 still points at 2
        ctx.read(&mut p, 2, A); // 2 rejoins at head: 2-3-(dead 2...)
                                // Walk: 2 -> 3 -> 2(dead, Iv) -> done. Must not deadlock and must
                                // deliver exactly one grant.
        ctx.write(&mut p, 5, A);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![5]);
    }

    #[test]
    fn upgrade_write_from_inside_the_chain() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=3 {
            ctx.read(&mut p, n, A);
        }
        ctx.write(&mut p, 2, A); // 2 is mid-chain
        assert_eq!(ctx.line_state(2, A), LineState::E);
        assert!(!ctx.line_state(1, A).readable());
        assert!(!ctx.line_state(3, A).readable());
        ctx.assert_swmr(A);
    }

    #[test]
    fn exclusive_eviction_resets_home() {
        let (mut ctx, mut p) = setup(8);
        ctx.write(&mut p, 3, A);
        ctx.evict(&mut p, 3, A);
        let mark = ctx.mark();
        ctx.read(&mut p, 4, A);
        assert_eq!(ctx.critical_since(mark), 2, "home supplies a clean block");
    }

    #[test]
    fn sequential_writers_chain_ownership() {
        let (mut ctx, mut p) = setup(8);
        for n in 0..8 {
            ctx.write(&mut p, n, A);
            ctx.assert_swmr(A);
            assert_eq!(ctx.holders(A), vec![n]);
        }
    }

    #[test]
    fn head_upgrade_write_walks_from_its_next() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=3 {
            ctx.read(&mut p, n, A); // 3-2-1, head 3
        }
        ctx.write(&mut p, 3, A); // head upgrades
        assert_eq!(ctx.line_state(3, A), LineState::E);
        assert!(!ctx.line_state(2, A).readable());
        assert!(!ctx.line_state(1, A).readable());
        ctx.assert_swmr(A);
    }

    #[test]
    fn double_eviction_and_rejoin_keeps_chain_sound() {
        let (mut ctx, mut p) = setup(8);
        for n in 1..=4 {
            ctx.read(&mut p, n, A); // 4-3-2-1
        }
        ctx.evict(&mut p, 2, A); // kills 1
        ctx.read(&mut p, 2, A); // rejoins at head
        ctx.evict(&mut p, 2, A); // leaves again (kills 4, 3 downstream!)
        assert!(!ctx.line_state(3, A).readable());
        assert!(!ctx.line_state(4, A).readable());
        ctx.read(&mut p, 5, A);
        ctx.write(&mut p, 6, A);
        ctx.assert_swmr(A);
        assert_eq!(ctx.holders(A), vec![6]);
    }

    #[test]
    fn memory_overhead_is_one_pointer_each_side() {
        let p = SinglyList::new();
        assert_eq!(p.dir_bits_per_mem_block(32), 7);
        assert_eq!(p.cache_bits_per_line(32), 9);
    }
}
