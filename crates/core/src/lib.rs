//! # dirtree-core — cache coherence protocols
//!
//! The paper's contribution, **Dir<sub>i</sub>Tree<sub>k</sub>**
//! ([`dir::dir_tree`]), plus every baseline it is evaluated against or
//! compared to:
//!
//! * [`dir::full_map`] — Dir<sub>n</sub>NB full bit-map directory,
//! * [`dir::limited`] — Dir<sub>i</sub>NB (pointer replacement) and
//!   Dir<sub>i</sub>B (broadcast-on-overflow),
//! * [`dir::limitless`] — LimitLESS<sub>i</sub> software-extended directory,
//! * [`dir::singly`] — Stanford singly-linked-list protocol,
//! * [`dir::sci`] — IEEE 1596 SCI doubly-linked list,
//! * [`dir::stp`] — the Scalable Tree Protocol (balanced top-down trees),
//! * [`dir::sci_tree`] — the P1596.2 SCI tree extension (AVL-balanced).
//!
//! Protocols are written against the [`protocol::Protocol`] trait and the
//! [`ctx::ProtoCtx`] context, so they are independent of the event loop in
//! `dirtree-machine`: unit tests in this crate drive them with a mock
//! context, and the machine crate drives them with the real network.

pub mod adapt;
pub mod cache;
pub mod ctx;
pub mod dir;
pub mod fingerprint;
pub mod msg;
pub mod protocol;
pub mod types;
pub mod verify;

pub mod testkit;

#[cfg(test)]
pub(crate) use testkit as testutil;

pub use cache::{Cache, CacheConfig};
pub use ctx::ProtoCtx;
pub use msg::{Msg, MsgKind};
pub use protocol::{build_protocol, Protocol, ProtocolKind};
pub use types::{Addr, LineState, NodeId, OpKind};
