//! Set-associative cache tag store with O(1) LRU replacement.
//!
//! The paper's configuration (Table 5) is a 16 KB fully-associative data
//! cache with 8-byte blocks — 2048 lines in one set — which is the default
//! produced by [`CacheConfig::paper_default`]. The model is a tag/state
//! store only: block *contents* live with the workload driver, and
//! coherence metadata (tree children, list pointers) lives with the
//! protocol.
//!
//! Each set keeps an intrusive doubly-linked LRU list (index-based) plus a
//! lazy stack of invalidated slots, so `touch` and `allocate` are O(1)
//! even at the paper's 2048-way associativity — the victim walk only skips
//! the rare transient line.

use crate::types::{Addr, LineState};
use dirtree_sim::FxHashMap;

/// Geometry of one processor's cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total lines in the cache.
    pub lines: usize,
    /// Lines per set (== `lines` for fully associative).
    pub associativity: usize,
}

impl CacheConfig {
    /// Table 5: 16 KB, 8-byte blocks, fully associative → 2048-way, 1 set.
    pub fn paper_default() -> Self {
        Self {
            lines: 2048,
            associativity: 2048,
        }
    }

    pub fn sets(&self) -> usize {
        debug_assert_eq!(self.lines % self.associativity, 0);
        self.lines / self.associativity
    }
}

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Line {
    addr: Addr,
    state: LineState,
    /// Intrusive LRU links (slot indices within the set).
    prev: u32,
    next: u32,
}

/// The outcome of allocating a line for `addr`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocOutcome {
    /// The address already had a resident tag (any state).
    AlreadyResident,
    /// A free (or invalid) slot was used; nothing was displaced.
    Fresh,
    /// A valid victim was displaced; the caller must run the protocol's
    /// replacement action for it. The victim's state is returned.
    Evicted { victim: Addr, state: LineState },
    /// No line could be allocated: every candidate is in a transient state.
    /// Callers must retry later (only possible in pathological tiny-cache
    /// configurations).
    Stalled,
}

/// One set: slots + MRU/LRU list + lazy invalid stack.
struct Set {
    slots: Vec<Line>,
    mru: u32,
    lru: u32,
    /// Slots whose line was invalidated (validated lazily on pop).
    invalid: Vec<u32>,
}

impl Set {
    fn new(assoc: usize) -> Self {
        Self {
            slots: Vec::with_capacity(assoc),
            mru: NIL,
            lru: NIL,
            invalid: Vec::new(),
        }
    }

    fn unlink(&mut self, i: u32) {
        let (p, n) = {
            let l = &self.slots[i as usize];
            (l.prev, l.next)
        };
        if p != NIL {
            self.slots[p as usize].next = n;
        } else {
            self.mru = n;
        }
        if n != NIL {
            self.slots[n as usize].prev = p;
        } else {
            self.lru = p;
        }
    }

    fn push_front(&mut self, i: u32) {
        let old = self.mru;
        {
            let l = &mut self.slots[i as usize];
            l.prev = NIL;
            l.next = old;
        }
        if old != NIL {
            self.slots[old as usize].prev = i;
        } else {
            self.lru = i;
        }
        self.mru = i;
    }

    fn touch(&mut self, i: u32) {
        if self.mru != i {
            self.unlink(i);
            self.push_front(i);
        }
    }
}

/// One processor's cache.
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Set>,
    index: FxHashMap<Addr, (u32, u32)>,
}

impl Cache {
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.lines > 0 && config.associativity > 0);
        assert_eq!(
            config.lines % config.associativity,
            0,
            "lines must be a multiple of associativity"
        );
        assert!(config.associativity < NIL as usize);
        let sets = config.sets();
        Self {
            config,
            sets: (0..sets).map(|_| Set::new(config.associativity)).collect(),
            index: FxHashMap::default(),
        }
    }

    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn set_of(&self, addr: Addr) -> usize {
        (addr as usize) % self.sets.len()
    }

    /// State of `addr`, or `NotPresent`.
    pub fn state(&self, addr: Addr) -> LineState {
        match self.index.get(&addr) {
            Some(&(s, i)) => self.sets[s as usize].slots[i as usize].state,
            None => LineState::NotPresent,
        }
    }

    /// Set the state of a resident line.
    ///
    /// # Panics
    /// Panics if the tag is not resident — protocols must only touch lines
    /// that exist (invalidations for evicted lines are handled before this).
    pub fn set_state(&mut self, addr: Addr, state: LineState) {
        let &(s, i) = self
            .index
            .get(&addr)
            .unwrap_or_else(|| panic!("set_state on non-resident line {addr:#x}"));
        let set = &mut self.sets[s as usize];
        let was_invalid = set.slots[i as usize].state == LineState::Iv;
        set.slots[i as usize].state = state;
        if state == LineState::Iv && !was_invalid {
            set.invalid.push(i);
        }
    }

    /// Mark `addr` most-recently-used (on every processor access).
    pub fn touch(&mut self, addr: Addr) {
        if let Some(&(s, i)) = self.index.get(&addr) {
            self.sets[s as usize].touch(i);
        }
    }

    /// Ensure a tag exists for `addr`, evicting an LRU victim if the set is
    /// full. New lines start in `Iv`; the caller transitions them. Victims
    /// are never transient lines.
    pub fn allocate(&mut self, addr: Addr) -> AllocOutcome {
        if self.index.contains_key(&addr) {
            self.touch(addr);
            return AllocOutcome::AlreadyResident;
        }
        let set_idx = self.set_of(addr);
        let assoc = self.config.associativity;
        let set = &mut self.sets[set_idx];

        // Free capacity: grow the set.
        if set.slots.len() < assoc {
            let slot = set.slots.len() as u32;
            set.slots.push(Line {
                addr,
                state: LineState::Iv,
                prev: NIL,
                next: NIL,
            });
            set.push_front(slot);
            // The new line is invalid until the caller transitions it, so
            // it is itself a legal victim for a subsequent allocation.
            set.invalid.push(slot);
            self.index.insert(addr, (set_idx as u32, slot));
            return AllocOutcome::Fresh;
        }

        // Prefer a (still-)invalid slot from the lazy stack.
        while let Some(i) = set.invalid.pop() {
            if set.slots[i as usize].state != LineState::Iv {
                continue; // revalidated since; stale stack entry
            }
            let victim_addr = set.slots[i as usize].addr;
            self.index.remove(&victim_addr);
            set.slots[i as usize] = Line {
                addr,
                state: LineState::Iv,
                prev: set.slots[i as usize].prev,
                next: set.slots[i as usize].next,
            };
            set.touch(i);
            set.invalid.push(i); // still invalid until transitioned
            self.index.insert(addr, (set_idx as u32, i));
            return AllocOutcome::Fresh;
        }

        // LRU walk from the tail, skipping transient lines (rare).
        let mut i = set.lru;
        while i != NIL {
            let state = set.slots[i as usize].state;
            if matches!(state, LineState::V | LineState::E) {
                let victim_addr = set.slots[i as usize].addr;
                self.index.remove(&victim_addr);
                set.slots[i as usize].addr = addr;
                set.slots[i as usize].state = LineState::Iv;
                set.touch(i);
                set.invalid.push(i); // still invalid until transitioned
                self.index.insert(addr, (set_idx as u32, i));
                return AllocOutcome::Evicted {
                    victim: victim_addr,
                    state,
                };
            }
            i = set.slots[i as usize].prev;
        }
        AllocOutcome::Stalled
    }

    /// All resident `(addr, state)` pairs (for verification).
    pub fn resident(&self) -> impl Iterator<Item = (Addr, LineState)> + '_ {
        self.sets
            .iter()
            .flat_map(|s| s.slots.iter().map(|l| (l.addr, l.state)))
    }

    /// Number of resident tags.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            lines: 4,
            associativity: 4,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.state(10), LineState::NotPresent);
        assert_eq!(c.allocate(10), AllocOutcome::Fresh);
        assert_eq!(c.state(10), LineState::Iv);
        c.set_state(10, LineState::V);
        assert!(c.state(10).readable());
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut c = small();
        for a in 0..4 {
            c.allocate(a);
            c.set_state(a, LineState::V);
        }
        // Touch 0 so 1 becomes LRU.
        c.touch(0);
        match c.allocate(100) {
            AllocOutcome::Evicted { victim, state } => {
                assert_eq!(victim, 1);
                assert_eq!(state, LineState::V);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(c.state(1), LineState::NotPresent);
        assert_eq!(c.state(100), LineState::Iv);
    }

    #[test]
    fn invalid_lines_are_preferred_victims() {
        let mut c = small();
        for a in 0..4 {
            c.allocate(a);
            c.set_state(a, LineState::V);
        }
        c.set_state(2, LineState::Iv);
        assert_eq!(c.allocate(100), AllocOutcome::Fresh);
        assert_eq!(c.state(2), LineState::NotPresent);
        assert_eq!(c.state(0), LineState::V);
    }

    #[test]
    fn revalidated_lines_are_not_reclaimed() {
        let mut c = small();
        for a in 0..4 {
            c.allocate(a);
            c.set_state(a, LineState::V);
        }
        // Invalidate 2, then revalidate it (e.g. refetched in place).
        c.set_state(2, LineState::Iv);
        c.set_state(2, LineState::V);
        c.touch(2);
        match c.allocate(100) {
            // Must evict the true LRU (0), not the revalidated 2.
            AllocOutcome::Evicted { victim, .. } => assert_eq!(victim, 0),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(c.state(2), LineState::V);
    }

    #[test]
    fn transient_lines_are_never_evicted() {
        let mut c = small();
        for a in 0..4 {
            c.allocate(a);
            c.set_state(a, LineState::RmIp);
        }
        assert_eq!(c.allocate(100), AllocOutcome::Stalled);
        c.set_state(3, LineState::V);
        match c.allocate(100) {
            AllocOutcome::Evicted { victim, .. } => assert_eq!(victim, 3),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn allocate_existing_is_already_resident() {
        let mut c = small();
        c.allocate(7);
        assert_eq!(c.allocate(7), AllocOutcome::AlreadyResident);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn set_mapping_partitions_addresses() {
        let mut c = Cache::new(CacheConfig {
            lines: 4,
            associativity: 2,
        });
        // Addresses 0 and 2 map to set 0; 1 and 3 to set 1.
        for a in [0u64, 2, 1, 3] {
            assert_eq!(c.allocate(a), AllocOutcome::Fresh);
            c.set_state(a, LineState::V);
        }
        // 4 maps to set 0 and must evict 0 or 2, not 1 or 3.
        match c.allocate(4) {
            AllocOutcome::Evicted { victim, .. } => assert!(victim == 0 || victim == 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resident_iterates_all_lines() {
        let mut c = small();
        c.allocate(1);
        c.allocate(2);
        c.set_state(2, LineState::E);
        let mut v: Vec<_> = c.resident().collect();
        v.sort_by_key(|&(a, _)| a);
        assert_eq!(v, vec![(1, LineState::Iv), (2, LineState::E)]);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn set_state_requires_residency() {
        let mut c = small();
        c.set_state(99, LineState::V);
    }

    #[test]
    fn paper_default_geometry() {
        let cfg = CacheConfig::paper_default();
        assert_eq!(cfg.lines, 2048);
        assert_eq!(cfg.sets(), 1);
    }

    #[test]
    fn streaming_far_beyond_capacity_is_stable() {
        // O(1) replacement must keep the books straight over many epochs.
        let mut c = Cache::new(CacheConfig {
            lines: 64,
            associativity: 64,
        });
        let mut evictions = 0;
        for a in 0..10_000u64 {
            match c.allocate(a) {
                AllocOutcome::Fresh => {}
                AllocOutcome::Evicted { .. } => evictions += 1,
                other => panic!("unexpected {other:?}"),
            }
            c.set_state(a, LineState::V);
        }
        assert_eq!(c.len(), 64);
        assert_eq!(evictions, 10_000 - 64);
        // The survivors are exactly the last 64 addresses.
        for a in 10_000 - 64..10_000 {
            assert_eq!(c.state(a), LineState::V, "addr {a}");
        }
    }

    #[test]
    fn lru_order_respected_under_mixed_touch_patterns() {
        let mut c = small();
        for a in 0..4 {
            c.allocate(a);
            c.set_state(a, LineState::V);
        }
        c.touch(1);
        c.touch(3);
        c.touch(0);
        // LRU order now: 2 (oldest), 1, 3, 0.
        for (new_addr, expected_victim) in [(10u64, 2u64), (11, 1), (12, 3)] {
            match c.allocate(new_addr) {
                AllocOutcome::Evicted { victim, .. } => assert_eq!(victim, expected_victim),
                other => panic!("{other:?}"),
            }
            c.set_state(new_addr, LineState::V);
        }
    }
}
