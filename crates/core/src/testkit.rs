//! A mock [`ProtoCtx`](crate::ctx::ProtoCtx) for driving protocols in
//! tests without the machine: zero-latency FIFO message delivery, plain
//! map-backed caches, and full logs of sends / completions / protocol
//! events. Public so downstream crates can unit-test custom [`Protocol`]
//! implementations the same way this crate tests its own.

use crate::ctx::{ProtoCtx, ProtoEvent};
use crate::msg::Msg;
use crate::protocol::Protocol;
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::{Cycle, FxHashMap};
use std::collections::VecDeque;

pub struct MockCtx {
    pub nodes: u32,
    pub now: Cycle,
    lines: FxHashMap<(NodeId, Addr), LineState>,
    queue: VecDeque<(NodeId, Msg)>,
    pub sent: Vec<(NodeId, Msg)>,
    pub completed: Vec<(NodeId, Addr, OpKind)>,
    pub events: Vec<ProtoEvent>,
}

impl MockCtx {
    pub fn new(nodes: u32) -> Self {
        Self {
            nodes,
            now: 0,
            lines: FxHashMap::default(),
            queue: VecDeque::new(),
            sent: Vec::new(),
            completed: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Begin a miss exactly like the machine: allocate the tag in the
    /// transient state, then let the protocol send its request.
    pub fn begin_miss(&mut self, p: &mut dyn Protocol, node: NodeId, addr: Addr, op: OpKind) {
        let st = match op {
            OpKind::Read => LineState::RmIp,
            OpKind::Write => LineState::WmIp,
        };
        self.lines.insert((node, addr), st);
        p.start_miss(self, node, addr, op);
    }

    /// Deliver queued messages (FIFO) until quiescent.
    pub fn run(&mut self, p: &mut dyn Protocol) {
        let mut steps = 0;
        while let Some((node, msg)) = self.queue.pop_front() {
            self.now += 1;
            p.handle(self, node, msg);
            steps += 1;
            assert!(steps < 100_000, "protocol livelock: messages never quiesce");
        }
    }

    /// Issue a read at `node`: hit if readable, else run the miss to
    /// completion. Panics if the miss never completes.
    pub fn read(&mut self, p: &mut dyn Protocol, node: NodeId, addr: Addr) {
        if self.line_state(node, addr).readable() {
            return;
        }
        let before = self.completed.len();
        self.begin_miss(p, node, addr, OpKind::Read);
        self.run(p);
        assert!(
            self.completed[before..].contains(&(node, addr, OpKind::Read)),
            "read miss by {node} for {addr:#x} did not complete; completions: {:?}",
            &self.completed[before..]
        );
        assert!(
            self.line_state(node, addr).readable(),
            "line not readable after read completion"
        );
    }

    /// Issue a write at `node`; runs any required transaction to completion.
    pub fn write(&mut self, p: &mut dyn Protocol, node: NodeId, addr: Addr) {
        if self.line_state(node, addr).writable() {
            return;
        }
        let before = self.completed.len();
        self.begin_miss(p, node, addr, OpKind::Write);
        self.run(p);
        assert!(
            self.completed[before..].contains(&(node, addr, OpKind::Write)),
            "write miss by {node} for {addr:#x} did not complete"
        );
        assert_eq!(
            self.line_state(node, addr),
            LineState::E,
            "writer must end exclusive"
        );
    }

    /// Evict the line at `(node, addr)` exactly like the machine: drop the
    /// tag first, then notify the protocol, then drain resulting traffic.
    pub fn evict(&mut self, p: &mut dyn Protocol, node: NodeId, addr: Addr) {
        let st = self
            .lines
            .remove(&(node, addr))
            .expect("evicting a non-resident line");
        assert!(
            matches!(st, LineState::V | LineState::E),
            "only stable lines are evictable, got {st:?}"
        );
        p.evict(self, node, addr, st);
        self.run(p);
    }

    /// States of every node's copy of `addr` (length = `nodes`).
    pub fn states_of(&self, addr: Addr) -> Vec<LineState> {
        (0..self.nodes).map(|n| self.line_state(n, addr)).collect()
    }

    /// Nodes currently holding a readable copy of `addr`.
    pub fn holders(&self, addr: Addr) -> Vec<NodeId> {
        (0..self.nodes)
            .filter(|&n| self.line_state(n, addr).readable())
            .collect()
    }

    /// Assert the single-writer/multiple-reader invariant for `addr`.
    pub fn assert_swmr(&self, addr: Addr) {
        let exclusive: Vec<NodeId> = (0..self.nodes)
            .filter(|&n| self.line_state(n, addr) == LineState::E)
            .collect();
        let valid = self.holders(addr);
        if !exclusive.is_empty() {
            assert_eq!(
                valid.len(),
                1,
                "E copy at {exclusive:?} coexists with V copies {valid:?}"
            );
        }
        assert!(exclusive.len() <= 1, "two exclusive copies: {exclusive:?}");
    }

    /// Messages sent since index `mark`.
    pub fn sent_since(&self, mark: usize) -> &[(NodeId, Msg)] {
        &self.sent[mark..]
    }

    /// Critical-path messages sent since `mark`: excludes the bookkeeping
    /// `FillAck` (the paper's Table 1 counts the messages a miss waits on).
    pub fn critical_since(&self, mark: usize) -> usize {
        self.sent[mark..]
            .iter()
            .filter(|(_, m)| !matches!(m.kind, crate::msg::MsgKind::FillAck))
            .count()
    }

    pub fn mark(&self) -> usize {
        self.sent.len()
    }
}

impl ProtoCtx for MockCtx {
    fn now(&self) -> Cycle {
        self.now
    }

    fn num_nodes(&self) -> u32 {
        self.nodes
    }

    fn home_of(&self, addr: Addr) -> NodeId {
        (addr % self.nodes as u64) as NodeId
    }

    fn send(&mut self, dst: NodeId, msg: Msg) {
        self.sent.push((dst, msg.clone()));
        self.queue.push_back((dst, msg));
    }

    fn redeliver(&mut self, node: NodeId, msg: Msg, _delay: Cycle) {
        // Local wake-up: not network traffic, so not logged in `sent`.
        self.queue.push_back((node, msg));
    }

    fn occupy(&mut self, _node: NodeId, cycles: Cycle) {
        self.now += cycles;
    }

    fn line_state(&self, node: NodeId, addr: Addr) -> LineState {
        self.lines
            .get(&(node, addr))
            .copied()
            .unwrap_or(LineState::NotPresent)
    }

    fn set_line_state(&mut self, node: NodeId, addr: Addr, state: LineState) {
        assert!(
            self.lines.contains_key(&(node, addr)),
            "set_line_state on non-resident line ({node}, {addr:#x})"
        );
        self.lines.insert((node, addr), state);
    }

    fn complete(&mut self, node: NodeId, addr: Addr, op: OpKind) {
        self.completed.push((node, addr, op));
    }

    fn note(&mut self, event: ProtoEvent) {
        self.events.push(event);
    }
}
