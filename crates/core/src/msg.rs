//! The protocol message vocabulary.
//!
//! One shared enum covers all nine protocols; each protocol uses a subset.
//! Every message knows whether it is bound for a **directory controller**
//! (charged the 5-cycle memory access latency at the home) or a **cache
//! controller** (charged the 1-cycle cache latency), and how many bytes it
//! occupies on the wire (control header vs. header + data block).

use crate::types::{Addr, NodeId, OpKind};
use dirtree_sim::metrics::MsgClass;

/// A protocol message in flight.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Msg {
    /// Block this message concerns.
    pub addr: Addr,
    /// Sender (acknowledgements go back to `src` unless the kind says
    /// otherwise).
    pub src: NodeId,
    pub kind: MsgKind,
}

impl Msg {
    /// The message with every node id (sender and kind payload) mapped
    /// through `perm` (`perm[old] = new`). See [`MsgKind::relabeled`].
    pub fn relabeled(&self, perm: &[NodeId]) -> Msg {
        Msg {
            addr: self.addr,
            src: perm[self.src as usize],
            kind: self.kind.relabeled(perm),
        }
    }
}

/// Every message kind used by any of the nine protocols.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MsgKind {
    // ---- bit-map family (full-map, Dir_iNB, Dir_iB, LimitLESS, DirTree) ----
    /// Cache → home: read miss request.
    ReadReq { requester: NodeId },
    /// Cache → home: write miss (or upgrade) request.
    WriteReq { requester: NodeId },
    /// Home → cache: read data. `adopt` carries the Dir_iTree_k pointer
    /// hand-off: the listed nodes become children of the requester (empty
    /// for non-tree protocols).
    ReadReply { adopt: Vec<NodeId> },
    /// Home → cache: write grant + data (sent after invalidations finish).
    /// `kill_self_subtree` tells a writer that was itself a recorded tree
    /// root to invalidate its own children locally before completing
    /// (Dir_iTree_k only; the home skips sending the writer an `Inv` it
    /// would only bounce back).
    WriteReply { kill_self_subtree: bool },
    /// Invalidate. Acknowledge to `src`. In Dir_iTree_k, `also` carries the
    /// paired odd-numbered root that this (even-numbered) root must also
    /// invalidate on the home's behalf. `from_dir` is true when the home
    /// directory originated the message (the ack must go to the directory
    /// controller, not to a cache collector on the same node).
    Inv {
        also: Option<NodeId>,
        from_dir: bool,
    },
    /// Invalidation acknowledgement (aggregated: one per subtree). `dir`
    /// mirrors the `from_dir` flag of the `Inv` being answered.
    InvAck { dir: bool },
    /// Silent subtree invalidation on replacement; never acknowledged.
    ReplaceInv,
    /// Optional (ablation E12) replacement notification to the home: clear
    /// any directory pointer at the evicting node.
    ReplNotify,
    /// Update-protocol variant: carry a freshly-written block down the
    /// sharing trees (paired like `Inv`); copies stay valid.
    Update {
        also: Option<NodeId>,
        from_dir: bool,
    },
    /// Acknowledgement for [`MsgKind::Update`] (aggregated per subtree).
    UpdateAck { dir: bool },
    /// Update-protocol write grant: data + any tree hand-off for a writer
    /// that was not yet recorded (mirrors `ReadReply`'s `adopt`).
    UpdateGrant { adopt: Vec<NodeId> },
    /// Home → exclusive owner: write the block back for a pending `for_op`
    /// by `requester` (downgrade to V on read, invalidate on write).
    WbReq { for_op: OpKind, requester: NodeId },
    /// Owner → home: writeback data in reply to [`MsgKind::WbReq`].
    WbData { for_op: OpKind, requester: NodeId },
    /// Cache → home: eviction writeback of an exclusive line (no reply).
    WbEvict,
    /// Requester → home: a read fill landed; the home may retire the read
    /// transaction. Off the processor's critical path (the miss completes
    /// at the fill); exists to close the fill/invalidation race — see
    /// DESIGN.md §6.
    FillAck,

    // ---- snooping MSI (bus fabric) ----
    /// Broadcast: a reader wants the block (owners downgrade and flush).
    BusRead { requester: NodeId },
    /// Broadcast: a writer wants exclusivity (everyone else invalidates).
    BusReadX { requester: NodeId },
    /// Memory (or the previous owner) → requester: the data response.
    BusData { exclusive: bool },
    /// Home self-message: the snoop window elapsed; supply the data.
    BusWindow { requester: NodeId, exclusive: bool },

    // ---- singly linked list ----
    /// Home → old head: supply data to `requester`, who becomes the new
    /// head and will point at you.
    SllSupply { requester: NodeId },
    /// Old head → requester: data (requester sets `next = src`).
    SllData,
    /// Chain invalidation for a write by `writer`; forwarded `next`-wise.
    SllInv { writer: NodeId },
    /// Tail → home: the chain is fully invalidated.
    SllChainDone { writer: NodeId },
    /// Dead old head → home: cannot supply; home must serve `requester`
    /// from memory.
    SllSupplyFail { requester: NodeId },

    // ---- SCI doubly linked list ----
    /// Home → requester: read response. If `old_head` is `None` the data
    /// comes straight from memory; otherwise attach to the old head.
    SciReadResp { old_head: Option<NodeId> },
    /// Home → writer: write response (same shape as the read response; the
    /// writer purges the list afterwards).
    SciWriteResp { old_head: Option<NodeId> },
    /// New head → old head: set `prev = src`, send me the data.
    SciAttachReq,
    /// Old head → new head: data + attach acknowledgement.
    SciAttachResp,
    /// Writer → successor: invalidate yourself, reply with your `next`.
    SciPurgeReq,
    /// Purged node → writer: done; continue with `next`.
    SciPurgeResp { next: Option<NodeId> },
    /// Writer → home: purge finished (home can retire the transaction).
    SciPurgeDone { writer: NodeId },
    /// Roll-out: tell `src`'s predecessor its new successor.
    SciUnlinkPrev { new_next: Option<NodeId> },
    /// Roll-out: tell `src`'s successor its new predecessor.
    SciUnlinkNext { new_prev: Option<NodeId> },
    /// Evicting head → home: the list head changed.
    SciNewHead { new_head: Option<NodeId> },

    // ---- STP (scalable tree protocol) ----
    /// Home → requester: data + the tree position to attach under
    /// (`None` = you are the root).
    StpJoinResp { parent: Option<NodeId> },
    /// Requester → parent: record me as your child.
    StpAttach,
    /// Parent → requester: attach acknowledged (miss completes).
    StpAttachAck,
    /// Evicted node → home: leave the tree (triggers repair).
    StpLeave,
    /// Home → mover: take over the place of `replacing` (adopting its
    /// children and parent).
    StpMove {
        replacing: NodeId,
        new_parent: Option<NodeId>,
        new_children: Vec<NodeId>,
    },
    /// Mover (or home) → affected node: children-map fix-up (`remove`,
    /// then `add`). `from_home` routes the ack to the home's directory
    /// controller rather than to the mover's repair collector.
    StpFixup {
        remove: Option<NodeId>,
        add: Option<NodeId>,
        from_home: bool,
    },
    /// Fix-up applied; `dir` routes the ack to the home's controller when
    /// the home itself issued the fix-up.
    StpFixupAck { dir: bool },
    /// Mover → home: the repair finished; the leave transaction may close.
    StpLeaveDone,

    // ---- SCI tree extension (AVL) ----
    /// Hop-by-hop descent toward the insertion point for `requester`;
    /// `path` is the remaining route (the final node supplies the data).
    SctDescend {
        requester: NodeId,
        path: Vec<NodeId>,
    },
    /// Insertion-point parent → requester: data + inserted.
    SctInsertResp,
    /// Rotation / deletion pointer fix-up: the node's new (absolute)
    /// children set. Acknowledged to the home with `StpFixupAck`.
    SctFixup { children: Vec<NodeId> },
    /// Evicted node → home: AVL delete me (triggers fix-up traffic).
    SctLeave,
}

impl MsgKind {
    /// Does this message carry the data block (header + block bytes on the
    /// wire) rather than just a control header?
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            MsgKind::ReadReply { .. }
                | MsgKind::WriteReply { .. }
                | MsgKind::WbData { .. }
                | MsgKind::WbEvict
                | MsgKind::SllData
                | MsgKind::BusData { .. }
                | MsgKind::SciReadResp { .. }
                | MsgKind::SciWriteResp { .. }
                | MsgKind::SciAttachResp
                | MsgKind::StpJoinResp { .. }
                | MsgKind::SctInsertResp
                | MsgKind::Update { .. }
                | MsgKind::UpdateGrant { .. }
        )
    }

    /// Is this message handled by the home's directory controller (true) or
    /// by a cache controller (false)? Directory-bound messages are charged
    /// the memory access latency.
    pub fn to_directory(&self) -> bool {
        matches!(
            self,
            MsgKind::ReadReq { .. }
                | MsgKind::WriteReq { .. }
                | MsgKind::WbData { .. }
                | MsgKind::WbEvict
                | MsgKind::FillAck
                | MsgKind::SllChainDone { .. }
                | MsgKind::SllSupplyFail { .. }
                | MsgKind::SciPurgeDone { .. }
                | MsgKind::SciNewHead { .. }
                | MsgKind::StpLeave
                | MsgKind::StpLeaveDone
                | MsgKind::SctLeave
                | MsgKind::ReplNotify
        ) || matches!(
            self,
            MsgKind::InvAck { dir: true }
                | MsgKind::StpFixupAck { dir: true }
                | MsgKind::UpdateAck { dir: true }
        )
    }

    /// Snoop broadcasts are handled by a dedicated snoop port (dual-tag
    /// caches): the machine processes them at delivery without queueing
    /// behind the regular controller, so invalidations retire within the
    /// snoop window even under backlog.
    pub fn is_snoop(&self) -> bool {
        matches!(self, MsgKind::BusRead { .. } | MsgKind::BusReadX { .. })
    }

    /// Wire size in bytes given the control-header and block sizes.
    pub fn wire_bytes(&self, header: u32, block: u32) -> u32 {
        if self.carries_data() {
            header + block
        } else {
            header
        }
    }

    /// Coarse observability class ([`MsgClass`]) for the metrics layer.
    ///
    /// This is the single mapping from the full 40-kind wire vocabulary
    /// onto the paper's 10-class accounting; every protocol's messages
    /// classify through it (the machine's shared send hook calls it), so
    /// no protocol carries its own instrumentation.
    pub fn class(&self) -> MsgClass {
        match self {
            // Read-miss requests, including their protocol-specific
            // forwards (bus snoop reads, list supplies, tree descents).
            MsgKind::ReadReq { .. }
            | MsgKind::BusRead { .. }
            | MsgKind::SllSupply { .. }
            | MsgKind::SciAttachReq
            | MsgKind::SctDescend { .. } => MsgClass::ReadReq,
            // Write-miss / upgrade requests.
            MsgKind::WriteReq { .. } | MsgKind::BusReadX { .. } => MsgClass::WriteReq,
            // Data replies that also hand off sharing-tree pointers.
            MsgKind::ReadReply { adopt } | MsgKind::UpdateGrant { adopt } if !adopt.is_empty() => {
                MsgClass::Adopt
            }
            MsgKind::ReadReply { .. }
            | MsgKind::UpdateGrant { .. }
            | MsgKind::WriteReply { .. }
            | MsgKind::BusData { .. }
            | MsgKind::SllData
            | MsgKind::SciReadResp { .. }
            | MsgKind::SciWriteResp { .. }
            | MsgKind::SciAttachResp
            | MsgKind::StpJoinResp { .. }
            | MsgKind::SctInsertResp => MsgClass::DataReply,
            // The write-propagation wave (invalidate or update flavor).
            MsgKind::Inv { .. }
            | MsgKind::Update { .. }
            | MsgKind::SllInv { .. }
            | MsgKind::SciPurgeReq => MsgClass::Inv,
            MsgKind::InvAck { .. }
            | MsgKind::UpdateAck { .. }
            | MsgKind::SllChainDone { .. }
            | MsgKind::SciPurgeResp { .. }
            | MsgKind::SciPurgeDone { .. }
            | MsgKind::StpAttachAck
            | MsgKind::StpFixupAck { .. } => MsgClass::Ack,
            MsgKind::ReplaceInv | MsgKind::ReplNotify => MsgClass::ReplaceInv,
            MsgKind::WbReq { .. } | MsgKind::WbData { .. } | MsgKind::WbEvict => {
                MsgClass::Writeback
            }
            MsgKind::FillAck => MsgClass::FillAck,
            // Sharing-structure management and fabric bookkeeping.
            MsgKind::BusWindow { .. }
            | MsgKind::SllSupplyFail { .. }
            | MsgKind::SciUnlinkPrev { .. }
            | MsgKind::SciUnlinkNext { .. }
            | MsgKind::SciNewHead { .. }
            | MsgKind::StpAttach
            | MsgKind::StpLeave
            | MsgKind::StpMove { .. }
            | MsgKind::StpFixup { .. }
            | MsgKind::StpLeaveDone
            | MsgKind::SctFixup { .. }
            | MsgKind::SctLeave => MsgClass::Mgmt,
        }
    }

    /// The same message with every embedded node id mapped through `perm`
    /// (`perm[old] = new`); addresses and flags are untouched. This is the
    /// message half of the model checker's processor-permutation symmetry:
    /// relabeling a state must relabel the in-flight traffic too.
    pub fn relabeled(&self, perm: &[NodeId]) -> MsgKind {
        let p = |n: NodeId| perm[n as usize];
        let po = |n: Option<NodeId>| n.map(|n| perm[n as usize]);
        let pv = |v: &Vec<NodeId>| v.iter().map(|&n| perm[n as usize]).collect();
        match self {
            MsgKind::ReadReq { requester } => MsgKind::ReadReq {
                requester: p(*requester),
            },
            MsgKind::WriteReq { requester } => MsgKind::WriteReq {
                requester: p(*requester),
            },
            MsgKind::ReadReply { adopt } => MsgKind::ReadReply { adopt: pv(adopt) },
            MsgKind::Inv { also, from_dir } => MsgKind::Inv {
                also: po(*also),
                from_dir: *from_dir,
            },
            MsgKind::Update { also, from_dir } => MsgKind::Update {
                also: po(*also),
                from_dir: *from_dir,
            },
            MsgKind::UpdateGrant { adopt } => MsgKind::UpdateGrant { adopt: pv(adopt) },
            MsgKind::WbReq { for_op, requester } => MsgKind::WbReq {
                for_op: *for_op,
                requester: p(*requester),
            },
            MsgKind::WbData { for_op, requester } => MsgKind::WbData {
                for_op: *for_op,
                requester: p(*requester),
            },
            MsgKind::BusRead { requester } => MsgKind::BusRead {
                requester: p(*requester),
            },
            MsgKind::BusReadX { requester } => MsgKind::BusReadX {
                requester: p(*requester),
            },
            MsgKind::BusWindow {
                requester,
                exclusive,
            } => MsgKind::BusWindow {
                requester: p(*requester),
                exclusive: *exclusive,
            },
            MsgKind::SllSupply { requester } => MsgKind::SllSupply {
                requester: p(*requester),
            },
            MsgKind::SllInv { writer } => MsgKind::SllInv { writer: p(*writer) },
            MsgKind::SllChainDone { writer } => MsgKind::SllChainDone { writer: p(*writer) },
            MsgKind::SllSupplyFail { requester } => MsgKind::SllSupplyFail {
                requester: p(*requester),
            },
            MsgKind::SciReadResp { old_head } => MsgKind::SciReadResp {
                old_head: po(*old_head),
            },
            MsgKind::SciWriteResp { old_head } => MsgKind::SciWriteResp {
                old_head: po(*old_head),
            },
            MsgKind::SciPurgeResp { next } => MsgKind::SciPurgeResp { next: po(*next) },
            MsgKind::SciPurgeDone { writer } => MsgKind::SciPurgeDone { writer: p(*writer) },
            MsgKind::SciUnlinkPrev { new_next } => MsgKind::SciUnlinkPrev {
                new_next: po(*new_next),
            },
            MsgKind::SciUnlinkNext { new_prev } => MsgKind::SciUnlinkNext {
                new_prev: po(*new_prev),
            },
            MsgKind::SciNewHead { new_head } => MsgKind::SciNewHead {
                new_head: po(*new_head),
            },
            MsgKind::StpJoinResp { parent } => MsgKind::StpJoinResp {
                parent: po(*parent),
            },
            MsgKind::StpMove {
                replacing,
                new_parent,
                new_children,
            } => MsgKind::StpMove {
                replacing: p(*replacing),
                new_parent: po(*new_parent),
                new_children: pv(new_children),
            },
            MsgKind::StpFixup {
                remove,
                add,
                from_home,
            } => MsgKind::StpFixup {
                remove: po(*remove),
                add: po(*add),
                from_home: *from_home,
            },
            MsgKind::SctDescend { requester, path } => MsgKind::SctDescend {
                requester: p(*requester),
                path: pv(path),
            },
            MsgKind::SctFixup { children } => MsgKind::SctFixup {
                children: pv(children),
            },
            // Kinds with no embedded node ids.
            MsgKind::WriteReply { .. }
            | MsgKind::InvAck { .. }
            | MsgKind::UpdateAck { .. }
            | MsgKind::ReplaceInv
            | MsgKind::ReplNotify
            | MsgKind::WbEvict
            | MsgKind::FillAck
            | MsgKind::BusData { .. }
            | MsgKind::SllData
            | MsgKind::SciAttachReq
            | MsgKind::SciAttachResp
            | MsgKind::SciPurgeReq
            | MsgKind::StpAttach
            | MsgKind::StpAttachAck
            | MsgKind::StpLeave
            | MsgKind::StpFixupAck { .. }
            | MsgKind::StpLeaveDone
            | MsgKind::SctInsertResp
            | MsgKind::SctLeave => self.clone(),
        }
    }

    /// Short label for statistics.
    pub fn label(&self) -> &'static str {
        match self {
            MsgKind::ReadReq { .. } => "read_req",
            MsgKind::WriteReq { .. } => "write_req",
            MsgKind::ReadReply { .. } => "read_reply",
            MsgKind::WriteReply { .. } => "write_reply",
            MsgKind::Inv { .. } => "inv",
            MsgKind::InvAck { .. } => "inv_ack",
            MsgKind::ReplaceInv => "replace_inv",
            MsgKind::ReplNotify => "repl_notify",
            MsgKind::Update { .. } => "update",
            MsgKind::UpdateAck { .. } => "update_ack",
            MsgKind::UpdateGrant { .. } => "update_grant",
            MsgKind::WbReq { .. } => "wb_req",
            MsgKind::WbData { .. } => "wb_data",
            MsgKind::WbEvict => "wb_evict",
            MsgKind::FillAck => "fill_ack",
            MsgKind::BusRead { .. } => "bus_read",
            MsgKind::BusReadX { .. } => "bus_readx",
            MsgKind::BusData { .. } => "bus_data",
            MsgKind::BusWindow { .. } => "bus_window",
            MsgKind::SllSupply { .. } => "sll_supply",
            MsgKind::SllData => "sll_data",
            MsgKind::SllInv { .. } => "sll_inv",
            MsgKind::SllChainDone { .. } => "sll_chain_done",
            MsgKind::SllSupplyFail { .. } => "sll_supply_fail",
            MsgKind::SciReadResp { .. } => "sci_read_resp",
            MsgKind::SciWriteResp { .. } => "sci_write_resp",
            MsgKind::SciAttachReq => "sci_attach_req",
            MsgKind::SciAttachResp => "sci_attach_resp",
            MsgKind::SciPurgeReq => "sci_purge_req",
            MsgKind::SciPurgeResp { .. } => "sci_purge_resp",
            MsgKind::SciPurgeDone { .. } => "sci_purge_done",
            MsgKind::SciUnlinkPrev { .. } => "sci_unlink_prev",
            MsgKind::SciUnlinkNext { .. } => "sci_unlink_next",
            MsgKind::SciNewHead { .. } => "sci_new_head",
            MsgKind::StpJoinResp { .. } => "stp_join_resp",
            MsgKind::StpAttach => "stp_attach",
            MsgKind::StpAttachAck => "stp_attach_ack",
            MsgKind::StpLeave => "stp_leave",
            MsgKind::StpMove { .. } => "stp_move",
            MsgKind::StpFixup { .. } => "stp_fixup",
            MsgKind::StpFixupAck { .. } => "stp_fixup_ack",
            MsgKind::StpLeaveDone => "stp_leave_done",
            MsgKind::SctDescend { .. } => "sct_descend",
            MsgKind::SctInsertResp => "sct_insert_resp",
            MsgKind::SctFixup { .. } => "sct_fixup",
            MsgKind::SctLeave => "sct_leave",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_messages_are_bigger() {
        let data = MsgKind::ReadReply { adopt: vec![] };
        let ctrl = MsgKind::InvAck { dir: false };
        assert_eq!(data.wire_bytes(8, 8), 16);
        assert_eq!(ctrl.wire_bytes(8, 8), 8);
    }

    #[test]
    fn requests_go_to_directory_and_replies_to_caches() {
        assert!(MsgKind::ReadReq { requester: 1 }.to_directory());
        assert!(MsgKind::WriteReq { requester: 1 }.to_directory());
        assert!(MsgKind::InvAck { dir: true }.to_directory());
        assert!(!MsgKind::InvAck { dir: false }.to_directory());
        assert!(!MsgKind::ReadReply { adopt: vec![] }.to_directory());
        assert!(!MsgKind::Inv {
            also: None,
            from_dir: true
        }
        .to_directory());
        assert!(!MsgKind::SciPurgeReq.to_directory());
    }

    #[test]
    fn labels_are_distinct_for_core_kinds() {
        let kinds = [
            MsgKind::ReadReq { requester: 0 },
            MsgKind::WriteReq { requester: 0 },
            MsgKind::ReadReply { adopt: vec![] },
            MsgKind::WriteReply {
                kill_self_subtree: false,
            },
            MsgKind::Inv {
                also: None,
                from_dir: true,
            },
            MsgKind::InvAck { dir: true },
            MsgKind::ReplaceInv,
        ];
        let labels: std::collections::HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn classes_follow_table1_accounting() {
        assert_eq!(MsgKind::ReadReq { requester: 1 }.class(), MsgClass::ReadReq);
        assert_eq!(
            MsgKind::WriteReq { requester: 1 }.class(),
            MsgClass::WriteReq
        );
        // A read reply without tree hand-off is plain data; with a
        // non-empty adopt list it is the Dir_iTree_k adoption message.
        assert_eq!(
            MsgKind::ReadReply { adopt: vec![] }.class(),
            MsgClass::DataReply
        );
        assert_eq!(
            MsgKind::ReadReply { adopt: vec![3, 5] }.class(),
            MsgClass::Adopt
        );
        assert_eq!(
            MsgKind::UpdateGrant { adopt: vec![3] }.class(),
            MsgClass::Adopt
        );
        // Both ablation flavors of replacement traffic share a class, so
        // the silent-replacement claim ("zero replacement messages reach
        // the home") is one per-class to_dir assertion.
        assert_eq!(MsgKind::ReplaceInv.class(), MsgClass::ReplaceInv);
        assert_eq!(MsgKind::ReplNotify.class(), MsgClass::ReplaceInv);
        assert_eq!(
            MsgKind::Inv {
                also: None,
                from_dir: true
            }
            .class(),
            MsgClass::Inv
        );
        assert_eq!(MsgKind::SllInv { writer: 0 }.class(), MsgClass::Inv);
        assert_eq!(MsgKind::InvAck { dir: true }.class(), MsgClass::Ack);
        assert_eq!(MsgKind::FillAck.class(), MsgClass::FillAck);
        assert_eq!(MsgKind::WbEvict.class(), MsgClass::Writeback);
        assert_eq!(MsgKind::StpLeave.class(), MsgClass::Mgmt);
    }

    #[test]
    fn write_reply_carries_data() {
        assert!(MsgKind::WriteReply {
            kill_self_subtree: false
        }
        .carries_data());
        assert!(MsgKind::WbData {
            for_op: OpKind::Read,
            requester: 0
        }
        .carries_data());
        assert!(!MsgKind::ReplaceInv.carries_data());
    }
}
