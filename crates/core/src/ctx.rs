//! The context through which a protocol acts on the simulated machine.
//!
//! Protocols are pure message-driven state machines; everything with a cost
//! — sending messages, occupying the memory controller, completing a
//! processor's access — goes through [`ProtoCtx`], implemented by the real
//! machine in `dirtree-machine` and by a mock in unit tests.

use crate::msg::Msg;
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::Cycle;

/// Observable protocol-level happenings, counted by the machine's stats.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtoEvent {
    /// A sharer's copy was invalidated by a write.
    Invalidation,
    /// A copy was killed by a replacement (`Replace_INV` subtree kill, list
    /// unlink invalidation, Dir_iNB pointer-eviction, ...).
    ReplacementInvalidation,
    /// A LimitLESS-style software trap ran at the home.
    SoftwareTrap,
    /// A Dir_iB broadcast was issued.
    Broadcast,
    /// Two equal-level trees were merged under a new requester (Dir_iTree_k
    /// read-miss case 3).
    TreeMerge,
    /// A single lowest-level tree was pushed down under a new requester
    /// (Dir_iTree_k read-miss case 4).
    TreePushDown,
    /// The adaptive hybrid's home-side detector classified one write
    /// interval of a block ([`crate::adapt`]).
    PatternSample(crate::adapt::SharingPattern),
    /// The adaptive hybrid flipped a block's write policy.
    ModeFlip {
        /// `true`: invalidate → update; `false`: update → invalidate.
        to_update: bool,
    },
}

/// Machine services available to a protocol handler.
///
/// Handlers run *after* their controller occupancy has elapsed, so `now()`
/// already includes the memory / cache access latency and sends depart at
/// `now()`.
pub trait ProtoCtx {
    /// Current simulated cycle.
    fn now(&self) -> Cycle;

    /// Number of processors in the machine.
    fn num_nodes(&self) -> u32;

    /// Home memory module for a block (address-interleaved).
    fn home_of(&self, addr: Addr) -> NodeId;

    /// Send `msg` to `dst` over the network (arrival is scheduled by the
    /// machine; wire size and contention are derived from the message).
    fn send(&mut self, dst: NodeId, msg: Msg);

    /// Deliver `msg` to every node except the sender. On a bus fabric this
    /// costs a single bus transaction observed simultaneously by all
    /// snoopers; elsewhere it expands to unicasts. Returns the cycle by
    /// which every recipient has the message (so callers can anchor
    /// snoop-window timing to the actual delivery, not the send). The
    /// default expansion suits mocks, whose delivery is immediate.
    ///
    /// The original message is moved into the final send rather than
    /// cloned once more — broadcast payloads that carry heap data (adopt
    /// lists) would otherwise allocate per recipient on the hot path.
    fn broadcast(&mut self, msg: Msg) -> Cycle {
        let last = (0..self.num_nodes()).rev().find(|&d| d != msg.src);
        for dst in 0..self.num_nodes() {
            if dst != msg.src && Some(dst) != last {
                self.send(dst, msg.clone());
            }
        }
        if let Some(dst) = last {
            self.send(dst, msg);
        }
        self.now()
    }

    /// Re-enqueue `msg` at `node`'s controller after `delay` cycles without
    /// network traffic — used to wake requests deferred by per-block
    /// transaction serialization.
    fn redeliver(&mut self, node: NodeId, msg: Msg, delay: Cycle);

    /// Extend the current handler's controller occupancy (e.g. LimitLESS
    /// software traps, extra directory memory accesses).
    fn occupy(&mut self, node: NodeId, cycles: Cycle);

    /// State of a line in `node`'s cache (`NotPresent` if no tag).
    fn line_state(&self, node: NodeId, addr: Addr) -> LineState;

    /// Set the state of a *resident* line in `node`'s cache.
    fn set_line_state(&mut self, node: NodeId, addr: Addr, state: LineState);

    /// The processor's outstanding access at `node` for `addr` is resolved;
    /// the machine schedules the fill/completion.
    fn complete(&mut self, node: NodeId, addr: Addr, op: OpKind);

    /// Count a protocol-level event.
    fn note(&mut self, event: ProtoEvent);
}
