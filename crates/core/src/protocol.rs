//! The [`Protocol`] trait and the protocol registry.

use crate::ctx::ProtoCtx;
use crate::msg::Msg;
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::Cycle;

/// Tunable constants shared by protocol implementations.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolParams {
    /// LimitLESS software-handler occupancy per trap, in cycles. Chaiken et
    /// al. report full-map-emulation traps of a few tens of cycles on
    /// Alewife; 40 is our default.
    pub sw_trap_cycles: Cycle,
    /// Dir_iTree_k: even-numbered roots forward the invalidation to their
    /// paired odd-numbered roots (the paper's optimization). Disabling it
    /// makes the home send every root its own invalidation (ablation E13).
    pub dir_tree_pairing: bool,
    /// Dir_iTree_k: replacements silently kill the subtree with
    /// `Replace_INV` (the paper's policy). When false, the evicting node
    /// additionally notifies the home, which clears a matching root pointer
    /// (ablation E12).
    pub dir_tree_silent_replace: bool,
    /// DirTreeAdaptive: per-block pattern score at which a block flips to
    /// update mode (Schmitt trigger upper threshold).
    pub adapt_flip_up: i32,
    /// DirTreeAdaptive: per-block pattern score at which an update-mode
    /// block flips back to invalidate mode (Schmitt trigger lower
    /// threshold). Must be below `adapt_flip_up` or the detector flaps.
    pub adapt_flip_down: i32,
    /// DirTreeAdaptive: pattern score saturation bound (scores are clamped
    /// to `[-adapt_saturation, +adapt_saturation]` so a long-established
    /// pattern can still be unlearned in bounded time).
    pub adapt_saturation: i32,
}

impl ProtocolParams {
    /// Do the adaptive-protocol fields differ from their defaults? Sweep
    /// cache keys and config fingerprints only include them when they do,
    /// so records written before the adaptive protocol existed keep their
    /// identity (same conditional-extension idiom as the VC fields).
    pub fn adapt_nondefault(&self) -> bool {
        self.adapt_flip_up != 2 || self.adapt_flip_down != -2 || self.adapt_saturation != 4
    }
}

impl Default for ProtocolParams {
    fn default() -> Self {
        Self {
            sw_trap_cycles: 40,
            dir_tree_pairing: true,
            dir_tree_silent_replace: true,
            adapt_flip_up: 2,
            adapt_flip_down: -2,
            adapt_saturation: 4,
        }
    }
}

/// Which coherence protocol a machine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Dir_nNB full bit-map directory.
    FullMap,
    /// Dir_iNB: `i` pointers, evict-a-pointer on overflow.
    LimitedNB { pointers: u32 },
    /// Dir_iB: `i` pointers, broadcast invalidation after overflow.
    LimitedB { pointers: u32 },
    /// LimitLESS_i: `i` hardware pointers, software-extended overflow.
    LimitLess { pointers: u32 },
    /// Stanford singly-linked-list protocol (Dir₁Tree₁, forward only).
    SinglyList,
    /// IEEE 1596 SCI doubly-linked list (Dir₁Tree₁).
    Sci,
    /// Scalable Tree Protocol with `arity`-ary balanced trees (Dir₂Tree_k).
    Stp { arity: u32 },
    /// SCI tree extension P1596.2 (AVL-balanced binary tree, Dir₂Tree₂).
    SciTree,
    /// The paper's contribution: Dir_iTree_k with `pointers` directory
    /// pointers and `arity`-ary trees.
    DirTree { pointers: u32, arity: u32 },
    /// Snooping MSI for the bus fabric (the §1 baseline).
    Snoop,
    /// Extension: Dir_iTree_k with *update* writes instead of
    /// invalidations (§3 mentions the option; the paper evaluates only
    /// the invalidation variant).
    DirTreeUpdate { pointers: u32, arity: u32 },
    /// Extension: the hybrid of the title — Dir_iTree_k with a per-block
    /// sharing-pattern detector at the home that flips individual blocks
    /// between invalidate and update write policy ([`crate::adapt`]).
    DirTreeAdaptive { pointers: u32, arity: u32 },
}

impl ProtocolKind {
    /// The short label used in the paper's figures: `fm`, `L1..L8` for
    /// Dir_iNB and bare `1..8` for Dir_iTree₂.
    pub fn figure_label(&self) -> String {
        match self {
            ProtocolKind::FullMap => "fm".into(),
            ProtocolKind::LimitedNB { pointers } => format!("L{pointers}"),
            ProtocolKind::LimitedB { pointers } => format!("B{pointers}"),
            ProtocolKind::LimitLess { pointers } => format!("LL{pointers}"),
            ProtocolKind::SinglyList => "sll".into(),
            ProtocolKind::Sci => "sci".into(),
            ProtocolKind::Stp { .. } => "stp".into(),
            ProtocolKind::SciTree => "scit".into(),
            ProtocolKind::DirTree { pointers, .. } => format!("{pointers}"),
            ProtocolKind::DirTreeUpdate { pointers, .. } => format!("U{pointers}"),
            ProtocolKind::DirTreeAdaptive { pointers, .. } => format!("A{pointers}"),
            ProtocolKind::Snoop => "snp".into(),
        }
    }

    /// A descriptive name (`Dir4Tree2`, `LimitLESS4`, ...).
    pub fn name(&self) -> String {
        match self {
            ProtocolKind::FullMap => "FullMap".into(),
            ProtocolKind::LimitedNB { pointers } => format!("Dir{pointers}NB"),
            ProtocolKind::LimitedB { pointers } => format!("Dir{pointers}B"),
            ProtocolKind::LimitLess { pointers } => format!("LimitLESS{pointers}"),
            ProtocolKind::SinglyList => "SinglyLinkedList".into(),
            ProtocolKind::Sci => "SCI".into(),
            ProtocolKind::Stp { arity } => format!("STP{arity}"),
            ProtocolKind::SciTree => "SCITreeExt".into(),
            ProtocolKind::DirTree { pointers, arity } => format!("Dir{pointers}Tree{arity}"),
            ProtocolKind::DirTreeUpdate { pointers, arity } => {
                format!("Dir{pointers}Tree{arity}U")
            }
            ProtocolKind::DirTreeAdaptive { pointers, arity } => {
                format!("Dir{pointers}Tree{arity}A")
            }
            ProtocolKind::Snoop => "SnoopMSI".into(),
        }
    }

    /// The nine configurations of the paper's figures: `fm`, `L8 L4 L2 L1`,
    /// and Dir_iTree₂ for i ∈ {8,4,2,1}.
    pub fn figure_set() -> Vec<ProtocolKind> {
        let mut v = vec![ProtocolKind::FullMap];
        for i in [8, 4, 2, 1] {
            v.push(ProtocolKind::LimitedNB { pointers: i });
        }
        for i in [8, 4, 2, 1] {
            v.push(ProtocolKind::DirTree {
                pointers: i,
                arity: 2,
            });
        }
        v
    }
}

/// A coherence protocol: a distributed state machine over directory and
/// cache controllers, driven by processor misses and network messages.
pub trait Protocol: Send {
    fn kind(&self) -> ProtocolKind;

    /// A read or write miss began at `node` for `addr`. The machine has
    /// already allocated the line and set it to `RmIp`/`WmIp`; the protocol
    /// sends the request to the home. For a write to a `V` line (upgrade),
    /// `op == Write` and the old state was `V`.
    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind);

    /// A message arrived at `node` (directory side if it is the home and
    /// the kind is directory-bound, cache side otherwise).
    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg);

    /// `node` evicted a line for `addr` that was in `state` (`V` or `E`).
    /// The tag is already gone; the protocol must restore metadata
    /// consistency (writeback, unlink, subtree kill, ...).
    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState);

    /// Directory overhead per memory block, in bits, for an `nodes`-node
    /// machine (Section 2 formulas; used by the memory-overhead table).
    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64;

    /// Coherence metadata per cache line, in bits.
    fn cache_bits_per_line(&self, nodes: u32) -> u64;

    /// Update-based protocols have no exclusive state: every write is a
    /// home transaction and completed writes leave all copies valid (the
    /// machine adjusts its write-hit policy and its witness accordingly).
    fn is_update(&self) -> bool {
        false
    }

    /// Per-block write policy: does `addr` currently complete writes with
    /// update semantics? Static protocols answer uniformly ([`is_update`](Protocol::is_update));
    /// the adaptive hybrid answers per block, and the machine/checker
    /// consult this at every write retirement.
    fn is_update_for(&self, addr: Addr) -> bool {
        let _ = addr;
        self.is_update()
    }

    /// Does this protocol want [`note_read_hit`](Protocol::note_read_hit)
    /// callbacks? Update-mode blocks satisfy reads locally forever, so a
    /// home-side pattern detector is blind to them unless the machine
    /// reports read hits. The machine caches this flag and keeps the read
    /// hit path callback-free when it is false.
    fn wants_read_hits(&self) -> bool {
        false
    }

    /// A processor read hit a valid line in its cache (no message was
    /// generated). Only called when [`wants_read_hits`](Protocol::wants_read_hits)
    /// is true. Must not send messages or mutate coherence state — it only
    /// feeds passive observers such as the sharing-pattern detector.
    fn note_read_hit(&mut self, node: NodeId, addr: Addr) {
        let _ = (node, addr);
    }

    /// The processor-side operation whose completion the protocol signalled
    /// via [`ProtoCtx::complete`](crate::ctx::ProtoCtx::complete) has now
    /// retired (the machine's `OpDone`, the checker's retire step). Between
    /// completion and retirement the write's semantics are still being
    /// applied, so a mode-switching protocol must not change the block's
    /// policy in that window; this callback closes it.
    fn note_op_retired(&mut self, node: NodeId, addr: Addr, op: OpKind) {
        let _ = (node, addr, op);
    }

    /// Snapshot the complete internal protocol state, so the model checker
    /// (`dirtree-check`) can branch an exploration from it.
    fn boxed_clone(&self) -> Box<dyn Protocol>;

    /// Feed a canonical digest of the internal state to `h`, for the model
    /// checker's visited-set dedup. The digest must be independent of hash
    /// map iteration order (use [`crate::fingerprint`]) and must cover
    /// *every* field that can influence future behavior: two states with
    /// equal digests are assumed to behave identically and one of them is
    /// pruned.
    fn fingerprint(&self, h: &mut dyn std::hash::Hasher);

    /// A clone of the complete protocol state with every node id mapped
    /// through `perm` (`perm[old] = new`), or `None` if this protocol does
    /// not certify *equivariance* — the property that handling a relabeled
    /// message in the relabeled state does exactly what relabeling the
    /// original execution would. The model checker's processor-permutation
    /// symmetry reduction canonicalizes state digests over the orbit of
    /// home-fixing renamings, which is only sound for equivariant
    /// protocols; the answer must therefore depend only on the protocol
    /// *type*, never on its current state. The default opts out and leaves
    /// the reduction inert (group = identity), which is also what keeps the
    /// checker sound for deliberately asymmetric fault-injection mutants.
    fn relabeled(&self, perm: &[NodeId]) -> Option<Box<dyn Protocol>> {
        let _ = perm;
        None
    }

    /// Certifies that delivering a message only reads and writes state
    /// belonging to the handling node or keyed by the message's block
    /// (per-address directory entries, gates, collectors, trees), so that
    /// two deliveries at different nodes for different blocks commute. This
    /// enables the model checker's sleep-set partial-order reduction; the
    /// default opts out and leaves it inert.
    fn deliveries_commute(&self) -> bool {
        false
    }

    /// Protocol-specific structural invariants, checked by the model
    /// checker at every explored state. `ctx` exposes cache line states,
    /// `addrs` is the blocks in play, and `quiescent` is true when no
    /// message or completion is pending (some invariants — e.g. "readable
    /// copies are reachable from recorded roots" — only hold between
    /// transactions). Default: nothing protocol-specific to check.
    fn check_invariants(
        &self,
        ctx: &dyn ProtoCtx,
        addrs: &[Addr],
        quiescent: bool,
    ) -> Result<(), String> {
        let _ = (ctx, addrs, quiescent);
        Ok(())
    }
}

/// Number of bits in a node pointer for an `n`-node machine.
pub(crate) fn ptr_bits(nodes: u32) -> u64 {
    (32 - (nodes.max(2) - 1).leading_zeros()) as u64
}

/// Instantiate a protocol implementation.
pub fn build_protocol(kind: ProtocolKind, params: ProtocolParams) -> Box<dyn Protocol> {
    match kind {
        ProtocolKind::FullMap => Box::new(crate::dir::full_map::FullMap::new()),
        ProtocolKind::LimitedNB { pointers } => {
            Box::new(crate::dir::limited::Limited::new(pointers, false))
        }
        ProtocolKind::LimitedB { pointers } => {
            Box::new(crate::dir::limited::Limited::new(pointers, true))
        }
        ProtocolKind::LimitLess { pointers } => Box::new(crate::dir::limitless::LimitLess::new(
            pointers,
            params.sw_trap_cycles,
        )),
        ProtocolKind::SinglyList => Box::new(crate::dir::singly::SinglyList::new()),
        ProtocolKind::Sci => Box::new(crate::dir::sci::Sci::new()),
        ProtocolKind::Stp { arity } => Box::new(crate::dir::stp::Stp::new(arity)),
        ProtocolKind::SciTree => Box::new(crate::dir::sci_tree::SciTree::new()),
        ProtocolKind::DirTree { pointers, arity } => {
            Box::new(crate::dir::dir_tree::DirTree::new(pointers, arity, params))
        }
        ProtocolKind::DirTreeUpdate { pointers, arity } => Box::new(
            crate::dir::dir_tree_update::DirTreeUpdate::new(pointers, arity, params),
        ),
        ProtocolKind::DirTreeAdaptive { pointers, arity } => {
            Box::new(crate::adapt::DirTreeAdaptive::new(pointers, arity, params))
        }
        ProtocolKind::Snoop => Box::new(crate::dir::snoop::Snoop::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(ProtocolKind::FullMap.figure_label(), "fm");
        assert_eq!(ProtocolKind::LimitedNB { pointers: 4 }.figure_label(), "L4");
        assert_eq!(
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2
            }
            .figure_label(),
            "4"
        );
        assert_eq!(
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2
            }
            .name(),
            "Dir4Tree2"
        );
    }

    #[test]
    fn figure_set_has_nine_members() {
        let set = ProtocolKind::figure_set();
        assert_eq!(set.len(), 9);
        assert_eq!(set[0], ProtocolKind::FullMap);
    }

    #[test]
    fn ptr_bits_is_ceil_log2() {
        assert_eq!(ptr_bits(2), 1);
        assert_eq!(ptr_bits(8), 3);
        assert_eq!(ptr_bits(9), 4);
        assert_eq!(ptr_bits(1024), 10);
    }

    #[test]
    fn builder_constructs_every_kind() {
        let params = ProtocolParams::default();
        for kind in [
            ProtocolKind::FullMap,
            ProtocolKind::LimitedNB { pointers: 2 },
            ProtocolKind::LimitedB { pointers: 2 },
            ProtocolKind::LimitLess { pointers: 4 },
            ProtocolKind::SinglyList,
            ProtocolKind::Sci,
            ProtocolKind::Stp { arity: 2 },
            ProtocolKind::SciTree,
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
            ProtocolKind::DirTreeUpdate {
                pointers: 4,
                arity: 2,
            },
            ProtocolKind::DirTreeAdaptive {
                pointers: 4,
                arity: 2,
            },
            ProtocolKind::Snoop,
        ] {
            let p = build_protocol(kind, params);
            assert_eq!(p.kind(), kind);
        }
    }
}
