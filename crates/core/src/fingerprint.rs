//! Canonical state digests for model checking.
//!
//! The model checker (`dirtree-check`) dedups explored states by a single
//! `u64` digest of the *complete* machine + protocol state. Protocol
//! metadata lives in hash maps whose iteration order is unspecified, so a
//! naive `for (k, v) in map` hash would make the digest depend on insertion
//! history — two identical states could digest differently and the visited
//! set would leak. These helpers sort by key first, making the digest a
//! pure function of the state's *content*.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Digest a map canonically: length, then `(key, value)` pairs in key order.
pub fn digest_map<K, V, S>(h: &mut dyn Hasher, map: &HashMap<K, V, S>)
where
    K: Ord + Hash,
    V: Hash,
{
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    h.write_usize(entries.len());
    let mut h = h;
    for (k, v) in entries {
        k.hash(&mut h);
        v.hash(&mut h);
    }
}

/// Digest a set canonically: length, then elements in order.
pub fn digest_set<K, S>(h: &mut dyn Hasher, set: &std::collections::HashSet<K, S>)
where
    K: Ord + Hash,
{
    let mut keys: Vec<&K> = set.iter().collect();
    keys.sort();
    h.write_usize(keys.len());
    let mut h = h;
    for k in keys {
        k.hash(&mut h);
    }
}

/// Digest any `Hash` value (slices, tuples, options, ...) through the
/// object-safe hasher.
pub fn digest<T: Hash + ?Sized>(h: &mut dyn Hasher, value: &T) {
    let mut h = h;
    value.hash(&mut h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirtree_sim::hash::{FxHashMap, FxHashSet, FxHasher};

    fn run<F: Fn(&mut dyn Hasher)>(f: F) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn map_digest_ignores_insertion_order() {
        let mut a = FxHashMap::<u64, u32>::default();
        let mut b = FxHashMap::<u64, u32>::default();
        for i in 0..100 {
            a.insert(i, (i * 7) as u32);
        }
        for i in (0..100).rev() {
            b.insert(i, (i * 7) as u32);
        }
        assert_eq!(run(|h| digest_map(h, &a)), run(|h| digest_map(h, &b)));
        b.insert(3, 999);
        assert_ne!(run(|h| digest_map(h, &a)), run(|h| digest_map(h, &b)));
    }

    #[test]
    fn set_digest_ignores_insertion_order() {
        let mut a = FxHashSet::<u32>::default();
        let mut b = FxHashSet::<u32>::default();
        for i in 0..50 {
            a.insert(i);
            b.insert(49 - i);
        }
        assert_eq!(run(|h| digest_set(h, &a)), run(|h| digest_set(h, &b)));
    }

    #[test]
    fn empty_and_missing_differ_from_present() {
        let empty = FxHashMap::<u64, u32>::default();
        let mut one = FxHashMap::<u64, u32>::default();
        one.insert(0, 0);
        assert_ne!(run(|h| digest_map(h, &empty)), run(|h| digest_map(h, &one)));
    }
}
