//! Canonical state digests for model checking.
//!
//! The model checker (`dirtree-check`) dedups explored states by a single
//! `u64` digest of the *complete* machine + protocol state. Protocol
//! metadata lives in hash maps whose iteration order is unspecified, so a
//! naive `for (k, v) in map` hash would make the digest depend on insertion
//! history — two identical states could digest differently and the visited
//! set would leak. These helpers sort by key first, making the digest a
//! pure function of the state's *content*.

use crate::types::NodeId;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// All permutations of `0..nodes` that fix every node in `fixed`
/// pointwise, as relabeling tables (`perm[old] = new`), in lexicographic
/// order of the table — so the identity is always first.
///
/// This is the model checker's processor-permutation symmetry group: home
/// nodes are structural (`home_of(addr) = addr % nodes` pins each block's
/// directory to a node), so only renamings that keep every in-play home in
/// place map reachable states to reachable states. The canonical form of a
/// state digest is the minimum ordinary digest over this group.
pub fn home_fixing_perms(nodes: u32, fixed: &[NodeId]) -> Vec<Vec<NodeId>> {
    let n = nodes as usize;
    let mut is_fixed = vec![false; n];
    for &f in fixed {
        is_fixed[f as usize] = true;
    }
    let free: Vec<NodeId> = (0..nodes).filter(|&i| !is_fixed[i as usize]).collect();
    let mut perms = Vec::new();
    let mut current: Vec<NodeId> = Vec::with_capacity(free.len());
    let mut used = vec![false; free.len()];
    fn rec(
        free: &[NodeId],
        used: &mut Vec<bool>,
        current: &mut Vec<NodeId>,
        nodes: u32,
        is_fixed: &[bool],
        perms: &mut Vec<Vec<NodeId>>,
    ) {
        if current.len() == free.len() {
            let mut perm: Vec<NodeId> = (0..nodes).collect();
            for (slot, &img) in free.iter().zip(current.iter()) {
                perm[*slot as usize] = img;
            }
            debug_assert!(is_fixed
                .iter()
                .enumerate()
                .all(|(i, &f)| !f || perm[i] == i as NodeId));
            perms.push(perm);
            return;
        }
        for i in 0..free.len() {
            if !used[i] {
                used[i] = true;
                current.push(free[i]);
                rec(free, used, current, nodes, is_fixed, perms);
                current.pop();
                used[i] = false;
            }
        }
    }
    rec(&free, &mut used, &mut current, nodes, &is_fixed, &mut perms);
    perms
}

/// The inverse relabeling table of `perm`.
pub fn invert_perm(perm: &[NodeId]) -> Vec<NodeId> {
    let mut inv = vec![0; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as NodeId;
    }
    inv
}

/// Digest a map canonically: length, then `(key, value)` pairs in key order.
pub fn digest_map<K, V, S>(h: &mut dyn Hasher, map: &HashMap<K, V, S>)
where
    K: Ord + Hash,
    V: Hash,
{
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    h.write_usize(entries.len());
    let mut h = h;
    for (k, v) in entries {
        k.hash(&mut h);
        v.hash(&mut h);
    }
}

/// Digest a set canonically: length, then elements in order.
pub fn digest_set<K, S>(h: &mut dyn Hasher, set: &std::collections::HashSet<K, S>)
where
    K: Ord + Hash,
{
    let mut keys: Vec<&K> = set.iter().collect();
    keys.sort();
    h.write_usize(keys.len());
    let mut h = h;
    for k in keys {
        k.hash(&mut h);
    }
}

/// Digest any `Hash` value (slices, tuples, options, ...) through the
/// object-safe hasher.
pub fn digest<T: Hash + ?Sized>(h: &mut dyn Hasher, value: &T) {
    let mut h = h;
    value.hash(&mut h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirtree_sim::hash::{FxHashMap, FxHashSet, FxHasher};

    fn run<F: Fn(&mut dyn Hasher)>(f: F) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn map_digest_ignores_insertion_order() {
        let mut a = FxHashMap::<u64, u32>::default();
        let mut b = FxHashMap::<u64, u32>::default();
        for i in 0..100 {
            a.insert(i, (i * 7) as u32);
        }
        for i in (0..100).rev() {
            b.insert(i, (i * 7) as u32);
        }
        assert_eq!(run(|h| digest_map(h, &a)), run(|h| digest_map(h, &b)));
        b.insert(3, 999);
        assert_ne!(run(|h| digest_map(h, &a)), run(|h| digest_map(h, &b)));
    }

    #[test]
    fn set_digest_ignores_insertion_order() {
        let mut a = FxHashSet::<u32>::default();
        let mut b = FxHashSet::<u32>::default();
        for i in 0..50 {
            a.insert(i);
            b.insert(49 - i);
        }
        assert_eq!(run(|h| digest_set(h, &a)), run(|h| digest_set(h, &b)));
    }

    #[test]
    fn home_fixing_perms_enumerate_the_stabilizer() {
        // P=4, one block homed at node 0: all 3! renamings of {1,2,3}.
        let perms = home_fixing_perms(4, &[0]);
        assert_eq!(perms.len(), 6);
        assert_eq!(perms[0], vec![0, 1, 2, 3], "identity must come first");
        for p in &perms {
            assert_eq!(p[0], 0);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
        // All distinct.
        let set: std::collections::HashSet<_> = perms.iter().cloned().collect();
        assert_eq!(set.len(), 6);

        // P=4, homes {0,1}: only swapping 2<->3 remains (plus identity).
        let perms = home_fixing_perms(4, &[0, 1]);
        assert_eq!(perms, vec![vec![0, 1, 2, 3], vec![0, 1, 3, 2]]);

        // P=2, home {0}: the group is trivial.
        assert_eq!(home_fixing_perms(2, &[0]), vec![vec![0, 1]]);
    }

    #[test]
    fn invert_perm_roundtrips() {
        let p = vec![0u32, 3, 1, 2];
        let inv = invert_perm(&p);
        assert_eq!(inv, vec![0, 2, 3, 1]);
        for i in 0..4 {
            assert_eq!(inv[p[i] as usize], i as u32);
        }
    }

    #[test]
    fn empty_and_missing_differ_from_present() {
        let empty = FxHashMap::<u64, u32>::default();
        let mut one = FxHashMap::<u64, u32>::default();
        one.insert(0, 0);
        assert_ne!(run(|h| digest_map(h, &empty)), run(|h| digest_map(h, &one)));
    }
}
