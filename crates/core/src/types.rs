//! Shared scalar types for the coherence layer.

pub use dirtree_net::NodeId;

/// Block-granular memory address. The paper's block size is 8 bytes — one
/// 64-bit word per block — so an `Addr` is simply a word index into the
/// global shared address space.
pub type Addr = u64;

/// Cache line states, exactly the set from Figure 3 of the paper.
///
/// `E` (exclusive/dirty), `V` (valid/shared), `Iv` (invalid) are stable.
/// `RmIp`/`WmIp` mark an outstanding read/write miss, `WmLip` marks a writer
/// collecting invalidation acknowledgements, and `InvIp` marks a tree node
/// that has been told to invalidate and is still collecting acks from its
/// subtree before acknowledging its parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Exclusive: the only cached copy; may differ from home memory.
    E,
    /// Valid: a read-only shared copy.
    V,
    /// Invalid (tag may still be resident).
    Iv,
    /// Read Miss In Progress.
    RmIp,
    /// Write Miss In Progress (waiting for the grant from home).
    WmIp,
    /// Write Miss — Local Invalidation in Progress (writer granted, home or
    /// writer collecting acks; writer stalls until acks complete).
    WmLip,
    /// Invalidation In Progress: invalidated locally, waiting for subtree
    /// acknowledgements before acking the parent.
    InvIp,
    /// The tag is not resident at all. Never stored in a cache; returned by
    /// lookups for absent lines.
    NotPresent,
}

impl LineState {
    /// Can a processor read from this line without a transaction?
    #[inline]
    pub fn readable(self) -> bool {
        matches!(self, LineState::V | LineState::E)
    }

    /// Can a processor write to this line without a transaction?
    #[inline]
    pub fn writable(self) -> bool {
        matches!(self, LineState::E)
    }

    /// Is a transaction in flight (line must not be chosen as a victim)?
    #[inline]
    pub fn transient(self) -> bool {
        matches!(
            self,
            LineState::RmIp | LineState::WmIp | LineState::WmLip | LineState::InvIp
        )
    }
}

/// Processor operation kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    Read,
    Write,
}

/// Directory (home memory) block states, following Figure 4 of the paper.
///
/// Protocols that need richer bookkeeping embed this in their own directory
/// entry types; it is defined here so tests and the machine can reason about
/// quiescence uniformly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DirState {
    /// No transaction in flight; block clean or dirty per the entry.
    #[default]
    Idle,
    /// Read Miss Waiting for Writeback from the exclusive owner.
    RmWw,
    /// Write Miss Waiting for Writeback from the exclusive owner.
    WmWw,
    /// Write Miss invalidations in progress (collecting acks).
    WmLip,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readability_matrix() {
        assert!(LineState::V.readable());
        assert!(LineState::E.readable());
        assert!(!LineState::Iv.readable());
        assert!(!LineState::RmIp.readable());
        assert!(!LineState::NotPresent.readable());
    }

    #[test]
    fn writability_matrix() {
        assert!(LineState::E.writable());
        assert!(!LineState::V.writable());
        assert!(!LineState::WmIp.writable());
    }

    #[test]
    fn transient_lines_are_not_victims() {
        for st in [
            LineState::RmIp,
            LineState::WmIp,
            LineState::WmLip,
            LineState::InvIp,
        ] {
            assert!(st.transient());
        }
        for st in [
            LineState::E,
            LineState::V,
            LineState::Iv,
            LineState::NotPresent,
        ] {
            assert!(!st.transient());
        }
    }
}
