//! Sequential-consistency witness, shared by the simulator and the model
//! checker.
//!
//! The simulator enforces strong consistency (a writer stalls until all
//! invalidation acks arrive), so at every *completed* operation these
//! invariants must hold machine-wide:
//!
//! * **Write completion**: no other cache holds a readable copy — the
//!   single-writer invariant. A protocol that loses an invalidation (stale
//!   pointer, miscounted ack) fails here.
//! * **Read (hit or completed miss)**: the copy being read carries the
//!   latest global version of the block — i.e. no write completed since
//!   this copy was filled. A protocol that acks an invalidation without
//!   actually killing the copy fails here.
//! * **Final state**: every surviving readable copy is current.
//!
//! Versions are per-block write counters maintained by the harness itself
//! (the machine in `dirtree-machine`, the explorer in `dirtree-check`),
//! independent of the protocol under test. Keeping one implementation here
//! means the execution witness and the exhaustive checker can never drift.

use crate::fingerprint::digest_map;
use crate::types::{Addr, NodeId};
use dirtree_sim::FxHashMap;
use std::hash::Hasher;

/// The witness state.
#[derive(Default, Clone)]
pub struct Verifier {
    /// Global per-block write counter.
    version: FxHashMap<Addr, u64>,
    /// Version each cached copy was filled/written at.
    copy_version: FxHashMap<(NodeId, Addr), u64>,
}

/// A detected coherence violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub node: NodeId,
    pub addr: Addr,
    pub kind: ViolationKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// A write completed while another readable copy survived at `other`.
    WriterNotExclusive { other: NodeId },
    /// A read observed version `seen` but the block is at `current`.
    StaleRead { seen: u64, current: u64 },
    /// A readable copy at end-of-run is stale.
    StaleSurvivor { seen: u64, current: u64 },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "coherence violation at node {} addr {:#x}: {:?}",
            self.node, self.addr, self.kind
        )
    }
}

impl Verifier {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn version_of(&self, addr: Addr) -> u64 {
        self.version.get(&addr).copied().unwrap_or(0)
    }

    /// A write by `node` completed. `other_holders` must be the nodes (≠
    /// writer) whose caches currently hold a readable copy.
    pub fn on_write_complete(
        &mut self,
        node: NodeId,
        addr: Addr,
        other_holders: &[NodeId],
    ) -> Result<(), Violation> {
        if let Some(&other) = other_holders.first() {
            return Err(Violation {
                node,
                addr,
                kind: ViolationKind::WriterNotExclusive { other },
            });
        }
        let v = self.version.entry(addr).or_insert(0);
        *v += 1;
        self.copy_version.insert((node, addr), *v);
        Ok(())
    }

    /// A write by `node` completed under an *update* protocol: all listed
    /// holders received the new value synchronously within the transaction.
    pub fn on_write_complete_update(&mut self, node: NodeId, addr: Addr, holders: &[NodeId]) {
        let v = self.version.entry(addr).or_insert(0);
        *v += 1;
        let v = *v;
        self.copy_version.insert((node, addr), v);
        for &h in holders {
            self.copy_version.insert((h, addr), v);
        }
    }

    /// A read by `node` completed (miss fill) — the filled copy carries the
    /// current version by construction of the strong-consistency ordering.
    pub fn on_read_fill(&mut self, node: NodeId, addr: Addr) {
        let v = self.version_of(addr);
        self.copy_version.insert((node, addr), v);
    }

    /// A read hit at `node`: its copy must be current.
    pub fn on_read_hit(&self, node: NodeId, addr: Addr) -> Result<(), Violation> {
        let current = self.version_of(addr);
        let seen = self.copy_version.get(&(node, addr)).copied().unwrap_or(0);
        if seen != current {
            return Err(Violation {
                node,
                addr,
                kind: ViolationKind::StaleRead { seen, current },
            });
        }
        Ok(())
    }

    /// End-of-run check over all surviving readable copies.
    pub fn on_finish<'a>(
        &self,
        survivors: impl Iterator<Item = (NodeId, Addr)> + 'a,
    ) -> Result<(), Violation> {
        for (node, addr) in survivors {
            let current = self.version_of(addr);
            let seen = self.copy_version.get(&(node, addr)).copied().unwrap_or(0);
            if seen != current {
                return Err(Violation {
                    node,
                    addr,
                    kind: ViolationKind::StaleSurvivor { seen, current },
                });
            }
        }
        Ok(())
    }

    /// Canonical (iteration-order independent) digest of the witness state,
    /// for the model checker's visited-set hashing.
    pub fn digest(&self, h: &mut dyn Hasher) {
        digest_map(h, &self.version);
        digest_map(h, &self.copy_version);
    }

    /// The witness with every node id mapped through `perm`
    /// (`perm[old] = new`), for the checker's symmetry reduction. Versions
    /// are per-block and unaffected; only copy ownership moves.
    pub fn relabeled(&self, perm: &[NodeId]) -> Verifier {
        Verifier {
            version: self.version.clone(),
            copy_version: self
                .copy_version
                .iter()
                .map(|(&(n, a), &v)| ((perm[n as usize], a), v))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_bumps_version_and_requires_exclusivity() {
        let mut v = Verifier::new();
        assert!(v.on_write_complete(1, 10, &[]).is_ok());
        assert_eq!(v.version_of(10), 1);
        let err = v.on_write_complete(2, 10, &[5]).unwrap_err();
        assert!(matches!(
            err.kind,
            ViolationKind::WriterNotExclusive { other: 5 }
        ));
    }

    #[test]
    fn stale_read_detected() {
        let mut v = Verifier::new();
        v.on_read_fill(3, 7);
        assert!(v.on_read_hit(3, 7).is_ok());
        v.on_write_complete(1, 7, &[]).unwrap();
        let err = v.on_read_hit(3, 7).unwrap_err();
        assert!(matches!(
            err.kind,
            ViolationKind::StaleRead {
                seen: 0,
                current: 1
            }
        ));
    }

    #[test]
    fn refetched_copy_is_current_again() {
        let mut v = Verifier::new();
        v.on_read_fill(3, 7);
        v.on_write_complete(1, 7, &[]).unwrap();
        v.on_read_fill(3, 7);
        assert!(v.on_read_hit(3, 7).is_ok());
    }

    #[test]
    fn final_check_flags_stale_survivors() {
        let mut v = Verifier::new();
        v.on_read_fill(3, 7);
        v.on_write_complete(1, 7, &[]).unwrap();
        // Node 3's copy should have been invalidated; pretend it survived.
        let err = v.on_finish([(3u32, 7u64)].into_iter()).unwrap_err();
        assert!(matches!(err.kind, ViolationKind::StaleSurvivor { .. }));
        // Writer's own copy is fine.
        assert!(v.on_finish([(1u32, 7u64)].into_iter()).is_ok());
    }

    #[test]
    fn digest_is_canonical_and_state_sensitive() {
        fn digest_of(v: &Verifier) -> u64 {
            let mut h = dirtree_sim::hash::FxHasher::default();
            v.digest(&mut h);
            std::hash::Hasher::finish(&h)
        }
        let mut a = Verifier::new();
        let mut b = Verifier::new();
        // Same facts inserted in different orders must digest identically.
        for addr in 0..20 {
            a.on_read_fill(1, addr);
        }
        for addr in (0..20).rev() {
            b.on_read_fill(1, addr);
        }
        assert_eq!(digest_of(&a), digest_of(&b));
        a.on_write_complete(2, 3, &[]).unwrap();
        assert_ne!(digest_of(&a), digest_of(&b));
    }
}
