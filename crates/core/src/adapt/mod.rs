//! The adaptive update/invalidate subsystem — the *hybrid* of the paper's
//! title.
//!
//! The repo carries both halves of a hybrid protocol: the invalidation
//! Dir<sub>i</sub>Tree<sub>k</sub> ([`crate::dir::dir_tree`]) and the
//! update-write variant ([`crate::dir::dir_tree_update`]). This module adds
//! the part that *chooses* between them:
//!
//! * [`detector`] — a per-block sharing-pattern classifier driven by the
//!   request stream the home directory already sees (plus read-hit notes
//!   from the machine, which keep update-mode blocks observable), with a
//!   Schmitt-trigger score so alternating patterns cannot flap the policy;
//! * [`adaptive`] — [`DirTreeAdaptive`], a protocol that owns one instance
//!   of each static protocol and routes every block through whichever
//!   matches its current mode, flipping a block only when it is *drained*
//!   (no in-flight messages, no open home transaction, clean directory
//!   entry) and carrying the sharer tree — including zombie edges — across
//!   the flip.
//!
//! See DESIGN.md system #24 for the state machine and the transition-drain
//! rule.

pub mod adaptive;
pub mod detector;

pub use adaptive::DirTreeAdaptive;
pub use detector::{PatternDetector, SharingPattern};
