//! `DirTreeAdaptive` — per-block hybrid of the invalidate and update
//! Dir<sub>i</sub>Tree<sub>k</sub> variants.
//!
//! The protocol owns one instance of each static variant and a
//! [`PatternDetector`]. Every block is in exactly one *mode* (invalidate by
//! default); all of a block's directory and cache-side tree state lives in
//! the instance matching its mode, and messages are routed by kind — wave
//! traffic (`Inv`/`Update`/...) goes to the variant that generates it,
//! mode-ambiguous traffic (`ReadReply`, `FillAck`, `ReplaceInv`, ...) to
//! the block's current owner, which is well-defined because the mode cannot
//! change while any message for the block is in flight.
//!
//! **Transition-drain rule.** A block flips only when the home is about to
//! serve a fresh request for it and the block is *drained*: zero in-flight
//! messages (counted by wrapping the [`ProtoCtx`] the inner protocols see),
//! zero pending processor-op retirements (so a write completed under the
//! old mode also *retires* under it), no open home transaction, no open ack
//! collection, no pending writeback, and a clean directory entry — an
//! exclusive owner must write back before its block can become an update
//! block. The sharer forest (directory roots, cache child edges, *and*
//! zombie edges) carries across verbatim: both variants build identical
//! Figure-6 forests, and [`Protocol::check_invariants`] pins that at every
//! explored state the non-owning instance holds no state for the block and
//! the owning instance's reachability invariants hold.

use crate::adapt::detector::PatternDetector;
use crate::ctx::{ProtoCtx, ProtoEvent};
use crate::dir::dir_tree::DirTree;
use crate::dir::dir_tree_update::DirTreeUpdate;
use crate::msg::{Msg, MsgKind};
use crate::protocol::{ptr_bits, Protocol, ProtocolKind, ProtocolParams};
use crate::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::{Cycle, FxHashMap, FxHashSet};

/// The adaptive hybrid protocol (see module docs).
#[derive(Clone)]
pub struct DirTreeAdaptive {
    pointers: u32,
    arity: u32,
    inv: DirTree,
    upd: DirTreeUpdate,
    /// Blocks currently in update mode (absent = invalidate, the default).
    update_mode: FxHashSet<Addr>,
    detector: PatternDetector,
    /// In-flight message count per block: incremented when an inner
    /// protocol sends or redelivers, decremented on every arrival. A block
    /// may only flip at zero.
    inflight: FxHashMap<Addr, u32>,
    /// Completions handed to the machine whose processor-side retirement
    /// has not been confirmed yet ([`Protocol::note_op_retired`]). A write
    /// that completed under update semantics must also retire under them,
    /// so a block may only flip at zero.
    pending_retire: FxHashMap<Addr, u32>,
    /// Machine size, latched from the context (the detector sizes reader
    /// bitsets with it). Constant per machine, so not fingerprinted.
    nodes: u32,
}

/// The [`ProtoCtx`] the inner protocols see: counts sends/redeliveries and
/// completions per block so the outer protocol knows when a block is
/// drained; everything else passes through.
struct CountingCtx<'a> {
    inner: &'a mut dyn ProtoCtx,
    inflight: &'a mut FxHashMap<Addr, u32>,
    pending_retire: &'a mut FxHashMap<Addr, u32>,
}

impl ProtoCtx for CountingCtx<'_> {
    fn now(&self) -> Cycle {
        self.inner.now()
    }
    fn num_nodes(&self) -> u32 {
        self.inner.num_nodes()
    }
    fn home_of(&self, addr: Addr) -> NodeId {
        self.inner.home_of(addr)
    }
    fn send(&mut self, dst: NodeId, msg: Msg) {
        *self.inflight.entry(msg.addr).or_insert(0) += 1;
        self.inner.send(dst, msg);
    }
    fn redeliver(&mut self, node: NodeId, msg: Msg, delay: Cycle) {
        *self.inflight.entry(msg.addr).or_insert(0) += 1;
        self.inner.redeliver(node, msg, delay);
    }
    fn occupy(&mut self, node: NodeId, cycles: Cycle) {
        self.inner.occupy(node, cycles);
    }
    fn line_state(&self, node: NodeId, addr: Addr) -> LineState {
        self.inner.line_state(node, addr)
    }
    fn set_line_state(&mut self, node: NodeId, addr: Addr, state: LineState) {
        self.inner.set_line_state(node, addr, state);
    }
    fn complete(&mut self, node: NodeId, addr: Addr, op: OpKind) {
        *self.pending_retire.entry(addr).or_insert(0) += 1;
        self.inner.complete(node, addr, op);
    }
    fn note(&mut self, event: ProtoEvent) {
        self.inner.note(event);
    }
}

macro_rules! counting {
    ($self:ident, $ctx:ident) => {
        CountingCtx {
            inner: $ctx,
            inflight: &mut $self.inflight,
            pending_retire: &mut $self.pending_retire,
        }
    };
}

impl DirTreeAdaptive {
    pub fn new(pointers: u32, arity: u32, params: ProtocolParams) -> Self {
        Self {
            pointers,
            arity,
            inv: DirTree::new(pointers, arity, params),
            upd: DirTreeUpdate::new(pointers, arity, params),
            update_mode: FxHashSet::default(),
            detector: PatternDetector::new(
                params.adapt_flip_up,
                params.adapt_flip_down,
                params.adapt_saturation,
            ),
            inflight: FxHashMap::default(),
            pending_retire: FxHashMap::default(),
            nodes: 0,
        }
    }

    /// Is `addr` currently an update-mode block?
    pub fn in_update_mode(&self, addr: Addr) -> bool {
        self.update_mode.contains(&addr)
    }

    /// Current detector score for `addr` (diagnostics / tests).
    pub fn score(&self, addr: Addr) -> i32 {
        self.detector.score(addr)
    }

    /// Force `addr`'s mode bit *without* the drain check or state transfer.
    /// This is a fault injector for the mutation tests — flipping mid-wave
    /// makes a completing write retire under the wrong semantics, which the
    /// SWMR witness must catch. Never called by the protocol itself.
    #[doc(hidden)]
    pub fn force_mode(&mut self, addr: Addr, update: bool) {
        if update {
            self.update_mode.insert(addr);
        } else {
            self.update_mode.remove(&addr);
        }
    }

    fn note_arrival(&mut self, addr: Addr) {
        match self.inflight.get_mut(&addr) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.inflight.remove(&addr);
            }
            None => debug_assert!(false, "uncounted message arrived for {addr:#x}"),
        }
    }

    fn gate_busy(&self, addr: Addr) -> bool {
        if self.update_mode.contains(&addr) {
            !self.upd.flip_idle(addr)
        } else {
            !self.inv.flip_idle(addr)
        }
    }

    /// Flip `addr`'s mode if the detector wants the other policy and the
    /// block is drained (see module docs). Called while the home serves a
    /// fresh `ReadReq`/`WriteReq` for the block, *before* routing it.
    fn maybe_flip(&mut self, ctx: &mut dyn ProtoCtx, addr: Addr) {
        let in_update = self.update_mode.contains(&addr);
        if self.detector.prefers_update(addr, in_update) == in_update {
            return;
        }
        if self.inflight.contains_key(&addr) || self.pending_retire.contains_key(&addr) {
            return;
        }
        if in_update {
            if !self.upd.flip_idle(addr) {
                return;
            }
            debug_assert!(!self.inv.has_block_state(addr));
            let x = self.upd.take_block(addr);
            self.inv.install_block(addr, x);
            self.update_mode.remove(&addr);
        } else {
            if !self.inv.flip_idle(addr) {
                return;
            }
            debug_assert!(!self.upd.has_block_state(addr));
            let x = self.inv.take_block(addr);
            self.upd.install_block(addr, x);
            self.update_mode.insert(addr);
        }
        ctx.note(ProtoEvent::ModeFlip {
            to_update: !in_update,
        });
    }

    fn route_mode(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        let addr = msg.addr;
        let mut c = counting!(self, ctx);
        if self.update_mode.contains(&addr) {
            self.upd.handle(&mut c, node, msg);
        } else {
            self.inv.handle(&mut c, node, msg);
        }
    }
}

impl Protocol for DirTreeAdaptive {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::DirTreeAdaptive {
            pointers: self.pointers,
            arity: self.arity,
        }
    }

    fn is_update_for(&self, addr: Addr) -> bool {
        self.update_mode.contains(&addr)
    }

    fn wants_read_hits(&self) -> bool {
        true
    }

    fn note_read_hit(&mut self, node: NodeId, addr: Addr) {
        debug_assert!(self.nodes > 0, "read hit before any miss");
        self.detector.record_read(addr, node, self.nodes);
    }

    fn note_op_retired(&mut self, node: NodeId, addr: Addr, op: OpKind) {
        let _ = (node, op);
        match self.pending_retire.get_mut(&addr) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.pending_retire.remove(&addr);
            }
            None => debug_assert!(false, "retire without completion for {addr:#x}"),
        }
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        self.nodes = ctx.num_nodes();
        let mut c = counting!(self, ctx);
        if self.update_mode.contains(&addr) {
            self.upd.start_miss(&mut c, node, addr, op);
        } else {
            self.inv.start_miss(&mut c, node, addr, op);
        }
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        self.nodes = ctx.num_nodes();
        let addr = msg.addr;
        self.note_arrival(addr);
        match msg.kind {
            // Fresh requests at the home: feed the detector, consider a
            // mode flip, then serve under the (possibly new) mode. Reads
            // are recorded even when the request will be deferred by the
            // transaction gate (the reader set is idempotent); writes are
            // classified only when actually admitted, so each write
            // transaction closes exactly one interval.
            MsgKind::ReadReq { requester } => {
                self.detector.record_read(addr, requester, self.nodes);
                if !self.gate_busy(addr) {
                    self.maybe_flip(ctx, addr);
                }
                self.route_mode(ctx, node, msg);
            }
            MsgKind::WriteReq { requester } => {
                if !self.gate_busy(addr) {
                    let pattern = self.detector.record_write(addr, requester, self.nodes);
                    ctx.note(ProtoEvent::PatternSample(pattern));
                    self.maybe_flip(ctx, addr);
                }
                self.route_mode(ctx, node, msg);
            }
            // Wave traffic is unambiguous: only one variant generates it.
            MsgKind::Update { .. } | MsgKind::UpdateAck { .. } | MsgKind::UpdateGrant { .. } => {
                let mut c = counting!(self, ctx);
                self.upd.handle(&mut c, node, msg);
            }
            MsgKind::Inv { .. }
            | MsgKind::InvAck { .. }
            | MsgKind::WriteReply { .. }
            | MsgKind::WbReq { .. }
            | MsgKind::WbData { .. }
            | MsgKind::WbEvict => {
                let mut c = counting!(self, ctx);
                self.inv.handle(&mut c, node, msg);
            }
            // Mode-ambiguous kinds route to the block's current owner —
            // well-defined because the mode cannot flip while any message
            // for the block (including this one) is in flight.
            MsgKind::ReadReply { .. }
            | MsgKind::FillAck
            | MsgKind::ReplaceInv
            | MsgKind::ReplNotify => self.route_mode(ctx, node, msg),
            other => unreachable!("DirTreeAdaptive received {other:?}"),
        }
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        self.nodes = ctx.num_nodes();
        debug_assert!(
            !(self.update_mode.contains(&addr) && state == LineState::E),
            "exclusive copy of an update-mode block"
        );
        let mut c = counting!(self, ctx);
        if self.update_mode.contains(&addr) {
            self.upd.evict(&mut c, node, addr, state);
        } else {
            self.inv.evict(&mut c, node, addr, state);
        }
    }

    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        // Tree directory + detector state: reader bitset, last-writer
        // pointer, 4-bit saturating score, and the mode bit.
        self.inv.dir_bits_per_mem_block(nodes) + nodes as u64 + ptr_bits(nodes) + 5
    }

    fn cache_bits_per_line(&self, nodes: u32) -> u64 {
        self.inv.cache_bits_per_line(nodes)
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        use crate::fingerprint::{digest_map, digest_set};
        self.inv.fingerprint(h);
        self.upd.fingerprint(h);
        digest_set(h, &self.update_mode);
        digest_map(h, &self.inflight);
        digest_map(h, &self.pending_retire);
        self.detector.digest(h);
    }

    fn relabeled(&self, perm: &[NodeId]) -> Option<Box<dyn Protocol>> {
        // Mode membership, in-flight counts and retire counts are keyed by
        // address only; the node-bearing state lives in the two inner
        // protocol instances and the detector, all of which certify
        // equivariance concretely.
        Some(Box::new(DirTreeAdaptive {
            pointers: self.pointers,
            arity: self.arity,
            inv: self.inv.relabeled_concrete(perm),
            upd: self.upd.relabeled_concrete(perm),
            update_mode: self.update_mode.clone(),
            detector: self.detector.relabeled(perm),
            inflight: self.inflight.clone(),
            pending_retire: self.pending_retire.clone(),
            nodes: self.nodes,
        }))
    }

    fn deliveries_commute(&self) -> bool {
        true
    }

    fn check_invariants(
        &self,
        ctx: &dyn ProtoCtx,
        addrs: &[Addr],
        quiescent: bool,
    ) -> Result<(), String> {
        let (upd_addrs, inv_addrs): (Vec<Addr>, Vec<Addr>) =
            addrs.iter().partition(|a| self.update_mode.contains(*a));
        self.inv.check_invariants(ctx, &inv_addrs, quiescent)?;
        self.upd.check_invariants(ctx, &upd_addrs, quiescent)?;
        for &addr in addrs {
            let in_update = self.update_mode.contains(&addr);
            let stray = if in_update {
                self.inv.has_block_state(addr)
            } else {
                self.upd.has_block_state(addr)
            };
            if stray {
                return Err(format!(
                    "block {addr:#x} is in {} mode but the {} instance holds state for it",
                    if in_update { "update" } else { "invalidate" },
                    if in_update { "invalidate" } else { "update" },
                ));
            }
            if in_update {
                for n in 0..ctx.num_nodes() {
                    if ctx.line_state(n, addr) == LineState::E {
                        return Err(format!(
                            "update-mode block {addr:#x} has an exclusive copy at {n}"
                        ));
                    }
                }
            }
        }
        if quiescent {
            if let Some((&addr, &c)) = self.inflight.iter().next() {
                return Err(format!(
                    "quiescent but {c} in-flight messages counted for {addr:#x}"
                ));
            }
            if let Some((&addr, &c)) = self.pending_retire.iter().next() {
                return Err(format!(
                    "quiescent but {c} unretired completions counted for {addr:#x}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::MockCtx;

    const A: Addr = 0;
    const P: u32 = 16;

    fn adaptive() -> DirTreeAdaptive {
        DirTreeAdaptive::new(4, 2, ProtocolParams::default())
    }

    /// Mirror the machine: confirm retirement of every completion the mock
    /// logged since `from` (MockCtx itself has no retirement notion).
    fn retire(ctx: &MockCtx, p: &mut DirTreeAdaptive, from: usize) {
        for (n, a, op) in ctx.completed[from..].iter().copied() {
            p.note_op_retired(n, a, op);
        }
    }

    /// A read that mirrors the machine's hit path: hits feed
    /// `note_read_hit`, misses run to completion and retire.
    fn do_read(ctx: &mut MockCtx, p: &mut DirTreeAdaptive, node: NodeId, addr: Addr) {
        if ctx.line_state(node, addr).readable() {
            p.note_read_hit(node, addr);
            return;
        }
        let m = ctx.completed.len();
        ctx.read(p, node, addr);
        retire(ctx, p, m);
    }

    /// A write that runs to completion under either mode and retires;
    /// returns the writer's final line state.
    fn do_write(ctx: &mut MockCtx, p: &mut DirTreeAdaptive, node: NodeId, addr: Addr) -> LineState {
        if ctx.line_state(node, addr).writable() {
            return ctx.line_state(node, addr);
        }
        let m = ctx.completed.len();
        ctx.begin_miss(p, node, addr, OpKind::Write);
        ctx.run(p);
        assert!(
            ctx.completed[m..].contains(&(node, addr, OpKind::Write)),
            "write by {node} did not complete"
        );
        retire(ctx, p, m);
        ctx.line_state(node, addr)
    }

    #[test]
    fn read_mostly_block_flips_to_update_and_keeps_copies_valid() {
        let (mut ctx, mut p) = (MockCtx::new(P), adaptive());
        // Interval 1: eight readers (half the machine), then a write. The
        // score reaches +1 — still invalidate mode, so the write kills
        // every reader and leaves the writer exclusive.
        for n in 1..=8 {
            do_read(&mut ctx, &mut p, n, A);
        }
        assert_eq!(do_write(&mut ctx, &mut p, 0, A), LineState::E);
        assert!(!p.in_update_mode(A));
        assert_eq!(ctx.holders(A), vec![0]);
        // Interval 2: same pattern. Score reaches +2 = flip threshold; the
        // write is served in update mode and every copy stays valid.
        for n in 1..=8 {
            do_read(&mut ctx, &mut p, n, A);
        }
        assert_eq!(do_write(&mut ctx, &mut p, 0, A), LineState::V);
        assert!(p.in_update_mode(A));
        assert!(p.is_update_for(A));
        assert_eq!(ctx.holders(A).len(), 9, "8 readers + writer all valid");
        ctx.assert_swmr(A);
    }

    #[test]
    fn private_rmw_stays_invalidate_with_exclusive_owner() {
        let (mut ctx, mut p) = (MockCtx::new(P), adaptive());
        assert_eq!(do_write(&mut ctx, &mut p, 3, A), LineState::E);
        for _ in 0..10 {
            // Write hits on the exclusive copy: no traffic at all.
            let mark = ctx.mark();
            assert_eq!(do_write(&mut ctx, &mut p, 3, A), LineState::E);
            assert_eq!(ctx.sent_since(mark).len(), 0);
        }
        assert!(!p.in_update_mode(A));
    }

    #[test]
    fn migratory_token_stays_invalidate() {
        let (mut ctx, mut p) = (MockCtx::new(P), adaptive());
        do_write(&mut ctx, &mut p, 0, A);
        for hop in 1..8 {
            do_read(&mut ctx, &mut p, hop, A);
            assert_eq!(do_write(&mut ctx, &mut p, hop, A), LineState::E);
        }
        assert!(!p.in_update_mode(A));
        assert!(p.score(A) < 0);
    }

    #[test]
    fn update_block_flips_back_when_pattern_turns_write_shared() {
        let (mut ctx, mut p) = (MockCtx::new(P), adaptive());
        for round in 0..2 {
            let _ = round;
            for n in 1..=8 {
                do_read(&mut ctx, &mut p, n, A);
            }
            do_write(&mut ctx, &mut p, 0, A);
        }
        assert!(p.in_update_mode(A));
        // Ping-pong writes with no reads: write-shared, score falls from
        // +2; at -2 the block flips back mid-stream and that write runs as
        // an invalidation wave over the carried-over tree.
        let mut final_state = LineState::V;
        for i in 0..4 {
            final_state = do_write(&mut ctx, &mut p, 5 + (i % 2), A);
        }
        assert!(!p.in_update_mode(A), "flipped back to invalidate");
        assert_eq!(final_state, LineState::E, "last write ran as invalidate");
        assert_eq!(ctx.holders(A).len(), 1, "carried tree was invalidated");
        ctx.assert_swmr(A);
    }

    #[test]
    fn flip_carries_the_whole_forest_updates_reach_every_sharer() {
        let (mut ctx, mut p) = (MockCtx::new(32), adaptive());
        // Figure-5 style forest: 15 sharers with real tree depth, built
        // under invalidate mode across two read-mostly intervals.
        for round in 0..2 {
            let _ = round;
            for n in 1..=15 {
                do_read(&mut ctx, &mut p, n, A);
            }
            do_write(&mut ctx, &mut p, 16, A);
        }
        assert!(p.in_update_mode(A));
        for n in 1..=15 {
            do_read(&mut ctx, &mut p, n, A);
        }
        // One more write in update mode: every one of the 15 sharers must
        // receive an Update — possible only if the child edges built by
        // the invalidate instance carried across the flip intact.
        let mark = ctx.mark();
        do_write(&mut ctx, &mut p, 16, A);
        let updates = ctx
            .sent_since(mark)
            .iter()
            .filter(|(_, m)| matches!(m.kind, MsgKind::Update { .. }))
            .count();
        assert!(updates >= 15, "updates reached {updates}/15+ sharers");
        assert!(ctx.holders(A).len() >= 16);
    }

    #[test]
    fn state_lives_in_exactly_one_instance() {
        let (mut ctx, mut p) = (MockCtx::new(P), adaptive());
        for round in 0..2 {
            let _ = round;
            for n in 1..=8 {
                do_read(&mut ctx, &mut p, n, A);
            }
            do_write(&mut ctx, &mut p, 0, A);
        }
        assert!(p.in_update_mode(A));
        assert!(!p.inv.has_block_state(A), "invalidate instance drained");
        assert!(p.upd.has_block_state(A));
        p.check_invariants(&ctx, &[A], true).unwrap();
    }

    #[test]
    fn forced_mid_stream_mode_bit_is_what_the_mutant_tests_exploit() {
        let mut p = adaptive();
        assert!(!p.is_update_for(A));
        p.force_mode(A, true);
        assert!(p.is_update_for(A));
        p.force_mode(A, false);
        assert!(!p.is_update_for(A));
    }
}
