//! Per-block sharing-pattern detection at the home directory.
//!
//! The detector watches the per-block request stream the home already
//! serializes (every `ReadReq`/`WriteReq`, plus read-hit notes forwarded by
//! the machine for blocks whose copies are being kept alive by updates) and
//! classifies each *write interval* — the reads observed since the previous
//! write — into one of five [`SharingPattern`]s. Each classification nudges
//! a saturating per-block score: patterns that profit from update writes
//! (producer–consumer, read-mostly) push it up, patterns that profit from
//! invalidation (migratory, write-shared, private) push it down. The
//! protocol flips a block to update mode only when the score crosses
//! `adapt_flip_up` and back only when it falls to `adapt_flip_down` — a
//! Schmitt trigger, so a stream that alternates pattern every interval
//! oscillates between two adjacent scores and never flips at all.

use crate::dir::util::NodeSet;
use crate::fingerprint::digest_map;
use crate::types::{Addr, NodeId};
use dirtree_sim::FxHashMap;

/// How a block was shared during one write interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SharingPattern {
    /// One (stable) writer, a few readers: consumers re-read what the
    /// producer publishes, so updates turn their misses into hits.
    ProducerConsumer,
    /// Many readers between rare writes: the strongest case for updates.
    ReadMostly,
    /// The only reader of the interval becomes the next writer: the copy
    /// migrates, old copies are dead weight — invalidate.
    Migratory,
    /// Writer follows writer with no reads between: updates would keep
    /// pushing data to sharers that never read it — invalidate.
    WriteShared,
    /// Same writer, no readers: invalidation mode gives the writer an
    /// exclusive copy and free write hits; update mode would pay a home
    /// transaction per write.
    Private,
}

impl SharingPattern {
    /// Score nudge: positive favors update mode, negative invalidate mode.
    pub fn score_delta(self) -> i32 {
        match self {
            SharingPattern::ProducerConsumer | SharingPattern::ReadMostly => 1,
            SharingPattern::Migratory | SharingPattern::WriteShared | SharingPattern::Private => -1,
        }
    }
}

/// Per-block observation state: the readers of the current write interval,
/// the last writer, and the running pattern score.
#[derive(Clone, Debug, Hash)]
struct BlockState {
    readers: NodeSet,
    last_writer: Option<NodeId>,
    score: i32,
}

/// The per-block sharing-pattern detector (one per home-node protocol
/// instance; blocks are keyed by address, so one detector serves every
/// home).
#[derive(Clone, Debug)]
pub struct PatternDetector {
    flip_up: i32,
    flip_down: i32,
    saturation: i32,
    blocks: FxHashMap<Addr, BlockState>,
}

impl PatternDetector {
    pub fn new(flip_up: i32, flip_down: i32, saturation: i32) -> Self {
        assert!(
            flip_down < flip_up,
            "hysteresis thresholds must be ordered (down {flip_down} < up {flip_up})"
        );
        assert!(saturation >= flip_up.abs().max(flip_down.abs()));
        Self {
            flip_up,
            flip_down,
            saturation,
            blocks: FxHashMap::default(),
        }
    }

    fn block(&mut self, addr: Addr, nodes: u32) -> &mut BlockState {
        self.blocks.entry(addr).or_insert_with(|| BlockState {
            readers: NodeSet::new(nodes),
            last_writer: None,
            score: 0,
        })
    }

    /// A read of `addr` by `reader` was observed (home request or machine
    /// read-hit note). Idempotent within an interval: the reader set is a
    /// bitset, so hot readers do not outweigh wide sharing.
    pub fn record_read(&mut self, addr: Addr, reader: NodeId, nodes: u32) {
        self.block(addr, nodes).readers.insert(reader);
    }

    /// A write of `addr` by `writer` closed the current interval: classify
    /// it, fold it into the score, and start the next interval.
    pub fn record_write(&mut self, addr: Addr, writer: NodeId, nodes: u32) -> SharingPattern {
        let sat = self.saturation;
        let b = self.block(addr, nodes);
        let r = b.readers.len();
        let writer_changed = b.last_writer != Some(writer);
        let pattern = if r == 0 {
            if writer_changed && b.last_writer.is_some() {
                SharingPattern::WriteShared
            } else {
                SharingPattern::Private
            }
        } else if r == 1 && b.readers.contains(writer) && writer_changed {
            SharingPattern::Migratory
        } else if u64::from(r) >= 2.max(u64::from(nodes) / 2) {
            SharingPattern::ReadMostly
        } else {
            SharingPattern::ProducerConsumer
        };
        b.score = (b.score + pattern.score_delta()).clamp(-sat, sat);
        b.last_writer = Some(writer);
        b.readers.clear();
        pattern
    }

    /// Which mode does the detector want for `addr`, given the block's
    /// current mode? The Schmitt trigger: an invalidate-mode block flips up
    /// only at `score >= flip_up`; an update-mode block flips down only at
    /// `score <= flip_down`.
    pub fn prefers_update(&self, addr: Addr, currently_update: bool) -> bool {
        let score = self.blocks.get(&addr).map_or(0, |b| b.score);
        if currently_update {
            score > self.flip_down
        } else {
            score >= self.flip_up
        }
    }

    /// Current score (diagnostics / tests).
    pub fn score(&self, addr: Addr) -> i32 {
        self.blocks.get(&addr).map_or(0, |b| b.score)
    }

    /// Canonical digest of the full detector state (model-checker support).
    pub fn digest(&self, h: &mut dyn std::hash::Hasher) {
        digest_map(h, &self.blocks);
    }

    /// The detector with every observed node id mapped through `perm`
    /// (`perm[old] = new`) — classification depends only on reader-set
    /// cardinality and writer identity *equality*, never on id magnitude,
    /// so this is an exact equivariance (checker symmetry support).
    pub fn relabeled(&self, perm: &[NodeId]) -> PatternDetector {
        PatternDetector {
            flip_up: self.flip_up,
            flip_down: self.flip_down,
            saturation: self.saturation,
            blocks: self
                .blocks
                .iter()
                .map(|(&a, b)| {
                    (
                        a,
                        BlockState {
                            readers: b.readers.relabeled(perm),
                            last_writer: b.last_writer.map(|n| perm[n as usize]),
                            score: b.score,
                        },
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u32 = 16;

    fn det() -> PatternDetector {
        // The protocol's defaults: flip up at +2, down at -2, saturate at 4.
        PatternDetector::new(2, -2, 4)
    }

    #[test]
    fn producer_consumer_stream_classifies_and_flips_up() {
        let mut d = det();
        // Producer 0 writes, consumers 1..3 read, repeatedly.
        for round in 0..3 {
            for c in 1..4 {
                d.record_read(100, c, P);
            }
            let p = d.record_write(100, 0, P);
            let _ = round;
            assert_eq!(p, SharingPattern::ProducerConsumer);
        }
        assert!(d.score(100) >= 2);
        assert!(d.prefers_update(100, false), "flip to update");
    }

    #[test]
    fn read_mostly_needs_wide_reader_set() {
        let mut d = det();
        for r in 1..=(P / 2) {
            d.record_read(7, r, P);
        }
        assert_eq!(d.record_write(7, 0, P), SharingPattern::ReadMostly);
        // One fewer reader than half the machine: producer–consumer.
        for r in 1..(P / 2) {
            d.record_read(8, r, P);
        }
        assert_eq!(d.record_write(8, 0, P), SharingPattern::ProducerConsumer);
    }

    #[test]
    fn migratory_token_stays_invalidate() {
        let mut d = det();
        // Token ring: each node reads the block then writes it.
        let mut prev = 0;
        d.record_write(9, prev, P);
        for hop in 1..10 {
            let n = hop % P;
            d.record_read(9, n, P);
            let p = d.record_write(9, n, P);
            assert_eq!(p, SharingPattern::Migratory, "hop {hop} from {prev}");
            prev = n;
        }
        assert!(!d.prefers_update(9, false));
        assert_eq!(d.score(9), -4, "saturates, does not run away");
    }

    #[test]
    fn write_shared_and_private_classify() {
        let mut d = det();
        assert_eq!(d.record_write(1, 3, P), SharingPattern::Private);
        assert_eq!(d.record_write(1, 3, P), SharingPattern::Private);
        assert_eq!(d.record_write(1, 4, P), SharingPattern::WriteShared);
        assert_eq!(d.record_write(1, 3, P), SharingPattern::WriteShared);
    }

    #[test]
    fn hysteresis_no_flapping_on_alternating_patterns() {
        let mut d = det();
        let mut update = false;
        // Alternate a +1 interval (producer–consumer) with a -1 interval
        // (write-shared) forever: the score oscillates between 0 and 1 and
        // the mode never changes.
        for _ in 0..50 {
            d.record_read(5, 1, P);
            d.record_read(5, 2, P);
            d.record_write(5, 0, P); // producer-consumer: +1
            if d.prefers_update(5, update) != update {
                update = !update;
            }
            d.record_write(5, 9, P); // write-shared (writer change, no reads): -1
            if d.prefers_update(5, update) != update {
                update = !update;
            }
            assert!(!update, "alternating pattern must not flip the mode");
            assert!((-2..=2).contains(&d.score(5)));
        }
    }

    #[test]
    fn established_pattern_unlearns_in_bounded_time() {
        let mut d = det();
        // Long read-mostly prefix saturates at +4.
        for _ in 0..20 {
            for r in 1..P {
                d.record_read(3, r, P);
            }
            d.record_write(3, 0, P);
        }
        assert_eq!(d.score(3), 4);
        assert!(d.prefers_update(3, true));
        // Then the block turns write-shared: must flip down within
        // saturation + |flip_down| = 6 intervals, not 20.
        let mut flips_after = None;
        for i in 0..8 {
            d.record_write(3, (i % 2) as u32 + 1, P);
            if !d.prefers_update(3, true) {
                flips_after = Some(i + 1);
                break;
            }
        }
        assert_eq!(flips_after, Some(6));
    }

    #[test]
    fn schmitt_trigger_band_is_sticky_in_both_directions() {
        let mut d = det();
        // Score 1: an invalidate block stays invalidate...
        d.record_read(2, 1, P);
        d.record_read(2, 4, P);
        d.record_write(2, 0, P);
        assert_eq!(d.score(2), 1);
        assert!(!d.prefers_update(2, false));
        // ...but an update block (same score) stays update.
        assert!(d.prefers_update(2, true));
    }

    #[test]
    fn digest_tracks_state() {
        use std::hash::Hasher;
        let mut a = det();
        let mut b = det();
        let run = |d: &PatternDetector| {
            let mut h = dirtree_sim::hash::FxHasher::default();
            d.digest(&mut h);
            h.finish()
        };
        assert_eq!(run(&a), run(&b));
        a.record_read(1, 1, P);
        assert_ne!(run(&a), run(&b), "reader sets are part of the digest");
        b.record_read(1, 1, P);
        assert_eq!(run(&a), run(&b));
    }
}
