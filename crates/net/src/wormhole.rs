//! Packet-granularity wormhole timing model with link contention.
//!
//! A wormhole message of `L` bytes over `h` hops on `W`-bit links needs
//! `h·t_sw` cycles for the head to reach the destination plus `⌈8L/W⌉`
//! cycles for the body to stream in behind it. Table 5 of the paper gives
//! `W = 8` bits and `t_sw = 1` cycle, so a message costs `h + L` cycles
//! uncontended.
//!
//! Contention is modeled at packet granularity: each directed link (plus a
//! per-node injection channel) is reserved for the message's serialization
//! time as the head passes, so hot-spot queueing at a home node's links is
//! visible, while flit-level backpressure is not (see DESIGN.md §3).

use crate::topology::{LinkId, NodeId, RouteTable, Topology};
use dirtree_sim::{Cycle, Histogram};

/// Interconnect style: the paper's wormhole k-ary n-cube, or the single
/// shared bus Proteus could also be configured with (§1 motivates the
/// directory protocols by the bus's saturation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fabric {
    /// Wormhole-routed k-ary n-cube (Table 5).
    KaryNcube,
    /// One shared split-transaction bus: every message serializes on it.
    Bus,
}

/// Network timing parameters (defaults follow Table 5 of the paper).
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Interconnect style.
    pub fabric: Fabric,
    /// Per-hop switch + wire delay in cycles (n-cube), or the bus
    /// arbitration delay (bus).
    pub switch_delay: Cycle,
    /// Link width in bits (n-cube links, or the bus itself).
    pub link_width_bits: u32,
    /// Model link/injection contention (true) or use uncontended pipeline
    /// latency only (false). The bus always serializes.
    pub contention: bool,
    /// Latency charged for a node messaging itself (local loopback).
    pub local_delay: Cycle,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            fabric: Fabric::KaryNcube,
            switch_delay: 1,
            link_width_bits: 8,
            contention: true,
            local_delay: 1,
        }
    }
}

impl NetworkConfig {
    /// A shared bus with the same electrical parameters (for the §1
    /// motivation experiment: the bus saturates as processors are added).
    pub fn bus() -> Self {
        Self {
            fabric: Fabric::Bus,
            ..Self::default()
        }
    }
}

/// Aggregate traffic statistics.
#[derive(Clone, Debug, Default)]
pub struct NetworkStats {
    pub messages: u64,
    pub bytes: u64,
    pub total_hops: u64,
    pub latency: Histogram,
    /// Cycles spent queueing for busy links (contention only).
    pub contention_cycles: u64,
}

/// Link-utilization export for the observability layer. Always present so
/// downstream record schemas are feature-stable; default (all-zero) when
/// the `trace` feature is off.
#[derive(Clone, Debug, Default)]
pub struct LinkMetrics {
    /// Directed links in the fabric (1 for the bus).
    pub links: u64,
    /// Busy (streaming) cycles on the single most utilized link.
    pub max_link_busy: u64,
    /// Busy cycles summed over all links.
    pub total_link_busy: u64,
    /// Injection-channel backlog in cycles, sampled at each send.
    pub inject_queue: Histogram,
    /// Per-link backlog in cycles, sampled as each packet head arrives.
    pub link_queue: Histogram,
}

/// Per-link observability accumulators (feature `trace` only).
#[cfg(feature = "trace")]
#[derive(Default)]
struct LinkObs {
    /// Streaming cycles reserved on each directed link.
    link_busy: Vec<u64>,
    /// Streaming cycles on the shared bus (Fabric::Bus).
    bus_busy: u64,
    inject_queue: Histogram,
    link_queue: Histogram,
}

/// The interconnection network: topology + per-link reservation state.
pub struct Network {
    topo: Topology,
    config: NetworkConfig,
    /// `free_at[link]`: earliest cycle the directed link can accept a new
    /// packet head.
    link_free: Vec<Cycle>,
    /// Per-node injection-channel availability (a node has one port into
    /// the network, so back-to-back sends serialize).
    inject_free: Vec<Cycle>,
    /// Shared-bus availability (Fabric::Bus).
    bus_free: Cycle,
    stats: NetworkStats,
    #[cfg(feature = "trace")]
    obs: LinkObs,
    /// Precomputed e-cube routes; `None` under [`Fabric::Bus`], which never
    /// routes. Built once here so `send` never re-derives a path.
    routes: Option<RouteTable>,
}

impl Network {
    pub fn new(topo: Topology, config: NetworkConfig) -> Self {
        Self {
            link_free: vec![0; topo.num_directed_links() as usize],
            inject_free: vec![0; topo.num_nodes() as usize],
            bus_free: 0,
            #[cfg(feature = "trace")]
            obs: LinkObs {
                link_busy: vec![0; topo.num_directed_links() as usize],
                ..LinkObs::default()
            },
            routes: (config.fabric == Fabric::KaryNcube).then(|| RouteTable::build(&topo)),
            topo,
            config,
            stats: NetworkStats::default(),
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Serialization time of `bytes` over one link, in cycles (≥ 1).
    #[inline]
    pub fn serialization_cycles(&self, bytes: u32) -> Cycle {
        let bits = bytes as u64 * 8;
        bits.div_ceil(self.config.link_width_bits as u64).max(1)
    }

    /// Uncontended latency from `src` to `dst` for a `bytes`-byte message.
    pub fn base_latency(&self, src: NodeId, dst: NodeId, bytes: u32) -> Cycle {
        if src == dst {
            return self.config.local_delay;
        }
        if self.config.fabric == Fabric::Bus {
            // One arbitration plus full serialization, distance-independent
            // — must agree with what `send` charges on an idle bus.
            return self.config.switch_delay + self.serialization_cycles(bytes);
        }
        let hops = self.topo.distance(src, dst) as Cycle;
        hops * self.config.switch_delay + self.serialization_cycles(bytes)
    }

    /// Compute the delivery time of a message injected at `now`, reserving
    /// link bandwidth along the e-cube path. Statistics are updated.
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, bytes: u32) -> Cycle {
        self.stats.messages += 1;
        self.stats.bytes += bytes as u64;

        if src == dst {
            let arrival = now + self.config.local_delay;
            self.stats.latency.record(self.config.local_delay);
            return arrival;
        }

        let ser = self.serialization_cycles(bytes);

        if self.config.fabric == Fabric::Bus {
            // One transaction at a time on the shared medium: arbitration
            // plus the full serialization, regardless of distance.
            self.stats.total_hops += 1;
            let start = now.max(self.bus_free);
            self.stats.contention_cycles += start - now;
            #[cfg(feature = "trace")]
            {
                self.obs.link_queue.record(start - now);
                self.obs.bus_busy += self.config.switch_delay + ser;
            }
            let arrival = start + self.config.switch_delay + ser;
            self.bus_free = arrival;
            self.stats.latency.record(arrival - now);
            return arrival;
        }

        // Walk the precomputed route. The table is moved out for the walk
        // (three `Vec` headers, no data copy) so the reservation arrays can
        // be borrowed mutably alongside it.
        let routes = self.routes.take().expect("cube send without route table");
        let route: &[LinkId] = routes.route(src, dst);
        self.stats.total_hops += route.len() as u64;

        let arrival = if self.config.contention {
            // Head departs when the injection port frees up.
            let inj_free = self.inject_free[src as usize];
            let depart = now.max(inj_free);
            self.stats.contention_cycles += depart - now;
            self.inject_free[src as usize] = depart + ser;
            #[cfg(feature = "trace")]
            self.obs.inject_queue.record(inj_free.saturating_sub(now));

            let mut head = depart;
            for &link in route {
                let free = self.link_free[link as usize];
                let enter = head.max(free);
                self.stats.contention_cycles += enter - head;
                // The link streams the whole packet once the head passes.
                self.link_free[link as usize] = enter + ser;
                #[cfg(feature = "trace")]
                {
                    self.obs.link_queue.record(free.saturating_sub(head));
                    self.obs.link_busy[link as usize] += ser;
                }
                head = enter + self.config.switch_delay;
            }
            head + ser
        } else {
            // No reservations to sample, but link occupancy is still
            // well-defined: each link on the path streams the packet once.
            #[cfg(feature = "trace")]
            for &link in route {
                self.obs.link_busy[link as usize] += ser;
            }
            now + route.len() as Cycle * self.config.switch_delay + ser
        };

        self.routes = Some(routes);
        self.stats.latency.record(arrival - now);
        arrival
    }

    /// Deliver one message from `src` to *every* other node. On the bus
    /// this is a single transaction (all snoopers observe the same cycle);
    /// on the k-ary n-cube it degenerates to `n − 1` unicasts and returns
    /// the latest arrival. Returns the common / worst-case arrival cycle.
    pub fn broadcast(&mut self, now: Cycle, src: NodeId, bytes: u32) -> Cycle {
        if self.config.fabric == Fabric::Bus {
            let ser = self.serialization_cycles(bytes);
            self.stats.messages += 1;
            self.stats.bytes += bytes as u64;
            self.stats.total_hops += 1;
            let start = now.max(self.bus_free);
            self.stats.contention_cycles += start - now;
            #[cfg(feature = "trace")]
            {
                self.obs.link_queue.record(start - now);
                self.obs.bus_busy += self.config.switch_delay + ser;
            }
            let arrival = start + self.config.switch_delay + ser;
            self.bus_free = arrival;
            self.stats.latency.record(arrival - now);
            arrival
        } else {
            let mut worst = now;
            for dst in 0..self.topo.num_nodes() {
                if dst != src {
                    worst = worst.max(self.send(now, src, dst, bytes));
                }
            }
            worst
        }
    }

    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Link-utilization metrics for the observability layer. Always
    /// callable; all-zero when the `trace` feature is off.
    pub fn link_metrics(&self) -> LinkMetrics {
        #[cfg(feature = "trace")]
        {
            let (links, max_link_busy, total_link_busy) = if self.config.fabric == Fabric::Bus {
                (1, self.obs.bus_busy, self.obs.bus_busy)
            } else {
                (
                    self.link_free.len() as u64,
                    self.obs.link_busy.iter().copied().max().unwrap_or(0),
                    self.obs.link_busy.iter().sum(),
                )
            };
            LinkMetrics {
                links,
                max_link_busy,
                total_link_busy,
                inject_queue: self.obs.inject_queue.clone(),
                link_queue: self.obs.link_queue.clone(),
            }
        }
        #[cfg(not(feature = "trace"))]
        LinkMetrics::default()
    }

    /// Reset link reservations and statistics (for reusing a network across
    /// experiment repetitions).
    pub fn reset(&mut self) {
        self.link_free.iter_mut().for_each(|c| *c = 0);
        self.inject_free.iter_mut().for_each(|c| *c = 0);
        self.bus_free = 0;
        self.stats = NetworkStats::default();
        #[cfg(feature = "trace")]
        {
            self.obs.link_busy.iter_mut().for_each(|c| *c = 0);
            self.obs.bus_busy = 0;
            self.obs.inject_queue = Histogram::new();
            self.obs.link_queue = Histogram::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(nodes: u32, contention: bool) -> Network {
        Network::new(
            Topology::hypercube(nodes),
            NetworkConfig {
                contention,
                ..NetworkConfig::default()
            },
        )
    }

    #[test]
    fn base_latency_matches_paper_model() {
        // 8 bytes over 3 hops on 8-bit links with 1-cycle switches:
        // 3*1 + 8 = 11 cycles.
        let n = net(8, false);
        assert_eq!(n.base_latency(0, 7, 8), 11);
        // Control message (8 bytes) one hop: 1 + 8 = 9.
        assert_eq!(n.base_latency(0, 1, 8), 9);
    }

    #[test]
    fn local_messages_cost_local_delay() {
        let mut n = net(8, true);
        assert_eq!(n.send(100, 3, 3, 64), 101);
    }

    #[test]
    fn uncontended_send_equals_base_latency() {
        let mut n = net(16, false);
        for (src, dst) in [(0u32, 15u32), (3, 9), (7, 7)] {
            let t = n.send(50, src, dst, 16);
            assert_eq!(t, 50 + n.base_latency(src, dst, 16));
        }
    }

    #[test]
    fn contention_serializes_same_link() {
        let mut n = net(2, true);
        // Two back-to-back messages 0 -> 1 must serialize on the injection
        // port / link: the second arrives at least `ser` cycles later.
        let t1 = n.send(0, 0, 1, 8);
        let t2 = n.send(0, 0, 1, 8);
        assert!(t2 >= t1 + 8, "t1={t1} t2={t2}");
        assert!(n.stats().contention_cycles > 0);
    }

    #[test]
    fn contention_does_not_affect_disjoint_paths() {
        let mut n = net(4, true);
        // 0->1 (dimension 0) and 2->3 (dimension 0 but different link) are
        // disjoint; both should see base latency.
        let t1 = n.send(0, 0, 1, 8);
        let t2 = n.send(0, 2, 3, 8);
        assert_eq!(t1, t2);
    }

    #[test]
    fn contended_latency_never_beats_base() {
        let mut n = net(8, true);
        let mut uncont = net(8, false);
        let mut worst = 0;
        // All-to-one hot spot at node 0, all injected at t=0: queueing is
        // guaranteed on node 0's incoming links.
        for src in 1..8u32 {
            let a = n.send(0, src, 0, 8);
            let b = uncont.send(0, src, 0, 8);
            assert!(a >= b);
            worst = worst.max(a - b);
        }
        assert!(worst > 0, "expected some queueing in a hot-spot pattern");
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net(8, true);
        n.send(0, 0, 7, 8);
        n.send(0, 1, 2, 16);
        let s = n.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 24);
        assert_eq!(s.total_hops, 3 + 2);
        assert_eq!(s.latency.count(), 2);
    }

    #[test]
    fn reset_clears_reservations() {
        let mut n = net(2, true);
        n.send(0, 0, 1, 64);
        n.reset();
        assert_eq!(n.stats().messages, 0);
        let t = n.send(0, 0, 1, 8);
        assert_eq!(t, n.base_latency(0, 1, 8));
    }

    #[test]
    fn reset_then_reuse_under_bus_restores_cold_behaviour() {
        let mut n = Network::new(Topology::hypercube(8), NetworkConfig::bus());
        // Load the bus so reservations and stats are non-trivial.
        for src in 0..8u32 {
            n.send(0, src, (src + 1) % 8, 64);
        }
        assert!(n.stats().contention_cycles > 0);
        n.reset();
        // Stats fully cleared, including histogram edge values.
        let s = n.stats();
        assert_eq!(s.messages, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.total_hops, 0);
        assert_eq!(s.contention_cycles, 0);
        assert_eq!(s.latency.count(), 0);
        assert_eq!(s.latency.min(), 0);
        assert_eq!(s.latency.max(), 0);
        assert_eq!(s.latency.mean(), 0.0);
        // The first post-reset send sees an idle bus: exactly base latency,
        // and base latency on the bus is distance-independent.
        let t = n.send(0, 0, 7, 8);
        assert_eq!(t, n.base_latency(0, 7, 8));
        assert_eq!(n.base_latency(0, 7, 8), n.base_latency(0, 1, 8));
        assert_eq!(n.stats().contention_cycles, 0);
    }

    #[test]
    fn bus_uncontended_send_equals_base_latency_at_any_distance() {
        // Regression: base_latency used to charge hop-count latency under
        // Fabric::Bus, disagreeing with what send() charges on an idle bus.
        for (src, dst) in [(0u32, 1u32), (0, 31), (3, 28)] {
            let mut n = Network::new(Topology::hypercube(32), NetworkConfig::bus());
            assert_eq!(n.send(10, src, dst, 8), 10 + n.base_latency(src, dst, 8));
        }
    }

    #[test]
    fn reset_then_reuse_is_bit_identical_to_fresh() {
        // A reused (reset) network must time a message stream exactly like
        // a freshly constructed one, on both fabrics.
        for config in [NetworkConfig::default(), NetworkConfig::bus()] {
            let mut reused = Network::new(Topology::hypercube(8), config);
            for i in 0..20u32 {
                reused.send(i as Cycle, i % 8, (i * 3 + 1) % 8, 8 + i);
            }
            reused.reset();
            let mut fresh = Network::new(Topology::hypercube(8), config);
            for i in 0..20u32 {
                let a = reused.send(i as Cycle, i % 8, (i * 3 + 1) % 8, 8 + i);
                let b = fresh.send(i as Cycle, i % 8, (i * 3 + 1) % 8, 8 + i);
                assert_eq!(a, b, "send {i} diverged after reset");
            }
            assert_eq!(reused.stats().messages, fresh.stats().messages);
            assert_eq!(reused.stats().latency.sum(), fresh.stats().latency.sum());
        }
    }

    #[test]
    fn bus_serializes_every_message() {
        let mut n = Network::new(Topology::hypercube(8), NetworkConfig::bus());
        // Disjoint pairs would be parallel on the cube; the bus serializes.
        let t1 = n.send(0, 0, 1, 8);
        let t2 = n.send(0, 2, 3, 8);
        let t3 = n.send(0, 4, 5, 8);
        assert_eq!(t1, 9); // arbitration 1 + 8 cycles of data
        assert_eq!(t2, t1 + 9);
        assert_eq!(t3, t2 + 9);
        assert!(n.stats().contention_cycles > 0);
    }

    #[test]
    fn bus_latency_is_distance_independent() {
        let mut n = Network::new(Topology::hypercube(32), NetworkConfig::bus());
        let near = n.send(0, 0, 1, 8);
        let mut n2 = Network::new(Topology::hypercube(32), NetworkConfig::bus());
        let far = n2.send(0, 0, 31, 8);
        assert_eq!(near, far);
    }

    #[test]
    fn bus_broadcast_is_one_transaction() {
        let mut n = Network::new(Topology::hypercube(8), NetworkConfig::bus());
        let t = n.broadcast(0, 3, 8);
        assert_eq!(t, 9);
        assert_eq!(n.stats().messages, 1, "one bus transaction, not n-1");
    }

    #[test]
    fn cube_broadcast_is_unicast_fanout() {
        let mut n = net(8, false);
        let t = n.broadcast(0, 0, 8);
        assert_eq!(n.stats().messages, 7);
        assert_eq!(t, n.base_latency(0, 7, 8)); // farthest node bounds it
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn link_metrics_default_when_trace_disabled() {
        let mut n = net(8, true);
        n.send(0, 0, 7, 8);
        let m = n.link_metrics();
        assert_eq!(m.links, 0);
        assert_eq!(m.total_link_busy, 0);
        assert_eq!(m.inject_queue.count(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn link_metrics_accumulate_and_reset() {
        let mut n = net(8, true);
        // 3 hops, 8-byte message: each traversed link streams 8 cycles.
        n.send(0, 0, 7, 8);
        let m = n.link_metrics();
        assert_eq!(m.links, n.topology().num_directed_links() as u64);
        assert_eq!(m.total_link_busy, 3 * 8);
        assert_eq!(m.max_link_busy, 8);
        assert_eq!(m.inject_queue.count(), 1);
        assert_eq!(m.inject_queue.max(), 0, "idle port has no backlog");
        assert_eq!(m.link_queue.count(), 3);
        // A back-to-back send on the same path queues at the injection port.
        n.send(0, 0, 7, 8);
        assert!(n.link_metrics().inject_queue.max() > 0);
        n.reset();
        let m = n.link_metrics();
        assert_eq!(m.total_link_busy, 0);
        assert_eq!(m.inject_queue.count(), 0);
        assert_eq!(m.link_queue.count(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn link_metrics_uncontended_still_counts_occupancy() {
        let mut n = net(8, false);
        n.send(0, 0, 7, 8);
        let m = n.link_metrics();
        assert_eq!(m.total_link_busy, 3 * 8);
        assert_eq!(m.inject_queue.count(), 0, "no reservations to sample");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn link_metrics_bus_is_one_link() {
        let mut n = Network::new(Topology::hypercube(8), NetworkConfig::bus());
        n.send(0, 0, 1, 8);
        n.broadcast(9, 3, 8);
        let m = n.link_metrics();
        assert_eq!(m.links, 1);
        // Each bus transaction occupies arbitration (1) + serialization (8).
        assert_eq!(m.total_link_busy, 2 * 9);
        assert_eq!(m.max_link_busy, m.total_link_busy);
        assert_eq!(m.link_queue.count(), 2);
    }

    #[test]
    fn serialization_rounds_up() {
        let n = net(2, false);
        assert_eq!(n.serialization_cycles(1), 1);
        assert_eq!(n.serialization_cycles(8), 8);
        let wide = Network::new(
            Topology::hypercube(2),
            NetworkConfig {
                link_width_bits: 64,
                ..Default::default()
            },
        );
        assert_eq!(wide.serialization_cycles(8), 1);
        assert_eq!(wide.serialization_cycles(9), 2);
    }

    /// Flit rounding against the paper's `⌈L·8/W⌉` model, including byte
    /// counts that are not a multiple of the link width: exact agreement
    /// for every `bytes > 0`, and a 1-cycle floor for the degenerate
    /// zero-byte message (a packet head still crosses the link).
    #[test]
    fn serialization_matches_closed_form_for_odd_sizes() {
        for width in [5u32, 8, 12, 16, 64] {
            let n = Network::new(
                Topology::hypercube(2),
                NetworkConfig {
                    link_width_bits: width,
                    ..Default::default()
                },
            );
            assert_eq!(n.serialization_cycles(0), 1, "zero-byte floor, W={width}");
            for bytes in 1..=128u32 {
                let bits = bytes as u64 * 8;
                let closed_form = bits.div_ceil(width as u64);
                assert_eq!(
                    n.serialization_cycles(bytes),
                    closed_form,
                    "bytes={bytes} W={width}"
                );
            }
        }
    }

    /// Closed-form property at P = 256 (n = 8 cube): a `send` on an idle
    /// network equals `base_latency = h·t_sw + ⌈L·8/W⌉` for **every**
    /// (src, dst) pair and a spread of odd and even byte counts — with
    /// contention modeling both off and on (sends spaced far enough apart
    /// that every reservation has expired, i.e. the network is idle).
    #[test]
    fn p256_idle_send_equals_base_latency_for_all_pairs() {
        let nodes = 256u32;
        for contention in [false, true] {
            let mut n = net(nodes, contention);
            let mut now: Cycle = 0;
            for src in 0..nodes {
                for dst in 0..nodes {
                    let bytes = 1 + (src.wrapping_mul(31) ^ dst.wrapping_mul(17)) % 13; // 1..=13, odd sizes included
                    let t = n.send(now, src, dst, bytes);
                    assert_eq!(
                        t,
                        now + n.base_latency(src, dst, bytes),
                        "src={src} dst={dst} bytes={bytes} contention={contention}"
                    );
                    // Outrun every reservation so the next send sees an
                    // idle network again.
                    now += 1000;
                }
            }
        }
    }
}
