//! Packet-granularity wormhole timing model with link contention.
//!
//! A wormhole message of `L` bytes over `h` hops on `W`-bit links needs
//! `h·t_sw` cycles for the head to reach the destination plus `⌈8L/W⌉`
//! cycles for the body to stream in behind it. Table 5 of the paper gives
//! `W = 8` bits and `t_sw = 1` cycle, so a message costs `h + L` cycles
//! uncontended.
//!
//! Contention is modeled at packet granularity: each directed link (plus a
//! per-node injection channel) is reserved for the message's serialization
//! time as the head passes, so hot-spot queueing at a home node's links is
//! visible, while flit-level backpressure is not (see DESIGN.md §3).

use crate::topology::{LinkId, NodeId, RouteTable, Topology};
use dirtree_sim::{Cycle, Histogram};

/// Interconnect style: the paper's wormhole k-ary n-cube, or the single
/// shared bus Proteus could also be configured with (§1 motivates the
/// directory protocols by the bus's saturation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fabric {
    /// Wormhole-routed k-ary n-cube (Table 5).
    KaryNcube,
    /// One shared split-transaction bus: every message serializes on it.
    Bus,
}

/// Network timing parameters (defaults follow Table 5 of the paper).
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Interconnect style.
    pub fabric: Fabric,
    /// Per-hop switch + wire delay in cycles (n-cube), or the bus
    /// arbitration delay (bus).
    pub switch_delay: Cycle,
    /// Link width in bits (n-cube links, or the bus itself).
    pub link_width_bits: u32,
    /// Model link/injection contention (true) or use uncontended pipeline
    /// latency only (false). The bus always serializes.
    pub contention: bool,
    /// Latency charged for a node messaging itself (local loopback).
    pub local_delay: Cycle,
    /// Virtual channels per physical link (and per injection port). `1` is
    /// the classic single-channel model and the default; with more, message
    /// phases are separated onto channels via [`crate::vc::vc_for`] and
    /// arbitrated round-robin on each physical link. The bus ignores VCs
    /// (one shared medium, no per-link buffering to separate).
    pub vcs: u32,
    /// Minimal-adaptive e-cube: at each hop choose among the *productive*
    /// dimensions (those still reducing the distance) by least VC backlog,
    /// breaking ties toward the lowest dimension. `false` (the default)
    /// keeps deterministic table-driven e-cube routing.
    pub adaptive: bool,
    /// Per-(node, VC) send credits enforced by the machine layer (bounded
    /// output buffering; `0` = unbounded, the default). The network itself
    /// only carries the setting — see `MachineCore` for the semantics.
    pub vc_credits: u32,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            fabric: Fabric::KaryNcube,
            switch_delay: 1,
            link_width_bits: 8,
            contention: true,
            local_delay: 1,
            vcs: 1,
            adaptive: false,
            vc_credits: 0,
        }
    }
}

impl NetworkConfig {
    /// A shared bus with the same electrical parameters (for the §1
    /// motivation experiment: the bus saturates as processors are added).
    pub fn bus() -> Self {
        Self {
            fabric: Fabric::Bus,
            ..Self::default()
        }
    }

    /// Channel count clamped to at least one (so sizing/indexing arithmetic
    /// never divides by the degenerate `vcs = 0`).
    #[inline]
    pub fn vc_count(&self) -> u32 {
        self.vcs.max(1)
    }

    /// True when any virtual-channel feature departs from the classic
    /// single-channel default (used to keep config keys/fingerprints stable
    /// for pre-VC records).
    pub fn vc_nondefault(&self) -> bool {
        self.vc_count() > 1 || self.adaptive || self.vc_credits > 0
    }

    /// Credit cost of a `bytes`-byte message in flits: `⌈8·bytes/W⌉`, the
    /// same quantization [`Network::serialization_cycles`] charges for link
    /// time, clamped to the pool size `vc_credits` so a packet longer than
    /// the whole buffer occupies the full pool but can still make progress
    /// (a cost greater than the pool could never be granted). With
    /// `vc_credits = 1` every message therefore costs exactly one credit —
    /// the historical message-granularity accounting.
    #[inline]
    pub fn flit_cost(&self, bytes: u32) -> u32 {
        debug_assert!(self.vc_credits > 0, "flit_cost with unbounded credits");
        let flits = (bytes as u64 * 8)
            .div_ceil(self.link_width_bits.max(1) as u64)
            .max(1);
        (flits.min(self.vc_credits as u64)) as u32
    }
}

/// Aggregate traffic statistics.
#[derive(Clone, Debug, Default)]
pub struct NetworkStats {
    pub messages: u64,
    pub bytes: u64,
    pub total_hops: u64,
    pub latency: Histogram,
    /// Cycles spent waiting at a source's injection port (or for bus
    /// arbitration) before the head could depart.
    pub inject_wait_cycles: u64,
    /// Cycles packet heads spent waiting for busy links along their route.
    pub link_wait_cycles: u64,
    /// Wait cycles (injection + link) attributed per virtual channel; empty
    /// in the single-channel model.
    pub vc_wait_cycles: Vec<u64>,
}

impl NetworkStats {
    /// Total queueing wait. Exactly the historical `contention_cycles`
    /// accounting: the injection/link split partitions the old sum, so
    /// records keyed on the aggregate are unchanged.
    pub fn contention_cycles(&self) -> u64 {
        self.inject_wait_cycles + self.link_wait_cycles
    }
}

/// Link-utilization export for the observability layer. Always present so
/// downstream record schemas are feature-stable; default (all-zero) when
/// the `trace` feature is off.
#[derive(Clone, Debug, Default)]
pub struct LinkMetrics {
    /// Directed links in the fabric (1 for the bus).
    pub links: u64,
    /// Busy (streaming) cycles on the single most utilized link.
    pub max_link_busy: u64,
    /// Busy cycles summed over all links.
    pub total_link_busy: u64,
    /// Injection-channel backlog in cycles, sampled at each send.
    pub inject_queue: Histogram,
    /// Per-link backlog in cycles, sampled as each packet head arrives.
    pub link_queue: Histogram,
    /// Backlog histograms partitioned by virtual channel (same samples as
    /// `inject_queue`/`link_queue`, split per VC). Empty in the
    /// single-channel model, so pre-VC snapshots are unchanged.
    pub vc_queue: Vec<Histogram>,
}

/// Per-link observability accumulators (feature `trace` only).
#[cfg(feature = "trace")]
#[derive(Default)]
struct LinkObs {
    /// Streaming cycles reserved on each directed link.
    link_busy: Vec<u64>,
    /// Streaming cycles on the shared bus (Fabric::Bus).
    bus_busy: u64,
    inject_queue: Histogram,
    link_queue: Histogram,
    /// Per-VC backlog samples (len = vcs when vcs > 1, else empty).
    vc_queue: Vec<Histogram>,
}

/// The interconnection network: topology + per-link reservation state.
pub struct Network {
    topo: Topology,
    config: NetworkConfig,
    /// `free_at[link * vcs + vc]`: earliest cycle virtual channel `vc` of
    /// the directed link can accept a new packet head. With `vcs = 1` this
    /// degenerates to one reservation per physical link.
    link_free: Vec<Cycle>,
    /// Per-(node, VC) injection-channel availability (a node has one port
    /// into the network per channel, so same-channel back-to-back sends
    /// serialize), laid out like `link_free`.
    inject_free: Vec<Cycle>,
    /// Shared-bus availability (Fabric::Bus).
    bus_free: Cycle,
    stats: NetworkStats,
    #[cfg(feature = "trace")]
    obs: LinkObs,
    /// Precomputed e-cube routes; `None` under [`Fabric::Bus`] (which never
    /// routes) and in the VC/adaptive modes (which derive hops on the fly —
    /// at P = 1024 the table would cost tens of MB for nothing). Built once
    /// here so the single-channel `send` never re-derives a path.
    routes: Option<RouteTable>,
    /// Reusable path buffer for the modes that re-derive routes per send
    /// (only the trace-feature occupancy walk materializes full paths).
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    route_scratch: Vec<LinkId>,
}

impl Network {
    pub fn new(topo: Topology, config: NetworkConfig) -> Self {
        let vcs = config.vc_count() as usize;
        Self {
            link_free: vec![0; topo.num_directed_links() as usize * vcs],
            inject_free: vec![0; topo.num_nodes() as usize * vcs],
            bus_free: 0,
            #[cfg(feature = "trace")]
            obs: LinkObs {
                link_busy: vec![0; topo.num_directed_links() as usize],
                vc_queue: if vcs > 1 {
                    vec![Histogram::new(); vcs]
                } else {
                    Vec::new()
                },
                ..LinkObs::default()
            },
            routes: (config.fabric == Fabric::KaryNcube && !config.adaptive && vcs == 1)
                .then(|| RouteTable::build(&topo)),
            topo,
            stats: Self::fresh_stats(&config),
            route_scratch: Vec::new(),
            config,
        }
    }

    /// Zeroed statistics shaped for `config` (per-VC wait counters sized to
    /// the channel count when VCs are on).
    fn fresh_stats(config: &NetworkConfig) -> NetworkStats {
        NetworkStats {
            vc_wait_cycles: if config.vc_count() > 1 {
                vec![0; config.vc_count() as usize]
            } else {
                Vec::new()
            },
            ..NetworkStats::default()
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Serialization time of `bytes` over one link, in cycles (≥ 1).
    #[inline]
    pub fn serialization_cycles(&self, bytes: u32) -> Cycle {
        let bits = bytes as u64 * 8;
        bits.div_ceil(self.config.link_width_bits as u64).max(1)
    }

    /// Uncontended latency from `src` to `dst` for a `bytes`-byte message.
    pub fn base_latency(&self, src: NodeId, dst: NodeId, bytes: u32) -> Cycle {
        if src == dst {
            return self.config.local_delay;
        }
        if self.config.fabric == Fabric::Bus {
            // One arbitration plus full serialization, distance-independent
            // — must agree with what `send` charges on an idle bus.
            return self.config.switch_delay + self.serialization_cycles(bytes);
        }
        let hops = self.topo.distance(src, dst) as Cycle;
        hops * self.config.switch_delay + self.serialization_cycles(bytes)
    }

    /// Compute the delivery time of a message injected at `now`, reserving
    /// link bandwidth along the e-cube path. Statistics are updated.
    /// Single-channel entry point: equivalent to [`Network::send_vc`] on
    /// channel 0 (where every message class lands when `vcs = 1`).
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, bytes: u32) -> Cycle {
        self.send_vc(now, src, dst, bytes, 0)
    }

    /// [`Network::send`] on a specific virtual channel. With the default
    /// `vcs = 1` the channel collapses to 0 and the timing is byte-for-byte
    /// the classic single-channel model.
    pub fn send_vc(&mut self, now: Cycle, src: NodeId, dst: NodeId, bytes: u32, vc: u32) -> Cycle {
        self.stats.messages += 1;
        self.stats.bytes += bytes as u64;

        if src == dst {
            let arrival = now + self.config.local_delay;
            self.stats.latency.record(self.config.local_delay);
            return arrival;
        }

        let ser = self.serialization_cycles(bytes);

        if self.config.fabric == Fabric::Bus {
            // One transaction at a time on the shared medium: arbitration
            // plus the full serialization, regardless of distance. Virtual
            // channels do not apply (there is no per-link buffering to
            // separate), so `vc` is ignored here.
            self.stats.total_hops += 1;
            let start = now.max(self.bus_free);
            // Waiting for the bus is waiting to *inject* onto the shared
            // medium: there are no per-hop links to wait for.
            self.stats.inject_wait_cycles += start - now;
            #[cfg(feature = "trace")]
            {
                // The bus doubles as injection port and only link, so the
                // arbitration wait is sampled under both histograms —
                // keeping the schema structurally consistent with the cube
                // fabric, where both are always populated.
                self.obs.inject_queue.record(start - now);
                self.obs.link_queue.record(start - now);
                self.obs.bus_busy += self.config.switch_delay + ser;
            }
            let arrival = start + self.config.switch_delay + ser;
            self.bus_free = arrival;
            self.stats.latency.record(arrival - now);
            return arrival;
        }

        if self.config.adaptive || self.config.vc_count() > 1 {
            let arrival = self.send_cube_vc(now, src, dst, ser, vc);
            self.stats.latency.record(arrival - now);
            return arrival;
        }

        // Classic single-channel path: walk the precomputed route. The
        // table is moved out for the walk (three `Vec` headers, no data
        // copy) so the reservation arrays can be borrowed mutably alongside
        // it.
        let routes = self.routes.take().expect("cube send without route table");
        let route: &[LinkId] = routes.route(src, dst);
        self.stats.total_hops += route.len() as u64;

        let arrival = if self.config.contention {
            // Head departs when the injection port frees up.
            let inj_free = self.inject_free[src as usize];
            let depart = now.max(inj_free);
            self.stats.inject_wait_cycles += depart - now;
            self.inject_free[src as usize] = depart + ser;
            #[cfg(feature = "trace")]
            self.obs.inject_queue.record(inj_free.saturating_sub(now));

            let mut head = depart;
            for &link in route {
                let free = self.link_free[link as usize];
                let enter = head.max(free);
                self.stats.link_wait_cycles += enter - head;
                // The link streams the whole packet once the head passes.
                self.link_free[link as usize] = enter + ser;
                #[cfg(feature = "trace")]
                {
                    self.obs.link_queue.record(free.saturating_sub(head));
                    self.obs.link_busy[link as usize] += ser;
                }
                head = enter + self.config.switch_delay;
            }
            head + ser
        } else {
            // No reservations to sample, but link occupancy is still
            // well-defined: each link on the path streams the packet once.
            #[cfg(feature = "trace")]
            for &link in route {
                self.obs.link_busy[link as usize] += ser;
            }
            now + route.len() as Cycle * self.config.switch_delay + ser
        };

        self.routes = Some(routes);
        self.stats.latency.record(arrival - now);
        arrival
    }

    /// Cube send in the virtual-channel / adaptive modes: hops are derived
    /// on the fly (e-cube dimension order, or minimal-adaptive choice by VC
    /// backlog) and each physical link arbitrates round-robin among its
    /// channels at packet granularity:
    ///
    /// * a packet reserves only its own `(link, vc)` horizon;
    /// * if other channels are mid-stream when it is granted, it loses one
    ///   arbitration slot (`switch_delay`) to the rotation and the busy
    ///   channels' horizons are pushed back by its serialization time —
    ///   flits interleave, so physical bandwidth is conserved while no
    ///   channel can head-of-line block another outright.
    fn send_cube_vc(&mut self, now: Cycle, src: NodeId, dst: NodeId, ser: Cycle, vc: u32) -> Cycle {
        let vcs = self.config.vc_count() as usize;
        let vc = (vc as usize).min(vcs - 1);

        if !self.config.contention {
            // No reservations: pipeline latency over the minimal hop count
            // (identical for every minimal route, adaptive or not).
            let hops = self.topo.distance(src, dst) as u64;
            self.stats.total_hops += hops;
            #[cfg(feature = "trace")]
            {
                let mut path = std::mem::take(&mut self.route_scratch);
                self.topo.route(src, dst, &mut path);
                for &link in &path {
                    self.obs.link_busy[link as usize] += ser;
                }
                self.route_scratch = path;
            }
            return now + hops * self.config.switch_delay + ser;
        }

        // Injection: one port per (node, VC).
        let pi = src as usize * vcs + vc;
        let inj_free = self.inject_free[pi];
        let depart = now.max(inj_free);
        self.stats.inject_wait_cycles += depart - now;
        if !self.stats.vc_wait_cycles.is_empty() {
            self.stats.vc_wait_cycles[vc] += depart - now;
        }
        self.inject_free[pi] = depart + ser;
        #[cfg(feature = "trace")]
        {
            self.obs.inject_queue.record(inj_free.saturating_sub(now));
            if let Some(h) = self.obs.vc_queue.get_mut(vc) {
                h.record(inj_free.saturating_sub(now));
            }
        }

        let mut head = depart;
        let mut cur = src;
        let mut hops = 0u64;
        while cur != dst {
            // Next hop: adaptive picks the productive dimension whose
            // (link, vc) horizon has the least backlog when the head would
            // arrive, ties broken toward the lowest dimension (strict `<`
            // keeps the first minimum); deterministic e-cube takes the
            // lowest productive dimension outright.
            let mut chosen: Option<(LinkId, NodeId)> = None;
            if self.config.adaptive {
                let mut best = Cycle::MAX;
                for dim in 0..self.topo.dimensions() {
                    if let Some((link, next)) = self.topo.hop_toward(cur, dst, dim) {
                        let backlog = self.link_free[link as usize * vcs + vc].saturating_sub(head);
                        if backlog < best {
                            best = backlog;
                            chosen = Some((link, next));
                        }
                    }
                }
            } else {
                for dim in 0..self.topo.dimensions() {
                    chosen = self.topo.hop_toward(cur, dst, dim);
                    if chosen.is_some() {
                        break;
                    }
                }
            }
            let (link, next) = chosen.expect("no productive dimension for cur != dst");

            let base = link as usize * vcs;
            let own = self.link_free[base + vc];
            let mut enter = head.max(own);
            if vcs > 1 {
                // Round-robin arbitration: granted behind other busy
                // channels costs one rotation slot, and our flits displace
                // theirs on the physical wires.
                let shared = (0..vcs).any(|u| u != vc && self.link_free[base + u] > enter);
                if shared {
                    enter += self.config.switch_delay;
                    for u in 0..vcs {
                        if u != vc && self.link_free[base + u] > enter {
                            self.link_free[base + u] += ser;
                        }
                    }
                }
            }
            self.stats.link_wait_cycles += enter - head;
            if !self.stats.vc_wait_cycles.is_empty() {
                self.stats.vc_wait_cycles[vc] += enter - head;
            }
            self.link_free[base + vc] = enter + ser;
            #[cfg(feature = "trace")]
            {
                self.obs.link_queue.record(own.saturating_sub(head));
                if let Some(h) = self.obs.vc_queue.get_mut(vc) {
                    h.record(own.saturating_sub(head));
                }
                self.obs.link_busy[link as usize] += ser;
            }
            head = enter + self.config.switch_delay;
            cur = next;
            hops += 1;
        }
        self.stats.total_hops += hops;
        head + ser
    }

    /// Deliver one message from `src` to *every* other node. On the bus
    /// this is a single transaction (all snoopers observe the same cycle);
    /// on the k-ary n-cube it degenerates to `n − 1` unicasts and returns
    /// the latest arrival. Returns the common / worst-case arrival cycle.
    pub fn broadcast(&mut self, now: Cycle, src: NodeId, bytes: u32) -> Cycle {
        self.broadcast_vc(now, src, bytes, 0)
    }

    /// [`Network::broadcast`] on a specific virtual channel (cube fan-out
    /// unicasts ride the channel; the bus is a single class-less medium).
    pub fn broadcast_vc(&mut self, now: Cycle, src: NodeId, bytes: u32, vc: u32) -> Cycle {
        if self.config.fabric == Fabric::Bus {
            let ser = self.serialization_cycles(bytes);
            self.stats.messages += 1;
            self.stats.bytes += bytes as u64;
            self.stats.total_hops += 1;
            let start = now.max(self.bus_free);
            self.stats.inject_wait_cycles += start - now;
            #[cfg(feature = "trace")]
            {
                // Sampled under both histograms, like the unicast path: the
                // bus is injection port and only link at once.
                self.obs.inject_queue.record(start - now);
                self.obs.link_queue.record(start - now);
                self.obs.bus_busy += self.config.switch_delay + ser;
            }
            let arrival = start + self.config.switch_delay + ser;
            self.bus_free = arrival;
            self.stats.latency.record(arrival - now);
            arrival
        } else {
            let mut worst = now;
            for dst in 0..self.topo.num_nodes() {
                if dst != src {
                    worst = worst.max(self.send_vc(now, src, dst, bytes, vc));
                }
            }
            worst
        }
    }

    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Link-utilization metrics for the observability layer. Always
    /// callable; all-zero when the `trace` feature is off.
    pub fn link_metrics(&self) -> LinkMetrics {
        #[cfg(feature = "trace")]
        {
            let (links, max_link_busy, total_link_busy) = if self.config.fabric == Fabric::Bus {
                (1, self.obs.bus_busy, self.obs.bus_busy)
            } else {
                (
                    self.link_free.len() as u64,
                    self.obs.link_busy.iter().copied().max().unwrap_or(0),
                    self.obs.link_busy.iter().sum(),
                )
            };
            LinkMetrics {
                links,
                max_link_busy,
                total_link_busy,
                inject_queue: self.obs.inject_queue.clone(),
                link_queue: self.obs.link_queue.clone(),
                vc_queue: self.obs.vc_queue.clone(),
            }
        }
        #[cfg(not(feature = "trace"))]
        LinkMetrics::default()
    }

    /// Reset link reservations and statistics (for reusing a network across
    /// experiment repetitions).
    pub fn reset(&mut self) {
        self.link_free.iter_mut().for_each(|c| *c = 0);
        self.inject_free.iter_mut().for_each(|c| *c = 0);
        self.bus_free = 0;
        self.stats = Self::fresh_stats(&self.config);
        #[cfg(feature = "trace")]
        {
            self.obs.link_busy.iter_mut().for_each(|c| *c = 0);
            self.obs.bus_busy = 0;
            self.obs.inject_queue = Histogram::new();
            self.obs.link_queue = Histogram::new();
            self.obs
                .vc_queue
                .iter_mut()
                .for_each(|h| *h = Histogram::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(nodes: u32, contention: bool) -> Network {
        Network::new(
            Topology::hypercube(nodes),
            NetworkConfig {
                contention,
                ..NetworkConfig::default()
            },
        )
    }

    #[test]
    fn base_latency_matches_paper_model() {
        // 8 bytes over 3 hops on 8-bit links with 1-cycle switches:
        // 3*1 + 8 = 11 cycles.
        let n = net(8, false);
        assert_eq!(n.base_latency(0, 7, 8), 11);
        // Control message (8 bytes) one hop: 1 + 8 = 9.
        assert_eq!(n.base_latency(0, 1, 8), 9);
    }

    #[test]
    fn local_messages_cost_local_delay() {
        let mut n = net(8, true);
        assert_eq!(n.send(100, 3, 3, 64), 101);
    }

    #[test]
    fn uncontended_send_equals_base_latency() {
        let mut n = net(16, false);
        for (src, dst) in [(0u32, 15u32), (3, 9), (7, 7)] {
            let t = n.send(50, src, dst, 16);
            assert_eq!(t, 50 + n.base_latency(src, dst, 16));
        }
    }

    #[test]
    fn contention_serializes_same_link() {
        let mut n = net(2, true);
        // Two back-to-back messages 0 -> 1 must serialize on the injection
        // port / link: the second arrives at least `ser` cycles later.
        let t1 = n.send(0, 0, 1, 8);
        let t2 = n.send(0, 0, 1, 8);
        assert!(t2 >= t1 + 8, "t1={t1} t2={t2}");
        assert!(n.stats().contention_cycles() > 0);
    }

    #[test]
    fn contention_does_not_affect_disjoint_paths() {
        let mut n = net(4, true);
        // 0->1 (dimension 0) and 2->3 (dimension 0 but different link) are
        // disjoint; both should see base latency.
        let t1 = n.send(0, 0, 1, 8);
        let t2 = n.send(0, 2, 3, 8);
        assert_eq!(t1, t2);
    }

    #[test]
    fn contended_latency_never_beats_base() {
        let mut n = net(8, true);
        let mut uncont = net(8, false);
        let mut worst = 0;
        // All-to-one hot spot at node 0, all injected at t=0: queueing is
        // guaranteed on node 0's incoming links.
        for src in 1..8u32 {
            let a = n.send(0, src, 0, 8);
            let b = uncont.send(0, src, 0, 8);
            assert!(a >= b);
            worst = worst.max(a - b);
        }
        assert!(worst > 0, "expected some queueing in a hot-spot pattern");
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net(8, true);
        n.send(0, 0, 7, 8);
        n.send(0, 1, 2, 16);
        let s = n.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 24);
        assert_eq!(s.total_hops, 3 + 2);
        assert_eq!(s.latency.count(), 2);
    }

    #[test]
    fn reset_clears_reservations() {
        let mut n = net(2, true);
        n.send(0, 0, 1, 64);
        n.reset();
        assert_eq!(n.stats().messages, 0);
        let t = n.send(0, 0, 1, 8);
        assert_eq!(t, n.base_latency(0, 1, 8));
    }

    #[test]
    fn reset_then_reuse_under_bus_restores_cold_behaviour() {
        let mut n = Network::new(Topology::hypercube(8), NetworkConfig::bus());
        // Load the bus so reservations and stats are non-trivial.
        for src in 0..8u32 {
            n.send(0, src, (src + 1) % 8, 64);
        }
        assert!(n.stats().contention_cycles() > 0);
        n.reset();
        // Stats fully cleared, including histogram edge values.
        let s = n.stats();
        assert_eq!(s.messages, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.total_hops, 0);
        assert_eq!(s.contention_cycles(), 0);
        assert_eq!(s.latency.count(), 0);
        assert_eq!(s.latency.min(), 0);
        assert_eq!(s.latency.max(), 0);
        assert_eq!(s.latency.mean(), 0.0);
        // The first post-reset send sees an idle bus: exactly base latency,
        // and base latency on the bus is distance-independent.
        let t = n.send(0, 0, 7, 8);
        assert_eq!(t, n.base_latency(0, 7, 8));
        assert_eq!(n.base_latency(0, 7, 8), n.base_latency(0, 1, 8));
        assert_eq!(n.stats().contention_cycles(), 0);
    }

    #[test]
    fn bus_uncontended_send_equals_base_latency_at_any_distance() {
        // Regression: base_latency used to charge hop-count latency under
        // Fabric::Bus, disagreeing with what send() charges on an idle bus.
        for (src, dst) in [(0u32, 1u32), (0, 31), (3, 28)] {
            let mut n = Network::new(Topology::hypercube(32), NetworkConfig::bus());
            assert_eq!(n.send(10, src, dst, 8), 10 + n.base_latency(src, dst, 8));
        }
    }

    #[test]
    fn reset_then_reuse_is_bit_identical_to_fresh() {
        // A reused (reset) network must time a message stream exactly like
        // a freshly constructed one, on both fabrics.
        for config in [NetworkConfig::default(), NetworkConfig::bus()] {
            let mut reused = Network::new(Topology::hypercube(8), config);
            for i in 0..20u32 {
                reused.send(i as Cycle, i % 8, (i * 3 + 1) % 8, 8 + i);
            }
            reused.reset();
            let mut fresh = Network::new(Topology::hypercube(8), config);
            for i in 0..20u32 {
                let a = reused.send(i as Cycle, i % 8, (i * 3 + 1) % 8, 8 + i);
                let b = fresh.send(i as Cycle, i % 8, (i * 3 + 1) % 8, 8 + i);
                assert_eq!(a, b, "send {i} diverged after reset");
            }
            assert_eq!(reused.stats().messages, fresh.stats().messages);
            assert_eq!(reused.stats().latency.sum(), fresh.stats().latency.sum());
        }
    }

    #[test]
    fn bus_serializes_every_message() {
        let mut n = Network::new(Topology::hypercube(8), NetworkConfig::bus());
        // Disjoint pairs would be parallel on the cube; the bus serializes.
        let t1 = n.send(0, 0, 1, 8);
        let t2 = n.send(0, 2, 3, 8);
        let t3 = n.send(0, 4, 5, 8);
        assert_eq!(t1, 9); // arbitration 1 + 8 cycles of data
        assert_eq!(t2, t1 + 9);
        assert_eq!(t3, t2 + 9);
        assert!(n.stats().contention_cycles() > 0);
    }

    #[test]
    fn bus_latency_is_distance_independent() {
        let mut n = Network::new(Topology::hypercube(32), NetworkConfig::bus());
        let near = n.send(0, 0, 1, 8);
        let mut n2 = Network::new(Topology::hypercube(32), NetworkConfig::bus());
        let far = n2.send(0, 0, 31, 8);
        assert_eq!(near, far);
    }

    #[test]
    fn bus_broadcast_is_one_transaction() {
        let mut n = Network::new(Topology::hypercube(8), NetworkConfig::bus());
        let t = n.broadcast(0, 3, 8);
        assert_eq!(t, 9);
        assert_eq!(n.stats().messages, 1, "one bus transaction, not n-1");
    }

    #[test]
    fn cube_broadcast_is_unicast_fanout() {
        let mut n = net(8, false);
        let t = n.broadcast(0, 0, 8);
        assert_eq!(n.stats().messages, 7);
        assert_eq!(t, n.base_latency(0, 7, 8)); // farthest node bounds it
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn link_metrics_default_when_trace_disabled() {
        let mut n = net(8, true);
        n.send(0, 0, 7, 8);
        let m = n.link_metrics();
        assert_eq!(m.links, 0);
        assert_eq!(m.total_link_busy, 0);
        assert_eq!(m.inject_queue.count(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn link_metrics_accumulate_and_reset() {
        let mut n = net(8, true);
        // 3 hops, 8-byte message: each traversed link streams 8 cycles.
        n.send(0, 0, 7, 8);
        let m = n.link_metrics();
        assert_eq!(m.links, n.topology().num_directed_links() as u64);
        assert_eq!(m.total_link_busy, 3 * 8);
        assert_eq!(m.max_link_busy, 8);
        assert_eq!(m.inject_queue.count(), 1);
        assert_eq!(m.inject_queue.max(), 0, "idle port has no backlog");
        assert_eq!(m.link_queue.count(), 3);
        // A back-to-back send on the same path queues at the injection port.
        n.send(0, 0, 7, 8);
        assert!(n.link_metrics().inject_queue.max() > 0);
        n.reset();
        let m = n.link_metrics();
        assert_eq!(m.total_link_busy, 0);
        assert_eq!(m.inject_queue.count(), 0);
        assert_eq!(m.link_queue.count(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn link_metrics_uncontended_still_counts_occupancy() {
        let mut n = net(8, false);
        n.send(0, 0, 7, 8);
        let m = n.link_metrics();
        assert_eq!(m.total_link_busy, 3 * 8);
        assert_eq!(m.inject_queue.count(), 0, "no reservations to sample");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn link_metrics_bus_is_one_link() {
        let mut n = Network::new(Topology::hypercube(8), NetworkConfig::bus());
        n.send(0, 0, 1, 8);
        n.broadcast(9, 3, 8);
        let m = n.link_metrics();
        assert_eq!(m.links, 1);
        // Each bus transaction occupies arbitration (1) + serialization (8).
        assert_eq!(m.total_link_busy, 2 * 9);
        assert_eq!(m.max_link_busy, m.total_link_busy);
        assert_eq!(m.link_queue.count(), 2);
    }

    /// Regression (bus/cube histogram consistency): the bus path never
    /// sampled `inject_queue`, so `LinkMetrics` was structurally different
    /// between fabrics. Both `send` and `broadcast` must record the
    /// arbitration wait under *both* histograms, with identical samples.
    #[cfg(feature = "trace")]
    #[test]
    fn bus_samples_inject_and_link_queues_consistently() {
        let mut n = Network::new(Topology::hypercube(8), NetworkConfig::bus());
        n.send(0, 0, 1, 8); // idle: wait 0
        n.send(0, 2, 3, 8); // queued behind the first: wait > 0
        n.broadcast(0, 4, 8); // queued behind both: wait > 0
        let m = n.link_metrics();
        assert_eq!(m.inject_queue.count(), 3);
        assert_eq!(m.link_queue.count(), 3);
        assert_eq!(m.inject_queue.sum(), m.link_queue.sum());
        assert_eq!(m.inject_queue.max(), m.link_queue.max());
        assert!(
            m.inject_queue.max() > 0,
            "queued transactions must sample their wait"
        );
        // The scalar split agrees: all bus wait is injection arbitration.
        assert_eq!(n.stats().inject_wait_cycles, m.inject_queue.sum());
        assert_eq!(n.stats().link_wait_cycles, 0);
    }

    /// The injection/link wait split partitions the historical aggregate:
    /// on the cube, back-to-back same-path sends wait at the injection
    /// port *and* (for distinct sources sharing a link) on the link, and
    /// the two buckets sum to what the old single counter measured.
    #[test]
    fn contention_split_partitions_the_aggregate() {
        let mut n = net(4, true);
        // Same source twice: injection wait.
        n.send(0, 0, 3, 8);
        n.send(0, 0, 3, 8);
        // Different source, shared second-hop link 1->3: link wait.
        n.send(0, 1, 3, 8);
        let s = n.stats();
        assert!(
            s.inject_wait_cycles > 0,
            "same-port sends must queue at injection"
        );
        assert!(
            s.link_wait_cycles > 0,
            "shared-link sends must queue on the link"
        );
        assert_eq!(
            s.contention_cycles(),
            s.inject_wait_cycles + s.link_wait_cycles
        );
    }

    fn vc_net(nodes: u32, vcs: u32, adaptive: bool) -> Network {
        Network::new(
            Topology::hypercube(nodes),
            NetworkConfig {
                vcs,
                adaptive,
                ..NetworkConfig::default()
            },
        )
    }

    #[test]
    fn vc_idle_send_equals_base_latency() {
        for adaptive in [false, true] {
            let mut n = vc_net(16, 3, adaptive);
            let mut now = 0;
            for (src, dst) in [(0u32, 15u32), (3, 9), (7, 7), (12, 1)] {
                for vc in 0..3 {
                    let t = n.send_vc(now, src, dst, 16, vc);
                    assert_eq!(
                        t,
                        now + n.base_latency(src, dst, 16),
                        "src={src} dst={dst} vc={vc} adaptive={adaptive}"
                    );
                    now += 1000; // outrun every reservation
                }
            }
        }
    }

    #[test]
    fn same_vc_serializes_other_vc_overtakes() {
        let mut n = vc_net(2, 3, false);
        // Saturate VC 0 on the single 0->1 link.
        let t1 = n.send_vc(0, 0, 1, 64, 0);
        let t2 = n.send_vc(0, 0, 1, 64, 0);
        assert!(
            t2 >= t1 + 64,
            "same channel must serialize: t1={t1} t2={t2}"
        );
        // A reply on VC 1 is not head-of-line blocked behind the request
        // backlog: it pays at most the arbitration + fair-share penalty,
        // far less than waiting out two 64-byte packets.
        let t3 = n.send_vc(0, 0, 1, 8, 1);
        assert!(
            t3 < t2,
            "reply channel must overtake the request backlog: t2={t2} t3={t3}"
        );
        // Compare with the single-channel model, where the same third
        // message waits behind both packets.
        let mut single = net(2, true);
        single.send(0, 0, 1, 64);
        single.send(0, 0, 1, 64);
        let t3_single = single.send(0, 0, 1, 8);
        assert!(
            t3 < t3_single,
            "VCs must beat single-channel HOL blocking: vc={t3} single={t3_single}"
        );
    }

    #[test]
    fn vc_arbitration_charges_busy_links_and_conserves_bandwidth() {
        let mut n = vc_net(2, 2, false);
        // VC 0 streams a long packet; a VC 1 packet granted mid-stream
        // pays one arbitration slot and displaces VC 0's horizon.
        let t0 = n.send_vc(0, 0, 1, 64, 0);
        let t1 = n.send_vc(0, 0, 1, 8, 1);
        assert!(
            t1 > n.base_latency(0, 1, 8),
            "sharing the wires is not free"
        );
        // VC 0's next packet sees its horizon pushed back by the
        // interleaved VC 1 flits: it arrives later than 64 cycles after t0.
        let t2 = n.send_vc(0, 0, 1, 64, 0);
        assert!(
            t2 > t0 + 64,
            "displaced channel must lose the shared bandwidth"
        );
        assert!(n.stats().vc_wait_cycles.iter().sum::<u64>() > 0);
    }

    #[test]
    fn adaptive_routes_around_congestion() {
        // Node 1 saturates its dimension-1 link 1->3. The e-cube route
        // 0 -> 7 is 0->1 (dim 0), 1->3 (dim 1), 3->7 (dim 2) and queues on
        // the hot transit link; the adaptive router reaches node 1, sees
        // the backlog, detours 1->5 (dim 2) then 5->7 (dim 1), and arrives
        // at the uncontended pipeline latency — still in 3 (minimal) hops.
        let mut ecube = vc_net(8, 2, false);
        let mut adapt = vc_net(8, 2, true);
        for net in [&mut ecube, &mut adapt] {
            for _ in 0..4 {
                net.send_vc(0, 1, 3, 64, 0);
            }
        }
        let t_ecube = ecube.send_vc(0, 0, 7, 8, 0);
        let t_adapt = adapt.send_vc(0, 0, 7, 8, 0);
        assert!(
            t_adapt < t_ecube,
            "adaptive must detour around the hot link: adapt={t_adapt} ecube={t_ecube}"
        );
        assert_eq!(
            t_adapt,
            adapt.base_latency(0, 7, 8),
            "the detour is free of contention and stays minimal"
        );
    }

    /// Adaptive routes are minimal and productive under load at the
    /// `scale_up` extension sizes: every send's hop count equals the
    /// Hamming distance (checked via the aggregate hop counter), and the
    /// walk always terminates.
    #[test]
    fn p512_adaptive_routes_stay_minimal_under_load() {
        let mut n = Network::new(
            Topology::hypercube(512),
            NetworkConfig {
                vcs: 3,
                adaptive: true,
                ..NetworkConfig::default()
            },
        );
        let mut expected_hops = 0u64;
        for i in 0..2000u32 {
            let src = (i * 37) % 512;
            let dst = (i * 97 + 13) % 512;
            if src == dst {
                continue;
            }
            let t = n.send_vc((i / 8) as Cycle, src, dst, 8, i % 3);
            expected_hops += (src ^ dst).count_ones() as u64;
            assert!(t >= (i / 8) as Cycle + n.base_latency(src, dst, 8));
        }
        assert_eq!(
            n.stats().total_hops,
            expected_hops,
            "adaptive must stay minimal"
        );
    }

    /// The default configuration never touches the VC state: a `vcs = 1`
    /// network with the VC entry points on channel 0 times a stream
    /// identically to the legacy `send` on a fresh network.
    #[test]
    fn single_channel_vc_entry_point_is_identity() {
        let mut legacy = net(8, true);
        let mut vc0 = net(8, true);
        for i in 0..40u32 {
            let a = legacy.send(i as Cycle, i % 8, (i * 3 + 1) % 8, 8 + i % 16);
            let b = vc0.send_vc(i as Cycle, i % 8, (i * 3 + 1) % 8, 8 + i % 16, 0);
            assert_eq!(a, b, "send {i}");
        }
        assert_eq!(
            legacy.stats().contention_cycles(),
            vc0.stats().contention_cycles()
        );
    }

    #[test]
    fn reset_restores_vc_state_bit_identically() {
        for (vcs, adaptive) in [(3, false), (3, true), (1, true)] {
            let mut reused = vc_net(8, vcs, adaptive);
            for i in 0..30u32 {
                reused.send_vc(i as Cycle, i % 8, (i * 3 + 1) % 8, 8 + i, i % vcs.max(1));
            }
            reused.reset();
            assert_eq!(reused.stats().messages, 0);
            assert!(reused.stats().vc_wait_cycles.iter().all(|&c| c == 0));
            let mut fresh = vc_net(8, vcs, adaptive);
            for i in 0..30u32 {
                let a = reused.send_vc(i as Cycle, i % 8, (i * 3 + 1) % 8, 8 + i, i % vcs.max(1));
                let b = fresh.send_vc(i as Cycle, i % 8, (i * 3 + 1) % 8, 8 + i, i % vcs.max(1));
                assert_eq!(a, b, "send {i} diverged after reset (vcs={vcs})");
            }
            assert_eq!(
                reused.stats().latency.sum(),
                fresh.stats().latency.sum(),
                "vcs={vcs} adaptive={adaptive}"
            );
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn vc_queue_metrics_partition_the_samples() {
        let mut n = vc_net(2, 3, false);
        n.send_vc(0, 0, 1, 64, 0);
        n.send_vc(0, 0, 1, 64, 0);
        n.send_vc(0, 0, 1, 8, 1);
        let m = n.link_metrics();
        assert_eq!(m.vc_queue.len(), 3);
        // Every inject/link sample lands in exactly one VC bucket.
        let vc_samples: u64 = m.vc_queue.iter().map(|h| h.count()).sum();
        assert_eq!(vc_samples, m.inject_queue.count() + m.link_queue.count());
        assert!(
            m.vc_queue[0].max() > 0,
            "queued VC 0 sends must show backlog"
        );
        n.reset();
        assert!(n.link_metrics().vc_queue.iter().all(|h| h.count() == 0));
    }

    #[test]
    fn serialization_rounds_up() {
        let n = net(2, false);
        assert_eq!(n.serialization_cycles(1), 1);
        assert_eq!(n.serialization_cycles(8), 8);
        let wide = Network::new(
            Topology::hypercube(2),
            NetworkConfig {
                link_width_bits: 64,
                ..Default::default()
            },
        );
        assert_eq!(wide.serialization_cycles(8), 1);
        assert_eq!(wide.serialization_cycles(9), 2);
    }

    /// Flit rounding against the paper's `⌈L·8/W⌉` model, including byte
    /// counts that are not a multiple of the link width: exact agreement
    /// for every `bytes > 0`, and a 1-cycle floor for the degenerate
    /// zero-byte message (a packet head still crosses the link).
    #[test]
    fn serialization_matches_closed_form_for_odd_sizes() {
        for width in [5u32, 8, 12, 16, 64] {
            let n = Network::new(
                Topology::hypercube(2),
                NetworkConfig {
                    link_width_bits: width,
                    ..Default::default()
                },
            );
            assert_eq!(n.serialization_cycles(0), 1, "zero-byte floor, W={width}");
            for bytes in 1..=128u32 {
                let bits = bytes as u64 * 8;
                let closed_form = bits.div_ceil(width as u64);
                assert_eq!(
                    n.serialization_cycles(bytes),
                    closed_form,
                    "bytes={bytes} W={width}"
                );
            }
        }
    }

    /// Closed-form property at P = 256 (n = 8 cube): a `send` on an idle
    /// network equals `base_latency = h·t_sw + ⌈L·8/W⌉` for **every**
    /// (src, dst) pair and a spread of odd and even byte counts — with
    /// contention modeling both off and on (sends spaced far enough apart
    /// that every reservation has expired, i.e. the network is idle).
    #[test]
    fn p256_idle_send_equals_base_latency_for_all_pairs() {
        let nodes = 256u32;
        for contention in [false, true] {
            let mut n = net(nodes, contention);
            let mut now: Cycle = 0;
            for src in 0..nodes {
                for dst in 0..nodes {
                    let bytes = 1 + (src.wrapping_mul(31) ^ dst.wrapping_mul(17)) % 13; // 1..=13, odd sizes included
                    let t = n.send(now, src, dst, bytes);
                    assert_eq!(
                        t,
                        now + n.base_latency(src, dst, bytes),
                        "src={src} dst={dst} bytes={bytes} contention={contention}"
                    );
                    // Outrun every reservation so the next send sees an
                    // idle network again.
                    now += 1000;
                }
            }
        }
    }
}
