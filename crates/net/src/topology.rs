//! k-ary n-cube topology and dimension-order (e-cube) routing.
//!
//! A k-ary n-cube has `k^n` nodes; a node's address is its base-`k`
//! expansion over `n` digits. Two nodes are linked when their addresses
//! differ by ±1 (mod k) in exactly one digit. For `k = 2` this is the binary
//! hypercube the paper simulates, where each link is its own dimension and
//! wraparound is degenerate.

/// Index of a node in the machine. Kept as `u32` so hot message structs stay
/// small (see the type-size guidance in the Rust perf book).
pub type NodeId = u32;

/// Index of a directed link. `u32` everywhere — node counts are bounded by
/// `u32::MAX` and each node has `2n` links, so link ids fit comfortably;
/// conversion to `usize` happens only at the array-indexing boundary.
pub type LinkId = u32;

/// A k-ary n-cube.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    k: u32,
    n: u32,
    nodes: u32,
}

impl Topology {
    /// Create a k-ary n-cube. `k ≥ 2`, `n ≥ 1`, and `k^n` must fit in `u32`.
    pub fn kary_ncube(k: u32, n: u32) -> Self {
        assert!(k >= 2, "radix must be at least 2");
        assert!(n >= 1, "dimension must be at least 1");
        let mut nodes: u64 = 1;
        for _ in 0..n {
            nodes *= k as u64;
            assert!(nodes <= u32::MAX as u64, "topology too large");
        }
        Self {
            k,
            n,
            nodes: nodes as u32,
        }
    }

    /// Binary n-cube (hypercube) with `nodes` processors; `nodes` must be a
    /// power of two. This is the paper's network.
    pub fn hypercube(nodes: u32) -> Self {
        assert!(
            nodes.is_power_of_two() && nodes >= 2,
            "hypercube size must be a power of two >= 2, got {nodes}"
        );
        Self::kary_ncube(2, nodes.trailing_zeros())
    }

    pub fn radix(&self) -> u32 {
        self.k
    }

    pub fn dimensions(&self) -> u32 {
        self.n
    }

    pub fn num_nodes(&self) -> u32 {
        self.nodes
    }

    /// Number of directed links: each node has one link per dimension per
    /// direction (2 directions for k > 2; for k = 2 the +/- links coincide
    /// but we keep the uniform 2-per-dimension indexing).
    pub fn num_directed_links(&self) -> LinkId {
        self.nodes * self.n * 2
    }

    #[inline]
    fn digit(&self, node: NodeId, dim: u32) -> u32 {
        (node / self.k.pow(dim)) % self.k
    }

    #[inline]
    fn with_digit(&self, node: NodeId, dim: u32, digit: u32) -> NodeId {
        let weight = self.k.pow(dim);
        let old = self.digit(node, dim);
        node - old * weight + digit * weight
    }

    /// Minimal hop distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        assert!(a < self.nodes && b < self.nodes);
        let mut d = 0;
        for dim in 0..self.n {
            let da = self.digit(a, dim);
            let db = self.digit(b, dim);
            let diff = (db + self.k - da) % self.k;
            d += diff.min(self.k - diff);
        }
        d
    }

    /// Dense id for the directed link leaving `node` along `dim` in
    /// direction `plus` (true = +1 mod k).
    #[inline]
    pub fn link_id(&self, node: NodeId, dim: u32, plus: bool) -> LinkId {
        (node * self.n + dim) * 2 + plus as LinkId
    }

    /// The next hop from `cur` toward `dst` along `dim`, if that dimension
    /// is productive (the digits differ): the directed link taken and the
    /// node it reaches, using the shorter wraparound direction (ties go
    /// to +) exactly like [`Topology::route`]. `None` when the dimension is
    /// already resolved.
    ///
    /// This is the per-hop building block shared by deterministic e-cube
    /// (always the lowest productive dimension) and the minimal-adaptive
    /// mode (any productive dimension, chosen by link backlog): both route
    /// minimally because every hop reduces the remaining distance by one.
    #[inline]
    pub fn hop_toward(&self, cur: NodeId, dst: NodeId, dim: u32) -> Option<(LinkId, NodeId)> {
        let have = self.digit(cur, dim);
        let want = self.digit(dst, dim);
        if have == want {
            return None;
        }
        let up = (want + self.k - have) % self.k;
        let down = self.k - up;
        let plus = up <= down;
        let next_digit = if plus {
            (have + 1) % self.k
        } else {
            (have + self.k - 1) % self.k
        };
        Some((
            self.link_id(cur, dim, plus),
            self.with_digit(cur, dim, next_digit),
        ))
    }

    /// The e-cube route from `src` to `dst`: the sequence of directed links
    /// traversed, fixing dimensions from 0 upward and taking the shorter
    /// wraparound direction (ties go to +). Deterministic and minimal.
    ///
    /// This is the reference derivation; the simulator's send path walks a
    /// [`RouteTable`] built from it instead of re-deriving per message.
    pub fn route(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkId>) {
        assert!(src < self.nodes && dst < self.nodes);
        out.clear();
        let mut cur = src;
        for dim in 0..self.n {
            while let Some((link, next)) = self.hop_toward(cur, dst, dim) {
                out.push(link);
                cur = next;
            }
        }
        debug_assert_eq!(cur, dst);
    }

    /// Neighbors of a node (deduplicated for k = 2).
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(2 * self.n as usize);
        for dim in 0..self.n {
            let d = self.digit(node, dim);
            let up = self.with_digit(node, dim, (d + 1) % self.k);
            let down = self.with_digit(node, dim, (d + self.k - 1) % self.k);
            if !out.contains(&up) && up != node {
                out.push(up);
            }
            if !out.contains(&down) && down != node {
                out.push(down);
            }
        }
        out
    }

    /// Network diameter in hops.
    pub fn diameter(&self) -> u32 {
        self.n * (self.k / 2)
    }
}

/// Precomputed e-cube routes for every `(src, dst)` pair, stored as one flat
/// `LinkId` arena plus an offset table (CSR layout). Deriving a route walks
/// `n` digit extractions with a `pow` each — cheap once, expensive on every
/// message — so the table is built once per [`crate::Network`] and the send
/// path reduces to a slice lookup.
///
/// Size: `nodes² + 1` offsets plus one `LinkId` per hop of every pair-wise
/// route; for the P = 256 hypercube that is ~1.3 MB, built in a few
/// milliseconds.
#[derive(Clone, Debug)]
pub struct RouteTable {
    nodes: u32,
    offsets: Vec<u32>,
    links: Vec<LinkId>,
}

impl RouteTable {
    /// Build the table by running the reference derivation for every pair,
    /// in `(src, dst)` lexicographic order.
    pub fn build(topo: &Topology) -> Self {
        let nodes = topo.num_nodes();
        let pairs = nodes as usize * nodes as usize;
        let mut offsets = Vec::with_capacity(pairs + 1);
        // Total hops = sum of pairwise distances; size the arena exactly.
        let mut scratch = Vec::with_capacity(topo.diameter() as usize);
        let mut links = Vec::new();
        offsets.push(0);
        for src in 0..nodes {
            for dst in 0..nodes {
                topo.route(src, dst, &mut scratch);
                links.extend_from_slice(&scratch);
                offsets.push(u32::try_from(links.len()).expect("route arena exceeds u32"));
            }
        }
        Self {
            nodes,
            offsets,
            links,
        }
    }

    /// The precomputed route from `src` to `dst`, as a link-id slice.
    #[inline]
    pub fn route(&self, src: NodeId, dst: NodeId) -> &[LinkId] {
        debug_assert!(src < self.nodes && dst < self.nodes);
        let pair = src as usize * self.nodes as usize + dst as usize;
        let lo = self.offsets[pair] as usize;
        let hi = self.offsets[pair + 1] as usize;
        &self.links[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_basics() {
        let t = Topology::hypercube(8);
        assert_eq!(t.radix(), 2);
        assert_eq!(t.dimensions(), 3);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn hypercube_distance_is_hamming() {
        let t = Topology::hypercube(32);
        for a in 0..32u32 {
            for b in 0..32u32 {
                assert_eq!(t.distance(a, b), (a ^ b).count_ones());
            }
        }
    }

    #[test]
    fn route_length_equals_distance() {
        let t = Topology::hypercube(16);
        let mut path = Vec::new();
        for a in 0..16u32 {
            for b in 0..16u32 {
                t.route(a, b, &mut path);
                assert_eq!(path.len() as u32, t.distance(a, b));
            }
        }
    }

    #[test]
    fn route_links_are_in_range() {
        let t = Topology::kary_ncube(4, 3);
        let mut path = Vec::new();
        for a in (0..t.num_nodes()).step_by(7) {
            for b in (0..t.num_nodes()).step_by(5) {
                t.route(a, b, &mut path);
                for &l in &path {
                    assert!(l < t.num_directed_links());
                }
            }
        }
    }

    #[test]
    fn kary_distance_uses_wraparound() {
        // 8-ary 1-cube: a ring of 8 nodes.
        let t = Topology::kary_ncube(8, 1);
        assert_eq!(t.distance(0, 7), 1);
        assert_eq!(t.distance(0, 4), 4);
        assert_eq!(t.distance(1, 6), 3);
    }

    #[test]
    fn kary_route_matches_distance() {
        let t = Topology::kary_ncube(3, 3); // 27 nodes
        let mut path = Vec::new();
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                t.route(a, b, &mut path);
                assert_eq!(path.len() as u32, t.distance(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn self_route_is_empty() {
        let t = Topology::hypercube(8);
        let mut path = vec![1, 2, 3];
        t.route(5, 5, &mut path);
        assert!(path.is_empty());
    }

    #[test]
    fn hypercube_neighbors_differ_by_one_bit() {
        let t = Topology::hypercube(16);
        for node in 0..16u32 {
            let nbrs = t.neighbors(node);
            assert_eq!(nbrs.len(), 4);
            for nb in nbrs {
                assert_eq!((node ^ nb).count_ones(), 1);
            }
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let t = Topology::kary_ncube(5, 2);
        let mut p1 = Vec::new();
        let mut p2 = Vec::new();
        t.route(3, 21, &mut p1);
        t.route(3, 21, &mut p2);
        assert_eq!(p1, p2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_hypercube_rejected() {
        Topology::hypercube(12);
    }

    #[test]
    fn route_table_matches_reference_derivation() {
        for topo in [
            Topology::hypercube(16),
            Topology::kary_ncube(3, 3),
            Topology::kary_ncube(5, 2),
        ] {
            let table = RouteTable::build(&topo);
            let mut path = Vec::new();
            for a in 0..topo.num_nodes() {
                for b in 0..topo.num_nodes() {
                    topo.route(a, b, &mut path);
                    assert_eq!(table.route(a, b), path.as_slice(), "{a}->{b}");
                }
            }
        }
    }

    /// P = 512 (n = 9) and P = 1024 (n = 10) hypercubes — the `scale_up`
    /// extension sizes. The CSR route-table arena must not overflow its
    /// `u32` offsets, and e-cube routes stay minimal with in-range links.
    /// Pairs are spot-verified on a deterministic sample; the full
    /// cross-product is covered at P = 256 below.
    #[test]
    fn p512_p1024_route_tables_build_without_overflow() {
        for nodes in [512u32, 1024] {
            let t = Topology::hypercube(nodes);
            assert_eq!(t.num_directed_links(), nodes * t.dimensions() * 2);
            let table = RouteTable::build(&t);
            let mut path = Vec::new();
            for a in (0..nodes).step_by(37) {
                for b in (0..nodes).step_by(41) {
                    t.route(a, b, &mut path);
                    assert_eq!(path.len() as u32, (a ^ b).count_ones(), "{a}->{b}");
                    assert_eq!(table.route(a, b), path.as_slice(), "{a}->{b}");
                    for &l in &path {
                        assert!(l < t.num_directed_links());
                    }
                }
            }
        }
    }

    /// Any walk that only takes productive hops is minimal — the property
    /// the adaptive router relies on. Exercised with the *highest*
    /// productive dimension each hop (the opposite of e-cube order) so the
    /// walk is maximally different from the reference route while still
    /// reaching `dst` in exactly `distance` hops.
    #[test]
    fn productive_hops_reach_destination_minimally() {
        for t in [
            Topology::hypercube(512),
            Topology::hypercube(1024),
            Topology::kary_ncube(3, 3),
        ] {
            let nodes = t.num_nodes();
            for a in (0..nodes).step_by(97) {
                for b in (0..nodes).step_by(89) {
                    let mut cur = a;
                    let mut hops = 0;
                    while cur != b {
                        let (link, next) = (0..t.dimensions())
                            .rev()
                            .find_map(|dim| t.hop_toward(cur, b, dim))
                            .expect("cur != dst must have a productive dimension");
                        assert!(link < t.num_directed_links());
                        cur = next;
                        hops += 1;
                        assert!(hops <= t.diameter(), "walk exceeded the diameter");
                    }
                    assert_eq!(hops, t.distance(a, b), "{a}->{b}");
                }
            }
        }
    }

    /// P = 256 (n = 8 hypercube) construction and routing, in the default
    /// test tier: every pair routes with length = Hamming distance, every
    /// hop flips exactly one address bit, and the precomputed table agrees.
    #[test]
    fn p256_hypercube_construction_and_routing() {
        let t = Topology::hypercube(256);
        assert_eq!(t.radix(), 2);
        assert_eq!(t.dimensions(), 8);
        assert_eq!(t.num_directed_links(), 256 * 8 * 2);
        let table = RouteTable::build(&t);
        let mut path = Vec::new();
        for a in 0..256u32 {
            for b in 0..256u32 {
                t.route(a, b, &mut path);
                assert_eq!(path.len() as u32, (a ^ b).count_ones(), "{a}->{b}");
                assert_eq!(table.route(a, b), path.as_slice(), "{a}->{b}");
                // E-cube: dimensions fixed in ascending order, each hop
                // leaving the node reached by flipping the previous bits.
                let mut cur = a;
                for &l in &path {
                    let node = l / (2 * t.dimensions());
                    let dim = (l / 2) % t.dimensions();
                    assert_eq!(node, cur, "hop leaves the wrong node");
                    assert!(l < t.num_directed_links());
                    cur ^= 1 << dim;
                }
                assert_eq!(cur, b);
            }
        }
    }
}
