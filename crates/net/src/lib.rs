//! # dirtree-net — k-ary n-cube interconnection network
//!
//! The paper evaluates on a **binary n-cube** (hypercube) with wormhole
//! routing, 8-bit-wide links, and 1-cycle switch/wire delay (Table 5). This
//! crate provides:
//!
//! * [`Topology`] — k-ary n-cube node addressing, distances, and
//!   deterministic dimension-order (e-cube) routing;
//! * [`Network`] — a packet-granularity wormhole timing model with optional
//!   per-link contention and per-node injection serialization.
//!
//! The network does not own an event queue: callers ask for a delivery time
//! (which reserves link bandwidth) and schedule the arrival themselves, so
//! the model composes with any discrete-event loop.

pub mod topology;
pub mod vc;
pub mod wormhole;

pub use topology::{NodeId, Topology};
pub use vc::{vc_for, VcClass, NUM_VC_CLASSES};
pub use wormhole::{Fabric, LinkMetrics, Network, NetworkConfig, NetworkStats};
