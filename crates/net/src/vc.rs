//! Virtual-channel classification for coherence traffic.
//!
//! A wormhole network with one buffer per physical link lets messages of
//! different protocol phases block each other head-of-line: a reply stuck
//! behind a request whose handler is itself waiting for that reply is a
//! cyclic buffer dependency — the classic request/reply deadlock. Coherence
//! transactions descend a strict phase order, REQUEST → REPLY → ACK, and
//! never the other way, so giving each phase its own virtual channel per
//! link breaks every such cycle (see DESIGN.md §3 and the Phase-Priority
//! Directory Coherence discussion in PAPERS.md).
//!
//! The mapping is driven by [`MsgClass`] — the same classification the
//! observability layer uses — so every protocol in the registry gets VC
//! assignment for free through `MachineCore`'s shared send path.

use dirtree_sim::metrics::MsgClass;

/// Traffic phases mapped onto virtual channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum VcClass {
    /// Requests and forward-progress commands a controller may react to by
    /// emitting further messages: read/write misses, invalidation and
    /// replacement waves, writebacks, management traffic.
    Request,
    /// Data-carrying replies (including tree adoptions) terminating the
    /// request phase at the original requester.
    Reply,
    /// Terminal acknowledgements (fill acks, inv acks) that never cause
    /// further network traffic.
    Ack,
}

/// Number of distinct [`VcClass`] phases; the natural `vcs` setting for a
/// fully class-separated fabric.
pub const NUM_VC_CLASSES: u32 = 3;

impl VcClass {
    /// Phase of a message class.
    pub fn of(class: MsgClass) -> Self {
        match class {
            MsgClass::DataReply | MsgClass::Adopt => VcClass::Reply,
            MsgClass::Ack | MsgClass::FillAck => VcClass::Ack,
            _ => VcClass::Request,
        }
    }

    /// Channel index of this phase on a fully provisioned link.
    pub fn index(self) -> u32 {
        match self {
            VcClass::Request => 0,
            VcClass::Reply => 1,
            VcClass::Ack => 2,
        }
    }
}

/// The virtual channel a message of `class` travels on when each link has
/// `vcs` channels. Phases collapse downward onto the highest available
/// channel, so `vcs = 1` degenerates to the classic single-channel model
/// and `vcs = 2` separates requests from replies + acks.
pub fn vc_for(class: MsgClass, vcs: u32) -> u32 {
    VcClass::of(class).index().min(vcs.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_cover_every_class() {
        for class in MsgClass::ALL {
            let phase = VcClass::of(class);
            assert!(phase.index() < NUM_VC_CLASSES);
        }
    }

    #[test]
    fn request_reply_ack_are_separated_at_three_channels() {
        assert_eq!(vc_for(MsgClass::ReadReq, 3), 0);
        assert_eq!(vc_for(MsgClass::WriteReq, 3), 0);
        assert_eq!(vc_for(MsgClass::Inv, 3), 0);
        assert_eq!(vc_for(MsgClass::DataReply, 3), 1);
        assert_eq!(vc_for(MsgClass::Adopt, 3), 1);
        assert_eq!(vc_for(MsgClass::Ack, 3), 2);
        assert_eq!(vc_for(MsgClass::FillAck, 3), 2);
    }

    #[test]
    fn single_channel_collapses_every_phase() {
        for class in MsgClass::ALL {
            assert_eq!(vc_for(class, 1), 0);
            assert_eq!(vc_for(class, 0), 0, "degenerate vcs=0 must not underflow");
        }
    }

    #[test]
    fn two_channels_keep_requests_alone() {
        assert_eq!(vc_for(MsgClass::ReadReq, 2), 0);
        assert_eq!(vc_for(MsgClass::DataReply, 2), 1);
        assert_eq!(vc_for(MsgClass::FillAck, 2), 1);
    }
}
