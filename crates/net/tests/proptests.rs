//! Property tests for the network: routing minimality and the FIFO
//! guarantee the coherence protocols rely on.

use dirtree_net::{Network, NetworkConfig, Topology};
use proptest::prelude::*;

proptest! {
    #[test]
    fn routes_are_minimal_and_well_formed(
        dims in 1u32..6,
        pair in (0u32..64, 0u32..64)
    ) {
        let t = Topology::hypercube(1 << dims);
        let n = t.num_nodes();
        let (a, b) = (pair.0 % n, pair.1 % n);
        let mut path = Vec::new();
        t.route(a, b, &mut path);
        prop_assert_eq!(path.len() as u32, t.distance(a, b));
        prop_assert_eq!(t.distance(a, b), (a ^ b).count_ones());
    }

    #[test]
    fn same_pair_messages_never_reorder(
        sends in proptest::collection::vec((0u64..50, 1u32..64), 1..60)
    ) {
        // Messages from node 0 to node 5, injected at nondecreasing times,
        // must arrive in order (the pairwise-FIFO property of DESIGN.md §6).
        let mut net = Network::new(Topology::hypercube(8), NetworkConfig::default());
        let mut now = 0;
        let mut last_arrival = 0;
        for (gap, bytes) in sends {
            now += gap;
            let arrival = net.send(now, 0, 5, bytes);
            prop_assert!(arrival > last_arrival,
                "reorder: arrival {arrival} after {last_arrival}");
            last_arrival = arrival;
        }
    }

    #[test]
    fn contention_never_beats_uncontended_latency(
        sends in proptest::collection::vec((0u32..8, 0u32..8, 1u32..64), 1..80)
    ) {
        let mut contended = Network::new(Topology::hypercube(8), NetworkConfig::default());
        let uncontended = Network::new(
            Topology::hypercube(8),
            NetworkConfig { contention: false, ..NetworkConfig::default() },
        );
        for (i, (src, dst, bytes)) in sends.into_iter().enumerate() {
            let t = i as u64;
            let a = contended.send(t, src, dst, bytes);
            let base = uncontended.base_latency(src, dst, bytes);
            prop_assert!(a >= t + base);
        }
    }

    #[test]
    fn kary_routing_matches_distance(k in 2u32..6, n in 1u32..4, pair in (0u32..1000, 0u32..1000)) {
        let t = Topology::kary_ncube(k, n);
        let nodes = t.num_nodes();
        let (a, b) = (pair.0 % nodes, pair.1 % nodes);
        let mut path = Vec::new();
        t.route(a, b, &mut path);
        prop_assert_eq!(path.len() as u32, t.distance(a, b));
    }
}
