//! # dirtree-sim — deterministic discrete-event simulation substrate
//!
//! This crate is the Proteus-style foundation underneath the multiprocessor
//! simulator: a deterministic event queue, cycle clock, statistics
//! primitives, a fast non-cryptographic hash (for hot per-address tables),
//! and a seedable RNG.
//!
//! Everything here is deliberately free of external dependencies so the
//! whole reproduction is bit-deterministic: events with equal timestamps are
//! dequeued in insertion (FIFO) order, the RNG is SplitMix64-seeded
//! xorshift with explicit seeds, and hashing never observes pointer
//! addresses.

pub mod event;
pub mod hash;
pub mod metrics;
pub mod rng;
pub mod stats;

pub use event::{Cycle, EventQueue};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use metrics::{ClassCounts, Metrics, MetricsSnapshot, MsgClass, NUM_MSG_CLASSES};
pub use rng::SimRng;
pub use stats::{Counter, Histogram, StatTable};
