//! Deterministic, seedable pseudo-random number generator.
//!
//! Workload generation (random graphs for Floyd-Warshall, particle
//! velocities for MP3D, synthetic access patterns) must be reproducible
//! across runs and platforms, so we use xorshift64* seeded through
//! SplitMix64 rather than any environment-derived entropy.

/// xorshift64* generator with SplitMix64 seeding.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scramble so that close seeds give unrelated streams and
        // seed 0 does not get stuck at the xorshift fixed point.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Self {
            state: if z == 0 { 0x4d59_5df4_d0f3_3173 } else { z },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Multiply-shift mapping (Lemire); slight bias is irrelevant for
        // workload generation and it is branch-free.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Fork an independent stream (for per-thread RNGs) deterministically.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(12345);
        let mut b = SimRng::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn range_respects_bound() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(r.gen_range(13) < 13);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut base1 = SimRng::new(100);
        let mut base2 = SimRng::new(100);
        let mut f1 = base1.fork(5);
        let mut f2 = base2.fork(5);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut g = base1.fork(6);
        assert_ne!(f1.next_u64(), g.next_u64());
    }
}
