//! Statistics primitives: counters, log₂-bucketed histograms, and an
//! ordered name → value table used for experiment reports.

use std::fmt;

/// A saturating event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    #[inline]
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Histogram with log₂ buckets: bucket `b` holds samples in
/// `[2^(b-1), 2^b)` for `b ≥ 1` and bucket 0 holds the value 0.
/// Tracks exact sum/count/min/max so means are not bucketed.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn record(&mut self, value: u64) {
        let b = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate p-th percentile (0..=100) from the bucket boundaries.
    /// Exact enough for latency reporting; not used for assertions.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * (p / 100.0)).ceil() as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return if b == 0 { 0 } else { 1u64 << (b - 1) };
            }
        }
        self.max
    }

    /// Raw log₂ bucket counts (index 0 holds the value 0, index `b ≥ 1`
    /// holds `[2^(b-1), 2^b)`), for serialization by the sweep runner.
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Rebuild a histogram from serialized parts. `min` is the *reported*
    /// minimum (0 for an empty histogram), as produced by [`Self::min`].
    pub fn from_parts(buckets: [u64; 65], count: u64, sum: u64, min: u64, max: u64) -> Self {
        Self {
            buckets,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An insertion-ordered `name → f64` table for experiment reports.
///
/// Used by the figure/table binaries to print aligned ASCII tables that
/// mirror the paper's layout.
#[derive(Clone, Debug, Default)]
pub struct StatTable {
    rows: Vec<(String, f64)>,
}

impl StatTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&mut self, name: &str, value: f64) {
        if let Some(row) = self.rows.iter_mut().find(|(n, _)| n == name) {
            row.1 = value;
        } else {
            self.rows.push((name.to_string(), value));
        }
    }

    pub fn get(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn rows(&self) -> &[(String, f64)] {
        &self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for StatTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &self.rows {
            if value.fract() == 0.0 && value.abs() < 1e15 {
                writeln!(f, "{name:width$}  {:>14}", *value as i64)?;
            } else {
                writeln!(f, "{name:width$}  {value:>14.4}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments_and_saturates() {
        let mut c = Counter::default();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_zero_and_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_percentile_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert!(h.percentile(50.0) <= h.percentile(90.0));
        assert!(h.percentile(90.0) <= h.percentile(100.0));
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(7);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 21);
        assert_eq!(a.max(), 9);
        assert_eq!(a.min(), 5);
    }

    #[test]
    fn stat_table_orders_and_updates() {
        let mut t = StatTable::new();
        t.set("alpha", 1.0);
        t.set("beta", 2.0);
        t.set("alpha", 3.0);
        assert_eq!(t.get("alpha"), Some(3.0));
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[0].0, "alpha");
        let out = t.to_string();
        assert!(out.contains("alpha"));
        assert!(out.contains("beta"));
    }
}
