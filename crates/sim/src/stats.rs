//! Statistics primitives: counters, log₂-bucketed histograms, and an
//! ordered name → value table used for experiment reports.

use std::fmt;

/// A saturating event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    #[inline]
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Histogram with log₂ buckets: bucket `b` holds samples in
/// `[2^(b-1), 2^b)` for `b ≥ 1` and bucket 0 holds the value 0.
/// Tracks exact sum/count/min/max so means are not bucketed.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn record(&mut self, value: u64) {
        let b = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate p-th percentile (0..=100) from the bucket boundaries.
    /// Exact enough for latency reporting; not used for assertions.
    ///
    /// The bucket lower bound is clamped into `[min, max]`: with a single
    /// sample of 1000 the covering bucket starts at 512, and reporting a
    /// "p100" below the exact maximum (or a low percentile below the exact
    /// minimum) would be nonsense.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * (p / 100.0)).ceil() as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                let bound = if b == 0 { 0 } else { 1u64 << (b - 1) };
                return bound.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Raw log₂ bucket counts (index 0 holds the value 0, index `b ≥ 1`
    /// holds `[2^(b-1), 2^b)`), for serialization by the sweep runner.
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Rebuild a histogram from serialized parts. `min` is the *reported*
    /// minimum (0 for an empty histogram), as produced by [`Self::min`].
    ///
    /// Debug builds cross-check that the bucket vector is consistent with
    /// `count`, so a sweep record corrupted on disk fails loudly at parse
    /// time instead of poisoning downstream merges.
    pub fn from_parts(buckets: [u64; 65], count: u64, sum: u64, min: u64, max: u64) -> Self {
        debug_assert_eq!(
            buckets.iter().fold(0u64, |a, &n| a.saturating_add(n)),
            count,
            "histogram parts disagree: bucket total != count"
        );
        debug_assert!(count == 0 || min <= max, "histogram parts: min > max");
        Self {
            buckets,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }

    /// Merge another histogram in. The two always agree on bucket geometry
    /// (the log₂ boundaries are fixed, not range-derived), so merging
    /// histograms built from runs of very different magnitudes — e.g.
    /// latency histograms from different machine shapes in one sweep
    /// summary — is just an element-wise sum. All totals saturate, matching
    /// [`Counter`] and `record`, so near-overflow inputs degrade to pinned
    /// values instead of wrapping into nonsense.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An insertion-ordered `name → f64` table for experiment reports.
///
/// Used by the figure/table binaries to print aligned ASCII tables that
/// mirror the paper's layout.
#[derive(Clone, Debug, Default)]
pub struct StatTable {
    rows: Vec<(String, f64)>,
}

impl StatTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&mut self, name: &str, value: f64) {
        if let Some(row) = self.rows.iter_mut().find(|(n, _)| n == name) {
            row.1 = value;
        } else {
            self.rows.push((name.to_string(), value));
        }
    }

    pub fn get(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn rows(&self) -> &[(String, f64)] {
        &self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for StatTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &self.rows {
            if value.fract() == 0.0 && value.abs() < 1e15 {
                writeln!(f, "{name:width$}  {:>14}", *value as i64)?;
            } else {
                writeln!(f, "{name:width$}  {value:>14.4}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments_and_saturates() {
        let mut c = Counter::default();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_zero_and_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_percentile_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert!(h.percentile(50.0) <= h.percentile(90.0));
        assert!(h.percentile(90.0) <= h.percentile(100.0));
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(7);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 21);
        assert_eq!(a.max(), 9);
        assert_eq!(a.min(), 5);
    }

    #[test]
    fn histogram_percentile_clamped_to_observed_range() {
        // A single sample of 1000 lands in bucket [512, 1024): the bucket
        // lower bound (512) is below the true min/max (1000). Every
        // percentile of a one-sample histogram must report that sample.
        let mut h = Histogram::new();
        h.record(1000);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 1000, "p{p}");
        }
        // Low percentiles can never drop below the exact minimum.
        let mut h = Histogram::new();
        h.record(700);
        h.record(900);
        h.record(1000);
        assert!(h.percentile(1.0) >= h.min());
        assert!(h.percentile(100.0) <= h.max());
    }

    #[test]
    fn histogram_merge_saturates_instead_of_wrapping() {
        let mut big = Histogram::new();
        // Build a near-overflow histogram via from_parts with a consistent
        // bucket vector: u64::MAX samples of value 0 in bucket 0.
        let mut buckets = [0u64; 65];
        buckets[0] = u64::MAX;
        let huge = Histogram::from_parts(buckets, u64::MAX, u64::MAX, 0, 0);
        big.merge(&huge);
        big.merge(&huge);
        assert_eq!(big.count(), u64::MAX, "count saturates");
        assert_eq!(big.sum(), u64::MAX, "sum saturates");
        assert_eq!(big.buckets()[0], u64::MAX, "bucket saturates");
    }

    #[test]
    fn histogram_merge_across_magnitudes_and_empty() {
        // Merging an empty histogram must not disturb min (empty min is the
        // internal sentinel, not the reported 0).
        let mut a = Histogram::new();
        a.record(100);
        a.merge(&Histogram::new());
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 100);
        // Merging into an empty histogram adopts the other's range.
        let mut e = Histogram::new();
        e.merge(&a);
        assert_eq!(e.min(), 100);
        assert_eq!(e.count(), 1);
        // Different-magnitude sources (shape-dependent latencies) share the
        // fixed log₂ geometry, so totals and extremes are exact.
        let mut small = Histogram::new();
        small.record(1);
        small.record(2);
        let mut large = Histogram::new();
        large.record(1 << 40);
        small.merge(&large);
        assert_eq!(small.count(), 3);
        assert_eq!(small.min(), 1);
        assert_eq!(small.max(), 1 << 40);
        assert_eq!(small.sum(), 3 + (1u64 << 40));
    }

    #[test]
    fn histogram_from_parts_roundtrip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let r = Histogram::from_parts(*h.buckets(), h.count(), h.sum(), h.min(), h.max());
        assert_eq!(r.count(), h.count());
        assert_eq!(r.sum(), h.sum());
        assert_eq!(r.min(), h.min());
        assert_eq!(r.max(), h.max());
        assert_eq!(r.buckets(), h.buckets());
        // Empty round-trip restores the sentinel min so later merges work.
        let e = Histogram::from_parts([0; 65], 0, 0, 0, 0);
        let mut m = Histogram::new();
        m.record(9);
        let mut merged = e.clone();
        merged.merge(&m);
        assert_eq!(merged.min(), 9, "empty from_parts min must not pin 0");
    }

    #[test]
    #[should_panic(expected = "bucket total != count")]
    #[cfg(debug_assertions)]
    fn histogram_from_parts_rejects_inconsistent_count() {
        let mut buckets = [0u64; 65];
        buckets[1] = 2;
        let _ = Histogram::from_parts(buckets, 3, 10, 1, 4);
    }

    #[test]
    fn stat_table_orders_and_updates() {
        let mut t = StatTable::new();
        t.set("alpha", 1.0);
        t.set("beta", 2.0);
        t.set("alpha", 3.0);
        assert_eq!(t.get("alpha"), Some(3.0));
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[0].0, "alpha");
        let out = t.to_string();
        assert!(out.contains("alpha"));
        assert!(out.contains("beta"));
    }
}
