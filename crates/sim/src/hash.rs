//! A fast, deterministic, non-cryptographic hasher for hot simulator tables.
//!
//! The simulator keys many hot maps by small integers (block addresses, node
//! ids). SipHash — `std`'s default — is needlessly slow for that, and the
//! brief restricts external crates, so this is a reimplementation of the
//! well-known FxHash multiply-rotate scheme used by rustc. HashDoS is not a
//! concern: all keys come from the simulation itself.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 3);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hash_is_deterministic_across_instances() {
        fn h(x: u64) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        }
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_writes_match_padding_behaviour() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 0]);
        // 3-byte and zero-padded 4-byte inputs collide by construction; the
        // simulator only hashes fixed-width keys so this is acceptable.
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn set_deduplicates() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }
}
