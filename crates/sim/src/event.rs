//! Deterministic discrete-event queue.
//!
//! The queue orders events by `(time, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same cycle are therefore delivered in the order they were scheduled,
//! which makes whole-machine simulations bit-reproducible regardless of
//! `BinaryHeap`'s internal tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time, in processor cycles.
pub type Cycle = u64;

struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// ```
/// use dirtree_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
    pushed: u64,
    popped: u64,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: 0,
            pushed: 0,
            popped: 0,
            peak: 0,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (0 before any pop).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedule `event` at absolute cycle `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past (earlier than the last popped event);
    /// causality violations are always simulator bugs.
    pub fn push(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: t={} < now={}",
            time,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { time, seq, event });
        self.peak = self.peak.max(self.heap.len());
    }

    /// Schedule `event` `delay` cycles after the current time.
    pub fn push_after(&mut self, delay: Cycle, event: E) {
        self.push(self.now + delay, event);
    }

    /// Remove and return the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Remove every event sharing the earliest timestamp, appending them to
    /// `out` in `(time, seq)` order, and advance the clock to that
    /// timestamp. Returns the number of events drained (0 when empty).
    ///
    /// Equivalent to repeated [`pop`](Self::pop) calls: events pushed while
    /// the caller processes the batch carry later sequence numbers than
    /// everything drained here, so they sort after the batch exactly as
    /// they would under one-at-a-time popping — the documented
    /// `(time, seq)` FIFO order is preserved verbatim.
    pub fn pop_batch(&mut self, out: &mut Vec<(Cycle, E)>) -> usize {
        let Some((time, event)) = self.pop() else {
            return 0;
        };
        out.push((time, event));
        let mut drained = 1;
        while self.peek_time() == Some(time) {
            out.push(self.pop().expect("peeked entry vanished"));
            drained += 1;
        }
        drained
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (diagnostic).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever delivered (diagnostic).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Deepest the queue has ever been (diagnostic; deterministic, so safe
    /// to export in sweep records).
    pub fn peak_len(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(5, ());
        q.push(5, ());
        q.push(9, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 9);
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push(10, "first");
        q.pop();
        q.push_after(5, "second");
        assert_eq!(q.pop(), Some((15, "second")));
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(3, ());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(1, 1u32);
        q.push(4, 4);
        assert_eq!(q.pop(), Some((1, 1)));
        q.push(2, 2);
        q.push(3, 3);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((4, 4)));
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.push(2, ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peak_len_records_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.push(1, ());
        q.push(2, ());
        q.push(3, ());
        q.pop();
        q.pop();
        q.push(4, ());
        assert_eq!(q.peak_len(), 3, "peak survives draining");
    }

    #[test]
    fn pop_batch_drains_exactly_one_timestamp_in_fifo_order() {
        let mut q = EventQueue::new();
        q.push(7, "a");
        q.push(5, "x");
        q.push(7, "b");
        q.push(5, "y");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), 2);
        assert_eq!(out, vec![(5, "x"), (5, "y")]);
        assert_eq!(q.now(), 5);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), 2);
        assert_eq!(out, vec![(7, "a"), (7, "b")]);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn pop_batch_interleaves_identically_to_single_pops() {
        // Drive two queues with the same pushes — one popped singly, one in
        // batches, with same-cycle re-pushes during batch processing — and
        // demand the identical delivery order.
        let script: &[(Cycle, u32)] = &[(1, 0), (1, 1), (2, 2), (1, 3), (3, 4), (2, 5)];
        let mut single = EventQueue::new();
        let mut batched = EventQueue::new();
        for &(t, v) in script {
            single.push(t, v);
            batched.push(t, v);
        }
        let mut singles = Vec::new();
        while let Some((t, v)) = single.pop() {
            // Re-push one follow-up at the same cycle for even values < 100.
            if v % 2 == 0 && v < 100 {
                single.push(t, v + 100);
            }
            singles.push((t, v));
        }
        let mut batches = Vec::new();
        let mut buf = Vec::new();
        while batched.pop_batch(&mut buf) > 0 {
            for (t, v) in buf.drain(..) {
                if v % 2 == 0 && v < 100 {
                    batched.push(t, v + 100);
                }
                batches.push((t, v));
            }
        }
        assert_eq!(singles, batches);
    }
}
