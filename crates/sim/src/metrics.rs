//! Protocol observability: per-class message metrics, transaction latency
//! histograms, and invalidation-wave geometry.
//!
//! The [`Metrics`] sink is fed by the machine's single message-emission
//! hook (`MachineCore::send` in `dirtree-machine`) and by the per-op
//! completion path, so every protocol is instrumented without per-protocol
//! edits. The whole collection path is gated behind the `trace` cargo
//! feature: with the feature off, [`Metrics`] is a zero-sized type whose
//! methods are empty `#[inline]` bodies — the hot path compiles to the
//! exact code it had before the layer existed.
//!
//! [`MetricsSnapshot`] — the plain-data export consumed by the sweep
//! runner's JSON records — is *always* a real struct (empty/default when
//! the feature is off) so downstream record schemas do not change shape
//! with the feature.
//!
//! This crate deliberately knows nothing about the protocol message enum:
//! `dirtree-core` maps its `MsgKind` into the coarse [`MsgClass`]
//! vocabulary below (`MsgKind::class()`), which is what the paper's
//! quantitative claims are phrased in.

use crate::stats::Histogram;

/// Coarse protocol-message classification shared by all eleven protocols.
///
/// The first seven classes are the vocabulary of the paper's Table 1
/// argument (request / data / invalidation / acknowledgement /
/// replacement); the rest keep every remaining message kind countable so
/// class totals always sum to the machine's message total.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Read-miss requests (and their forwards: bus reads, list supplies).
    ReadReq,
    /// Write-miss / upgrade requests.
    WriteReq,
    /// Data-carrying replies with no tree hand-off.
    DataReply,
    /// Data replies that also hand sharing-tree pointers to the requester
    /// (Dir_iTree_k adoption).
    Adopt,
    /// Write-propagation wave messages: invalidations (or updates) walking
    /// the sharing structure.
    Inv,
    /// Acknowledgements (invalidation, update, purge, fix-up).
    Ack,
    /// Replacement traffic: silent subtree kills and the E12 ablation's
    /// home notifications.
    ReplaceInv,
    /// Writebacks and owner recalls.
    Writeback,
    /// Off-critical-path read-fill acknowledgements (excluded from the
    /// paper's Table 1 counts).
    FillAck,
    /// Sharing-structure management (list attach/unlink, tree repair).
    Mgmt,
}

/// Number of [`MsgClass`] variants (array-table size).
pub const NUM_MSG_CLASSES: usize = 10;

impl MsgClass {
    /// Every class, in stable serialization order.
    pub const ALL: [MsgClass; NUM_MSG_CLASSES] = [
        MsgClass::ReadReq,
        MsgClass::WriteReq,
        MsgClass::DataReply,
        MsgClass::Adopt,
        MsgClass::Inv,
        MsgClass::Ack,
        MsgClass::ReplaceInv,
        MsgClass::Writeback,
        MsgClass::FillAck,
        MsgClass::Mgmt,
    ];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            MsgClass::ReadReq => 0,
            MsgClass::WriteReq => 1,
            MsgClass::DataReply => 2,
            MsgClass::Adopt => 3,
            MsgClass::Inv => 4,
            MsgClass::Ack => 5,
            MsgClass::ReplaceInv => 6,
            MsgClass::Writeback => 7,
            MsgClass::FillAck => 8,
            MsgClass::Mgmt => 9,
        }
    }

    /// Stable label used in the metrics JSON schema.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::ReadReq => "read_req",
            MsgClass::WriteReq => "write_req",
            MsgClass::DataReply => "data_reply",
            MsgClass::Adopt => "adopt",
            MsgClass::Inv => "inv",
            MsgClass::Ack => "ack",
            MsgClass::ReplaceInv => "replace_inv",
            MsgClass::Writeback => "writeback",
            MsgClass::FillAck => "fill_ack",
            MsgClass::Mgmt => "mgmt",
        }
    }

    /// Inverse of [`MsgClass::label`] (JSON parsing).
    pub fn from_label(label: &str) -> Option<MsgClass> {
        MsgClass::ALL.into_iter().find(|c| c.label() == label)
    }
}

/// Per-class message totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Messages of this class injected into the network.
    pub count: u64,
    /// Wire bytes those messages occupied.
    pub bytes: u64,
    /// How many of them were bound for a home's directory controller.
    pub to_dir: u64,
}

/// How many of the busiest blocks the snapshot retains.
pub const TOP_BLOCKS: usize = 8;

/// Plain-data export of a run's metrics: always available (default/empty
/// when the `trace` feature is off) so record schemas are feature-stable.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Message totals per [`MsgClass`], indexed by [`MsgClass::index`].
    pub classes: [ClassCounts; NUM_MSG_CLASSES],
    /// Read-transaction latency (issue → completion), cycles.
    pub read_tx_latency: Histogram,
    /// Write-transaction latency (issue → completion), cycles.
    pub write_tx_latency: Histogram,
    /// Tree levels traversed by each write's invalidation/update wave.
    pub inv_wave_depth: Histogram,
    /// Directory-bound acknowledgements collected per write wave.
    pub inv_wave_acks: Histogram,
    /// Directed network links (1 for the bus fabric).
    pub links: u64,
    /// Busy cycles of the single most utilized link.
    pub max_link_busy: u64,
    /// Busy cycles summed over every link.
    pub total_link_busy: u64,
    /// Injection-channel backlog (cycles) sampled at each send.
    pub inject_queue: Histogram,
    /// Per-link backlog (cycles) sampled as each packet head arrives.
    pub link_queue: Histogram,
    /// Backlog samples partitioned per virtual channel (empty in the
    /// single-channel network model, so pre-VC snapshots are unchanged).
    pub vc_queue: Vec<Histogram>,
    /// The [`TOP_BLOCKS`] busiest blocks as `(addr, messages)`, sorted by
    /// message count (descending) then address — deterministic.
    pub top_blocks: Vec<(u64, u64)>,
}

impl MetricsSnapshot {
    /// Messages summed over all classes.
    pub fn total_messages(&self) -> u64 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Directory-bound messages summed over all classes.
    pub fn total_to_dir(&self) -> u64 {
        self.classes.iter().map(|c| c.to_dir).sum()
    }

    /// Counts for one class.
    pub fn class(&self, class: MsgClass) -> ClassCounts {
        self.classes[class.index()]
    }
}

/// Per-write invalidation-wave bookkeeping (feature `trace` only).
#[cfg(feature = "trace")]
#[derive(Default)]
struct WaveState {
    /// Tree level at which each node received the wave (home fan-out = 1).
    levels: crate::hash::FxHashMap<u32, u64>,
    max_level: u64,
    /// Directory-bound acks the home collected for this wave.
    acks: u64,
    /// Wave messages sent (0 ⇒ the write invalidated nobody; not recorded).
    invs: u64,
}

/// The metrics sink. With the `trace` feature enabled this accumulates
/// per-class counts, per-block tables, latency histograms, and wave
/// geometry; without it, it is a zero-sized no-op (see the module docs).
#[cfg(feature = "trace")]
#[derive(Default)]
pub struct Metrics {
    classes: [ClassCounts; NUM_MSG_CLASSES],
    read_tx: Histogram,
    write_tx: Histogram,
    wave_depth: Histogram,
    wave_acks: Histogram,
    per_block: crate::hash::FxHashMap<u64, [ClassCounts; NUM_MSG_CLASSES]>,
    waves: crate::hash::FxHashMap<u64, WaveState>,
}

#[cfg(feature = "trace")]
impl Metrics {
    /// Record one protocol message (called from the machine's shared send
    /// hook). `to_dir` marks directory-controller-bound messages.
    pub fn on_msg(&mut self, class: MsgClass, addr: u64, bytes: u64, to_dir: bool) {
        let i = class.index();
        let dir = to_dir as u64;
        self.classes[i].count += 1;
        self.classes[i].bytes += bytes;
        self.classes[i].to_dir += dir;
        let block = self.per_block.entry(addr).or_default();
        block[i].count += 1;
        block[i].bytes += bytes;
        block[i].to_dir += dir;
    }

    /// A wave message ([`MsgClass::Inv`]) left `src` for `dst`. Wave depth
    /// is the tree level at which the message is *received*: home-originated
    /// fan-out lands at level 1, a forward lands one level below its
    /// sender's (unknown senders — e.g. the writer starting a list chain —
    /// count as level 0).
    pub fn on_inv(&mut self, addr: u64, src: u32, dst: u32, from_home: bool) {
        let w = self.waves.entry(addr).or_default();
        let level = if from_home {
            1
        } else {
            w.levels.get(&src).copied().unwrap_or(0) + 1
        };
        let e = w.levels.entry(dst).or_insert(0);
        *e = (*e).max(level);
        w.max_level = w.max_level.max(level);
        w.invs += 1;
    }

    /// The home collected a directory-bound wave acknowledgement.
    pub fn on_home_ack(&mut self, addr: u64) {
        self.waves.entry(addr).or_default().acks += 1;
    }

    /// A read transaction completed.
    pub fn on_read_done(&mut self, _addr: u64, latency: u64) {
        self.read_tx.record(latency);
    }

    /// A write transaction completed: record its latency and close out the
    /// block's invalidation wave (depth and home-ack count).
    pub fn on_write_done(&mut self, addr: u64, latency: u64) {
        self.write_tx.record(latency);
        if let Some(w) = self.waves.remove(&addr) {
            if w.invs > 0 || w.acks > 0 {
                self.wave_depth.record(w.max_level);
                self.wave_acks.record(w.acks);
            }
        }
    }

    /// Per-class totals (test/inspection API).
    pub fn class_counts(&self) -> &[ClassCounts; NUM_MSG_CLASSES] {
        &self.classes
    }

    /// Per-class counts for one block (zeros if the block saw no traffic).
    pub fn block_counts(&self, addr: u64) -> [ClassCounts; NUM_MSG_CLASSES] {
        self.per_block.get(&addr).copied().unwrap_or_default()
    }

    /// Export the accumulated metrics. Network link fields are left at
    /// their defaults; the machine fills them from the network's
    /// [`link metrics`](MetricsSnapshot::links) after the run.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut top: Vec<(u64, u64)> = self
            .per_block
            .iter()
            .map(|(a, c)| (*a, c.iter().map(|cc| cc.count).sum()))
            .collect();
        top.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        top.truncate(TOP_BLOCKS);
        MetricsSnapshot {
            classes: self.classes,
            read_tx_latency: self.read_tx.clone(),
            write_tx_latency: self.write_tx.clone(),
            inv_wave_depth: self.wave_depth.clone(),
            inv_wave_acks: self.wave_acks.clone(),
            top_blocks: top,
            ..MetricsSnapshot::default()
        }
    }
}

/// Feature-off stand-in: a zero-sized type whose methods compile to
/// nothing, so instrumented call sites cost nothing when tracing is
/// disabled (pinned by `zero_sized_when_disabled` below).
#[cfg(not(feature = "trace"))]
#[derive(Default)]
pub struct Metrics;

#[cfg(not(feature = "trace"))]
impl Metrics {
    #[inline(always)]
    pub fn on_msg(&mut self, _class: MsgClass, _addr: u64, _bytes: u64, _to_dir: bool) {}

    #[inline(always)]
    pub fn on_inv(&mut self, _addr: u64, _src: u32, _dst: u32, _from_home: bool) {}

    #[inline(always)]
    pub fn on_home_ack(&mut self, _addr: u64) {}

    #[inline(always)]
    pub fn on_read_done(&mut self, _addr: u64, _latency: u64) {}

    #[inline(always)]
    pub fn on_write_done(&mut self, _addr: u64, _latency: u64) {}

    /// Always-empty snapshot, keeping record schemas feature-stable.
    #[inline]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels_roundtrip_and_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for (i, c) in MsgClass::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i, "ALL must follow index order");
            assert!(seen.insert(c.label()), "duplicate label {}", c.label());
            assert_eq!(MsgClass::from_label(c.label()), Some(c));
        }
        assert_eq!(seen.len(), NUM_MSG_CLASSES);
        assert_eq!(MsgClass::from_label("nonsense"), None);
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_to_dir(), 0);
        assert_eq!(s.read_tx_latency.count(), 0);
        assert!(s.top_blocks.is_empty());
    }

    /// The acceptance criterion for the feature-off path: the sink is a
    /// ZST, so instrumented structs grow by zero bytes and the no-op
    /// methods have nothing to touch.
    #[cfg(not(feature = "trace"))]
    #[test]
    fn zero_sized_when_disabled() {
        assert_eq!(std::mem::size_of::<Metrics>(), 0);
        let mut m = Metrics;
        m.on_msg(MsgClass::Inv, 1, 8, true);
        m.on_inv(1, 0, 1, true);
        m.on_home_ack(1);
        m.on_write_done(1, 10);
        let s = m.snapshot();
        assert_eq!(s.total_messages(), 0, "disabled sink records nothing");
    }

    #[cfg(feature = "trace")]
    mod enabled {
        use super::*;

        #[test]
        fn per_class_and_per_block_counts_accumulate() {
            let mut m = Metrics::default();
            m.on_msg(MsgClass::ReadReq, 5, 8, true);
            m.on_msg(MsgClass::DataReply, 5, 16, false);
            m.on_msg(MsgClass::ReadReq, 9, 8, true);
            let c = m.class_counts();
            assert_eq!(c[MsgClass::ReadReq.index()].count, 2);
            assert_eq!(c[MsgClass::ReadReq.index()].to_dir, 2);
            assert_eq!(c[MsgClass::DataReply.index()].bytes, 16);
            let b5 = m.block_counts(5);
            assert_eq!(b5[MsgClass::ReadReq.index()].count, 1);
            assert_eq!(b5[MsgClass::DataReply.index()].count, 1);
            assert_eq!(m.block_counts(7), [ClassCounts::default(); NUM_MSG_CLASSES]);
            let s = m.snapshot();
            assert_eq!(s.total_messages(), 3);
            assert_eq!(s.total_to_dir(), 2);
        }

        #[test]
        fn wave_depth_follows_forwarding_chain() {
            let mut m = Metrics::default();
            // home → root 1 (level 1), root 1 → pair 3 (2), 3 → leaf 4 (3).
            m.on_inv(7, 0, 1, true);
            m.on_inv(7, 1, 3, false);
            m.on_inv(7, 3, 4, false);
            m.on_home_ack(7);
            m.on_home_ack(7);
            m.on_write_done(7, 100);
            let s = m.snapshot();
            assert_eq!(s.inv_wave_depth.max(), 3);
            assert_eq!(s.inv_wave_acks.max(), 2);
            assert_eq!(s.write_tx_latency.count(), 1);
        }

        #[test]
        fn waves_are_per_block_and_cleared_at_write_completion() {
            let mut m = Metrics::default();
            m.on_inv(1, 0, 1, true);
            m.on_inv(2, 0, 1, true);
            m.on_inv(2, 1, 2, false);
            m.on_write_done(2, 10);
            m.on_write_done(1, 10);
            let s = m.snapshot();
            assert_eq!(s.inv_wave_depth.max(), 2);
            assert_eq!(s.inv_wave_depth.count(), 2);
            // A second write to block 2 with no invalidations records no
            // wave sample (the wave state was consumed above).
            let mut m2 = Metrics::default();
            m2.on_write_done(2, 10);
            assert_eq!(m2.snapshot().inv_wave_depth.count(), 0);
        }

        #[test]
        fn unknown_sender_starts_a_chain_at_level_one() {
            let mut m = Metrics::default();
            // A list writer (never itself a wave recipient) starts the
            // chain: writer → n1 is level 1, n1 → n2 level 2, …
            m.on_inv(3, 9, 1, false);
            m.on_inv(3, 1, 2, false);
            m.on_write_done(3, 5);
            assert_eq!(m.snapshot().inv_wave_depth.max(), 2);
        }

        #[test]
        fn top_blocks_are_sorted_bounded_and_deterministic() {
            let mut m = Metrics::default();
            for addr in 0..20u64 {
                for _ in 0..=addr {
                    m.on_msg(MsgClass::Mgmt, addr, 8, false);
                }
            }
            let s = m.snapshot();
            assert_eq!(s.top_blocks.len(), TOP_BLOCKS);
            assert_eq!(s.top_blocks[0], (19, 20));
            for w in s.top_blocks.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }
}
