//! Property tests for the simulation substrate.

use dirtree_sim::{EventQueue, SimRng};
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..500)) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut q = EventQueue::new();
        for (i, &t) in sorted.iter().enumerate() {
            q.push(t, i);
        }
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn equal_time_events_preserve_insertion_order(n in 1usize..200, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(t, i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_is_a_stable_priority_queue(
        ops in proptest::collection::vec((0u64..10_000, any::<bool>()), 1..300)
    ) {
        // Model: compare against a sorted reference built incrementally.
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        let mut seq = 0usize;
        for (t, do_pop) in ops {
            if do_pop {
                let got = q.pop();
                reference.sort_by_key(|&(t, s)| (t, s));
                let want = if reference.is_empty() {
                    None
                } else {
                    Some(reference.remove(0))
                };
                prop_assert_eq!(got, want);
            } else {
                let t = t.max(q.now());
                q.push(t, seq);
                reference.push((t, seq));
                seq += 1;
            }
        }
    }

    #[test]
    fn rng_range_is_always_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.gen_range(bound) < bound);
        }
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut v in proptest::collection::vec(0u32..100, 0..100)) {
        let mut r = SimRng::new(seed);
        let mut shuffled = v.clone();
        r.shuffle(&mut shuffled);
        shuffled.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(shuffled, v);
    }
}
