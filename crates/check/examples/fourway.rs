//! Four-way reduction ablation: explore one FullMap shape with each
//! combination of the symmetry and sleep-set reductions and print the
//! work counters side by side — the measurement harness behind the
//! reduction numbers quoted in DESIGN.md §22.
//!
//! Usage:
//!   cargo run --release -p dirtree-check --example fourway -- \
//!     NODES BLOCKS ADDR_STRIDE FUEL [PROTO]
//!
//! A stride equal to NODES homes every block at node 0 (largest
//! home-fixing symmetry group); BLOCKS ≥ 2 gives the sleep sets
//! independent pairs to prune. PROTO defaults to `fullmap`; tree shapes
//! spell out as `tree:POINTERS:ARITY`, `update:POINTERS:ARITY`, or
//! `adaptive:POINTERS:ARITY`.

use dirtree_check::{explore, CheckConfig};
use dirtree_core::protocol::{build_protocol, ProtocolKind, ProtocolParams};

fn parse_kind(s: &str) -> ProtocolKind {
    if s.eq_ignore_ascii_case("fullmap") {
        return ProtocolKind::FullMap;
    }
    let parts: Vec<&str> = s.split(':').collect();
    let [family, pointers, arity] = parts[..] else {
        panic!("PROTO must be `fullmap` or FAMILY:POINTERS:ARITY, got {s:?}");
    };
    let pointers: u32 = pointers.parse().expect("POINTERS must be numeric");
    let arity: u32 = arity.parse().expect("ARITY must be numeric");
    match family {
        "tree" => ProtocolKind::DirTree { pointers, arity },
        "update" => ProtocolKind::DirTreeUpdate { pointers, arity },
        "adaptive" => ProtocolKind::DirTreeAdaptive { pointers, arity },
        other => panic!("unknown protocol family {other:?}"),
    }
}

fn main() {
    let a: Vec<String> = std::env::args().collect();
    let nodes: u32 = a[1].parse().unwrap();
    let blocks: u64 = a[2].parse().unwrap();
    let stride: u64 = a[3].parse().unwrap();
    let fuel: u32 = a[4].parse().unwrap();
    let kind = parse_kind(a.get(5).map_or("fullmap", String::as_str));
    let factory = || build_protocol(kind, ProtocolParams::default());
    for (sym, por) in [(true, true), (true, false), (false, true), (false, false)] {
        let mut cfg = CheckConfig::small(nodes, blocks);
        cfg.addr_stride = stride;
        cfg.fuel = fuel;
        cfg.symmetry = sym;
        cfg.por = por;
        let t = std::time::Instant::now();
        let out = explore(&cfg, factory);
        let s = out.stats().unwrap();
        println!(
            "sym={sym:5} por={por:5}: states={:8} explored={:9} dedup={:9} pruned={:8} |G|={} pass={} [{:.2?}]",
            out.states(), s.explored, s.deduped, s.sleep_pruned, s.sym_group, out.is_pass(), t.elapsed()
        );
    }
}
