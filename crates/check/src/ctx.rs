//! The model checker's [`ProtoCtx`]: an abstract machine with explicit
//! nondeterminism.
//!
//! Where the cycle-level machine resolves every race by timestamp, the
//! checker keeps all pending work visible — per-(src,dst) FIFO network
//! channels, per-node local redelivery queues, and not-yet-retired
//! completions — and lets the explorer pick *which* pending event fires
//! next. The network model matches the simulator's ordering guarantee:
//! messages between one (src, dst) pair arrive in send order (protocols
//! rely on this, e.g. `WbEvict` vs. a later request), but channels are
//! mutually unordered.
//!
//! Timing is erased: `now` ticks once per applied choice (so replay traces
//! read chronologically) but is excluded from the state digest, `occupy`
//! is a no-op, and `redeliver` delays collapse to FIFO order.

use dirtree_core::ctx::{ProtoCtx, ProtoEvent};
use dirtree_core::fingerprint::digest_map;
use dirtree_core::msg::Msg;
use dirtree_core::types::{Addr, LineState, NodeId, OpKind};
use dirtree_core::verify::Verifier;
use dirtree_sim::{Cycle, FxHashMap};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

/// Explicit-nondeterminism protocol context.
#[derive(Clone)]
pub struct CheckCtx {
    nodes: u32,
    /// Logical step counter (one per applied choice). Not digested: it
    /// never influences the protocols under check.
    pub(crate) now: Cycle,
    /// Per-(src, dst) FIFO channels, indexed `src * nodes + dst`.
    channels: Vec<VecDeque<Msg>>,
    /// Per-node local redelivery queues (`ProtoCtx::redeliver`).
    local: Vec<VecDeque<Msg>>,
    /// All resident cache tags.
    lines: FxHashMap<(NodeId, Addr), LineState>,
    /// Completion announced by the protocol but not yet retired (≤ 1 per
    /// node: each processor has at most one outstanding access).
    pub(crate) completion: Vec<Option<(Addr, OpKind)>>,
    /// Outstanding processor miss per node.
    pub(crate) outstanding: Vec<Option<(Addr, OpKind)>>,
    /// Remaining processor operations per node (bounds the state space).
    pub(crate) fuel: Vec<u32>,
    /// The shared sequential-consistency witness.
    pub(crate) verifier: Verifier,
    /// Protocol misbehavior detected inside a `ProtoCtx` callback (which
    /// cannot return an error); surfaced by the next post-choice check.
    pub(crate) flagged: Option<String>,
    /// Send log for counterexample replay (`None` during exploration).
    pub(crate) send_log: Option<Vec<(Cycle, NodeId, Msg)>>,
}

impl CheckCtx {
    pub fn new(nodes: u32, fuel: u32) -> Self {
        let n = nodes as usize;
        Self {
            nodes,
            now: 0,
            channels: vec![VecDeque::new(); n * n],
            local: vec![VecDeque::new(); n],
            lines: FxHashMap::default(),
            completion: vec![None; n],
            outstanding: vec![None; n],
            fuel: vec![fuel; n],
            verifier: Verifier::new(),
            flagged: None,
            send_log: None,
        }
    }

    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    #[inline]
    fn ch(&self, src: NodeId, dst: NodeId) -> usize {
        src as usize * self.nodes as usize + dst as usize
    }

    pub fn channel_len(&self, src: NodeId, dst: NodeId) -> usize {
        self.channels[self.ch(src, dst)].len()
    }

    pub fn peek_channel(&self, src: NodeId, dst: NodeId) -> Option<&Msg> {
        self.channels[self.ch(src, dst)].front()
    }

    pub fn pop_channel(&mut self, src: NodeId, dst: NodeId) -> Option<Msg> {
        let i = self.ch(src, dst);
        self.channels[i].pop_front()
    }

    pub fn local_len(&self, node: NodeId) -> usize {
        self.local[node as usize].len()
    }

    pub fn peek_local(&self, node: NodeId) -> Option<&Msg> {
        self.local[node as usize].front()
    }

    pub fn pop_local(&mut self, node: NodeId) -> Option<Msg> {
        self.local[node as usize].pop_front()
    }

    pub(crate) fn set_line(&mut self, node: NodeId, addr: Addr, state: LineState) {
        self.lines.insert((node, addr), state);
    }

    pub(crate) fn remove_line(&mut self, node: NodeId, addr: Addr) -> Option<LineState> {
        self.lines.remove(&(node, addr))
    }

    /// Is any message or un-retired completion pending anywhere?
    pub fn has_pending_event(&self) -> bool {
        self.channels.iter().any(|q| !q.is_empty())
            || self.local.iter().any(|q| !q.is_empty())
            || self.completion.iter().any(Option::is_some)
    }

    /// Fully drained: no messages, no completions, no outstanding misses.
    pub fn quiescent(&self) -> bool {
        !self.has_pending_event() && self.outstanding.iter().all(Option::is_none)
    }

    /// Nodes (≠ `except`) currently holding a readable copy of `addr`.
    pub fn other_holders(&self, addr: Addr, except: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .lines
            .iter()
            .filter(|(&(n, a), st)| a == addr && n != except && st.readable())
            .map(|(&(n, _), _)| n)
            .collect();
        v.sort_unstable();
        v
    }

    /// All `(node, addr)` pairs with a readable copy.
    pub fn survivors(&self) -> Vec<(NodeId, Addr)> {
        self.lines
            .iter()
            .filter(|(_, st)| st.readable())
            .map(|(&k, _)| k)
            .collect()
    }

    pub fn enable_send_log(&mut self) {
        self.send_log = Some(Vec::new());
    }

    pub fn send_log(&self) -> &[(Cycle, NodeId, Msg)] {
        self.send_log.as_deref().unwrap_or(&[])
    }

    /// The context with every node id mapped through `perm`
    /// (`perm[old] = new`): channel `(s, d)` becomes `(perm[s], perm[d])`
    /// with its messages relabeled in order, per-node queues and arrays are
    /// reindexed, cache tags move with their node, and the witness maps its
    /// copy ownership. `flagged` and `send_log` are exploration-path
    /// metadata, not state, and start clear in the clone. Used by the model
    /// checker's symmetry reduction; only meaningful alongside
    /// [`dirtree_core::protocol::Protocol::relabeled`].
    pub fn relabeled(&self, perm: &[NodeId]) -> CheckCtx {
        let n = self.nodes as usize;
        let mut channels = vec![VecDeque::new(); n * n];
        for src in 0..n {
            for dst in 0..n {
                let q = &self.channels[src * n + dst];
                if !q.is_empty() {
                    channels[perm[src] as usize * n + perm[dst] as usize] =
                        q.iter().map(|m| m.relabeled(perm)).collect();
                }
            }
        }
        let mut local = vec![VecDeque::new(); n];
        let mut completion = vec![None; n];
        let mut outstanding = vec![None; n];
        let mut fuel = vec![0; n];
        for node in 0..n {
            let to = perm[node] as usize;
            local[to] = self.local[node].iter().map(|m| m.relabeled(perm)).collect();
            completion[to] = self.completion[node];
            outstanding[to] = self.outstanding[node];
            fuel[to] = self.fuel[node];
        }
        CheckCtx {
            nodes: self.nodes,
            now: self.now,
            channels,
            local,
            lines: self
                .lines
                .iter()
                .map(|(&(node, addr), &st)| ((perm[node as usize], addr), st))
                .collect(),
            completion,
            outstanding,
            fuel,
            verifier: self.verifier.relabeled(perm),
            flagged: None,
            send_log: None,
        }
    }

    /// Canonical digest of everything that can influence future behavior.
    /// `now`, `flagged`, and `send_log` are deliberately excluded: the
    /// first never feeds back into the protocols under check, the other
    /// two exist only on already-failing or replaying states.
    pub fn digest(&self, h: &mut dyn Hasher) {
        let mut h = h;
        h.write_u32(self.nodes);
        digest_map(h, &self.lines);
        for q in &self.channels {
            h.write_usize(q.len());
            for m in q {
                m.hash(&mut h);
            }
        }
        for q in &self.local {
            h.write_usize(q.len());
            for m in q {
                m.hash(&mut h);
            }
        }
        self.completion.hash(&mut h);
        self.outstanding.hash(&mut h);
        self.fuel.hash(&mut h);
        self.verifier.digest(h);
    }
}

impl ProtoCtx for CheckCtx {
    fn now(&self) -> Cycle {
        self.now
    }

    fn num_nodes(&self) -> u32 {
        self.nodes
    }

    fn home_of(&self, addr: Addr) -> NodeId {
        (addr % self.nodes as u64) as NodeId
    }

    fn send(&mut self, dst: NodeId, msg: Msg) {
        if let Some(log) = &mut self.send_log {
            log.push((self.now, dst, msg.clone()));
        }
        let i = self.ch(msg.src, dst);
        self.channels[i].push_back(msg);
    }

    fn redeliver(&mut self, node: NodeId, msg: Msg, _delay: Cycle) {
        // Local wake-up: delays collapse to per-node FIFO order.
        self.local[node as usize].push_back(msg);
    }

    fn occupy(&mut self, _node: NodeId, _cycles: Cycle) {}

    fn line_state(&self, node: NodeId, addr: Addr) -> LineState {
        self.lines
            .get(&(node, addr))
            .copied()
            .unwrap_or(LineState::NotPresent)
    }

    fn set_line_state(&mut self, node: NodeId, addr: Addr, state: LineState) {
        if !self.lines.contains_key(&(node, addr)) {
            self.flagged = Some(format!(
                "protocol set state {state:?} on non-resident line ({node}, {addr:#x})"
            ));
            return;
        }
        self.lines.insert((node, addr), state);
    }

    fn complete(&mut self, node: NodeId, addr: Addr, op: OpKind) {
        if let Some(prev) = self.completion[node as usize] {
            self.flagged = Some(format!(
                "protocol completed ({addr:#x}, {op:?}) at node {node} while \
                 completion {prev:?} was still pending"
            ));
            return;
        }
        self.completion[node as usize] = Some((addr, op));
    }

    fn note(&mut self, _event: ProtoEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirtree_core::msg::MsgKind;

    fn msg(src: NodeId, addr: Addr) -> Msg {
        Msg {
            addr,
            src,
            kind: MsgKind::ReadReq { requester: src },
        }
    }

    #[test]
    fn channels_are_per_pair_fifo() {
        let mut c = CheckCtx::new(3, 2);
        c.send(1, msg(0, 10));
        c.send(1, msg(0, 11));
        c.send(1, msg(2, 12));
        assert_eq!(c.channel_len(0, 1), 2);
        assert_eq!(c.channel_len(2, 1), 1);
        assert_eq!(c.pop_channel(0, 1).unwrap().addr, 10);
        assert_eq!(c.pop_channel(0, 1).unwrap().addr, 11);
        assert_eq!(c.pop_channel(2, 1).unwrap().addr, 12);
        assert!(c.quiescent());
    }

    #[test]
    fn digest_ignores_now_but_not_messages() {
        fn d(c: &CheckCtx) -> u64 {
            let mut h = dirtree_sim::hash::FxHasher::default();
            c.digest(&mut h);
            h.finish()
        }
        let mut a = CheckCtx::new(2, 2);
        let mut b = CheckCtx::new(2, 2);
        a.now = 57;
        assert_eq!(d(&a), d(&b));
        b.send(1, msg(0, 5));
        assert_ne!(d(&a), d(&b));
    }

    #[test]
    fn double_completion_is_flagged() {
        let mut c = CheckCtx::new(2, 2);
        c.complete(0, 1, OpKind::Read);
        assert!(c.flagged.is_none());
        c.complete(0, 1, OpKind::Read);
        assert!(c.flagged.is_some());
    }
}
