//! Human-readable rendering of exploration results.

use crate::explore::{CheckConfig, CheckOutcome, Counterexample};
use crate::replay::ReplayReport;

/// One-line summary for a pass/limit result, or the full counterexample
/// report (steps, message trace, trace-ring drop count, replay verdict)
/// for a violation.
pub fn render(
    name: &str,
    cfg: &CheckConfig,
    outcome: &CheckOutcome,
    replay: Option<&ReplayReport>,
) -> String {
    let shape = format!("{name} P={} B={} fuel={}", cfg.nodes, cfg.blocks, cfg.fuel);
    match outcome {
        CheckOutcome::Pass {
            states,
            depth,
            stats,
        } => {
            format!(
                "PASS  {shape}: {states} states exhausted, max depth {depth} \
                 (explored {} dedup {} sleep-pruned {} |G|={})",
                stats.explored, stats.deduped, stats.sleep_pruned, stats.sym_group
            )
        }
        CheckOutcome::ResourceLimit {
            states,
            depth,
            reason,
            stats,
        } => format!(
            "LIMIT {shape}: {reason} (visited {states} states, depth {depth}, \
             explored {} dedup {} sleep-pruned {})",
            stats.explored, stats.deduped, stats.sleep_pruned
        ),
        CheckOutcome::Violation(cx) => {
            let mut out = format!("FAIL  {shape}: {}\n", cx.violation);
            out.push_str(&render_counterexample(cx, replay));
            out
        }
    }
}

/// Render a counterexample, including the replay's per-step narration,
/// message trace, and [`MsgTrace::dropped`](dirtree_machine::MsgTrace::dropped)
/// count when a replay is supplied.
pub fn render_counterexample(cx: &Counterexample, replay: Option<&ReplayReport>) -> String {
    let mut out = format!(
        "  minimal counterexample: {} steps ({} states explored)\n",
        cx.choices.len(),
        cx.states
    );
    match replay {
        Some(r) => {
            for (i, step) in r.steps.iter().enumerate() {
                out.push_str(&format!("    {:>3}. {step}\n", i + 1));
            }
            match &r.violation {
                Some(v) if *v == cx.violation => {
                    out.push_str("  replay: reproduces the violation deterministically\n");
                }
                Some(v) => {
                    out.push_str(&format!(
                        "  replay: DIVERGED — replayed violation was: {v}\n"
                    ));
                }
                None => out.push_str(
                    "  replay: DIVERGED — choice sequence replayed clean (protocol \
                     clone/fingerprint is missing state)\n",
                ),
            }
            out.push_str(&format!(
                "  message trace ({} events dropped from the ring):\n",
                r.trace_dropped
            ));
            for line in r.trace.lines() {
                out.push_str("    ");
                out.push_str(line);
                out.push('\n');
            }
        }
        None => {
            for (i, c) in cx.choices.iter().enumerate() {
                out.push_str(&format!("    {:>3}. {c:?}\n", i + 1));
            }
        }
    }
    out
}
