//! # dirtree-check — exhaustive protocol model checker
//!
//! Drives any [`dirtree_core::protocol::Protocol`] through **all**
//! interleavings of pending messages and processor actions for small
//! configurations (2–5 processors, 1–2 blocks, a few operations per
//! processor), checking at every reachable state:
//!
//! * the **single-writer / data-freshness witness** shared with the
//!   simulator ([`dirtree_core::verify`]),
//! * **deadlock-freedom** (a blocked processor with nothing in flight),
//! * the protocol's own **structural invariants**
//!   ([`Protocol::check_invariants`](dirtree_core::protocol::Protocol::check_invariants)
//!   — e.g. Dir_iTree_k's "every valid copy is reachable from the
//!   recorded forest roots" at quiescence),
//! * **bounded progress** — exploration that outruns its depth or state
//!   budget stops with a structured resource report, never a hang.
//!
//! The cycle-level simulator in `dirtree-machine` executes one
//! interleaving per run — the one its timing model produces. The checker
//! complements it: timing is erased and *every* delivery order the
//! network model permits (per-(src,dst) FIFO channels, racing local
//! wake-ups and completions) is explored, so protocol races survive no
//! matter how the latencies land. Violations come back as a minimal
//! counterexample (BFS = shortest choice sequence) that
//! [`replay`](replay::replay) re-executes deterministically into a
//! message-level trace.
//!
//! Two sound reductions keep the larger shapes tractable (see
//! [`explore`] for the soundness arguments): a **processor-permutation
//! symmetry reduction** that canonicalizes each state digest over the
//! home-fixing renamings of certified-equivariant protocols, and a
//! **sleep-set partial-order reduction** that skips commuting delivery
//! orders (different executing node *and* different block) without
//! losing any reachable state. Both are per-protocol opt-in
//! ([`dirtree_core::protocol::Protocol::relabeled`] /
//! [`deliveries_commute`](dirtree_core::protocol::Protocol::deliveries_commute)),
//! so uncertified protocols — including the deliberately buggy
//! [`mutants::Mutated`] wrappers — are explored unreduced.
//!
//! Entry points: [`explore::explore`] for one protocol/configuration,
//! the `check_all` binary for the full figure-set sweep
//! (`cargo run -p dirtree-check --bin check_all`), and
//! [`mutants::Mutated`] for the checker's own mutation tests.

pub mod ctx;
pub mod explore;
pub mod mutants;
pub mod replay;
pub mod report;
pub mod state;

pub use ctx::CheckCtx;
pub use explore::{explore, CheckConfig, CheckOutcome, Counterexample};
pub use mutants::{MutantKind, Mutated};
pub use replay::{replay, ReplayReport};
pub use state::{CheckState, Choice, ProcOp};
