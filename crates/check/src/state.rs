//! One explored state: a protocol instance plus its [`CheckCtx`], with the
//! enabled-choice enumeration and the transition function.
//!
//! A **choice** is one atomic step of the abstract machine:
//!
//! * `Deliver { src, dst }` — pop the head of one network channel and run
//!   the protocol handler at the destination.
//! * `Local { node }` — pop the head of a node's redelivery queue (gate
//!   wake-ups, self-messages).
//! * `Op { node, op }` — a processor issues a read, write, or replacement.
//!
//! Completions the protocol announces (`ProtoCtx::complete`) retire
//! *synchronously* at the end of the triggering choice — this is where
//! the witness checks fire. The simulator schedules `OpDone` only
//! `cache_latency` after the fill, before any causally-subsequent
//! network delivery can land at the node; modeling retirement as a
//! separate, arbitrarily-delayed choice would explore interleavings the
//! event queue cannot produce (e.g. a `WbReq` downgrading a just-granted
//! writer before its completion check) and false-positive the witness.
//!
//! Every applied choice ends with [`CheckState::post_check`]: witness
//! errors, protocol-flagged misbehavior, deadlock (a blocked processor
//! with nothing in flight anywhere), protocol structural invariants, and —
//! at quiescence — the stale-survivor sweep.

use crate::ctx::CheckCtx;
use dirtree_core::protocol::Protocol;
use dirtree_core::types::{Addr, LineState, NodeId, OpKind};

/// A processor action at one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcOp {
    Read(Addr),
    Write(Addr),
    /// Voluntary replacement of a stable (`V`/`E`) line — the checker has
    /// no cache capacity, so replacement is an explicit choice.
    Evict(Addr),
}

/// One atomic transition of the abstract machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Choice {
    Deliver { src: NodeId, dst: NodeId },
    Local { node: NodeId },
    Op { node: NodeId, op: ProcOp },
}

/// A protocol instance embedded in the abstract machine.
pub struct CheckState {
    pub ctx: CheckCtx,
    pub proto: Box<dyn Protocol>,
    addrs: Vec<Addr>,
}

impl Clone for CheckState {
    fn clone(&self) -> Self {
        Self {
            ctx: self.ctx.clone(),
            proto: self.proto.boxed_clone(),
            addrs: self.addrs.clone(),
        }
    }
}

impl CheckState {
    pub fn new(nodes: u32, fuel: u32, addrs: Vec<Addr>, proto: Box<dyn Protocol>) -> Self {
        Self {
            ctx: CheckCtx::new(nodes, fuel),
            proto,
            addrs,
        }
    }

    pub fn addrs(&self) -> &[Addr] {
        &self.addrs
    }

    /// Canonical digest of the complete state (context + protocol).
    pub fn digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = dirtree_sim::hash::FxHasher::default();
        self.ctx.digest(&mut h);
        self.proto.fingerprint(&mut h);
        h.finish()
    }

    /// The state with every node id mapped through `perm`, or `None` if
    /// the protocol does not certify equivariance
    /// ([`Protocol::relabeled`]). Symmetry-reduction support.
    pub fn relabeled(&self, perm: &[NodeId]) -> Option<CheckState> {
        let proto = self.proto.relabeled(perm)?;
        Some(CheckState {
            ctx: self.ctx.relabeled(perm),
            proto,
            addrs: self.addrs.clone(),
        })
    }

    /// Canonicalize this state (and a concrete-coordinates sleep mask)
    /// over a symmetry group: the canonical digest is the minimum
    /// ordinary digest across `perms` (which must start with the
    /// identity), and the canonical mask is the **intersection** of the
    /// mask's images under *every* permutation achieving that minimum.
    /// Returns `(digest, argmin index, canonical mask)`.
    ///
    /// Two permutations tie exactly when the canonical state has a
    /// nontrivial automorphism (64-bit digest collisions aside). The
    /// intersection makes the canonical mask invariant under that
    /// automorphism group — the images of the mask under the tying
    /// permutations differ by automorphisms, and intersecting over the
    /// whole coset is a group-closed operation — so *any* arrival at this
    /// canonical class can translate the stored mask back through its own
    /// argmin inverse and get a consistent (and, being an intersection, a
    /// conservative subset) sleep set. Without this, automorphic states
    /// would have to fall back to a full expansion, which in practice
    /// guts the sleep-set reduction at P = 4 where lightly-differentiated
    /// states (several idle, interchangeable processors) dominate.
    ///
    /// Panics if the protocol does not certify [`Protocol::relabeled`]
    /// and `perms` has more than the identity (the explorer only builds a
    /// nontrivial group after probing the protocol).
    pub fn canonicalize(&self, perms: &[Vec<NodeId>], mask: u64) -> (u64, usize, u64) {
        if perms.len() == 1 {
            return (self.digest(), 0, mask);
        }
        let mut digests = Vec::with_capacity(perms.len());
        digests.push(self.digest());
        for perm in &perms[1..] {
            digests.push(
                self.relabeled(perm)
                    .expect("symmetry group built for a protocol without relabeled()")
                    .digest(),
            );
        }
        let best = *digests.iter().min().expect("identity is always present");
        let mut argmin = usize::MAX;
        let mut canon_mask = u64::MAX;
        for (i, &d) in digests.iter().enumerate() {
            if d == best {
                if argmin == usize::MAX {
                    argmin = i;
                }
                canon_mask &= self.map_mask(mask, &perms[i]);
            }
        }
        (best, argmin, canon_mask)
    }

    /// The `(executing node, block)` footprint of a choice in this state:
    /// the node whose controller runs and the single address whose
    /// protocol/witness state the step may touch. Two choices with
    /// different nodes *and* different blocks commute for protocols that
    /// certify [`Protocol::deliveries_commute`].
    pub fn choice_footprint(&self, choice: Choice) -> (NodeId, Addr) {
        match choice {
            Choice::Deliver { src, dst } => {
                let m = self
                    .ctx
                    .peek_channel(src, dst)
                    .expect("footprint of a Deliver on an empty channel");
                (dst, m.addr)
            }
            Choice::Local { node } => {
                let m = self
                    .ctx
                    .peek_local(node)
                    .expect("footprint of a Local on an empty queue");
                (node, m.addr)
            }
            Choice::Op { node, op } => match op {
                ProcOp::Read(a) | ProcOp::Write(a) | ProcOp::Evict(a) => (node, a),
            },
        }
    }

    /// Total number of distinct sleep-mask bit positions for this shape
    /// (`n²` channels + `n` local queues + `n·|addrs|·3` processor ops).
    /// The explorer disables the sleep-set reduction when this exceeds 64.
    pub fn sleep_bits(&self) -> u32 {
        let n = self.ctx.nodes();
        n * n + n + n * self.addrs.len() as u32 * 3
    }

    /// Stable bit position identifying a choice in a sleep mask. The
    /// encoding names the *queue or op slot*, not the message: a sleeping
    /// `Deliver{src,dst}` bit keeps denoting the same head message because
    /// only that very choice can pop the channel (appends land behind the
    /// head), and likewise for `Local`.
    pub fn choice_bit(&self, choice: Choice) -> u32 {
        let n = self.ctx.nodes();
        match choice {
            Choice::Deliver { src, dst } => src * n + dst,
            Choice::Local { node } => n * n + node,
            Choice::Op { node, op } => {
                let (addr, kind) = match op {
                    ProcOp::Read(a) => (a, 0),
                    ProcOp::Write(a) => (a, 1),
                    ProcOp::Evict(a) => (a, 2),
                };
                let a_idx = self
                    .addrs
                    .iter()
                    .position(|&a| a == addr)
                    .expect("op on an address outside the configured set")
                    as u32;
                n * n + n + (node * self.addrs.len() as u32 + a_idx) * 3 + kind
            }
        }
    }

    /// Map a sleep mask through a node relabeling: each set bit is decoded
    /// to its choice slot, the slot's node ids are mapped through `perm`,
    /// and the bit is re-encoded. Block indices and op kinds are fixed
    /// points (the symmetry group never moves addresses).
    pub fn map_mask(&self, mask: u64, perm: &[NodeId]) -> u64 {
        if mask == 0 {
            return 0;
        }
        let n = self.ctx.nodes();
        let na = self.addrs.len() as u32;
        let mut out = 0u64;
        let mut rest = mask;
        while rest != 0 {
            let bit = rest.trailing_zeros();
            rest &= rest - 1;
            let new_bit = if bit < n * n {
                let (src, dst) = (bit / n, bit % n);
                perm[src as usize] * n + perm[dst as usize]
            } else if bit < n * n + n {
                n * n + perm[(bit - n * n) as usize]
            } else {
                let idx = bit - n * n - n;
                let (slot, kind) = (idx / 3, idx % 3);
                let (node, a_idx) = (slot / na, slot % na);
                n * n + n + (perm[node as usize] * na + a_idx) * 3 + kind
            };
            out |= 1u64 << new_bit;
        }
        out
    }

    /// Every choice enabled in this state, in a fixed deterministic order
    /// (channels by (src, dst), then locals, completions, and processor
    /// ops by node and block).
    pub fn enabled_choices(&self) -> Vec<Choice> {
        let n = self.ctx.nodes();
        let mut out = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                if self.ctx.channel_len(src, dst) > 0 {
                    out.push(Choice::Deliver { src, dst });
                }
            }
        }
        for node in 0..n {
            if self.ctx.local_len(node) > 0 {
                out.push(Choice::Local { node });
            }
        }
        for node in 0..n {
            if self.ctx.outstanding[node as usize].is_some() || self.ctx.fuel[node as usize] == 0 {
                continue;
            }
            for &addr in &self.addrs {
                let st = self.line_state(node, addr);
                // A transient line would only make the machine retry the
                // op — a no-op loop the exploration can skip.
                if !st.transient() {
                    out.push(Choice::Op {
                        node,
                        op: ProcOp::Read(addr),
                    });
                    out.push(Choice::Op {
                        node,
                        op: ProcOp::Write(addr),
                    });
                }
                if matches!(st, LineState::V | LineState::E) {
                    out.push(Choice::Op {
                        node,
                        op: ProcOp::Evict(addr),
                    });
                }
            }
        }
        out
    }

    fn line_state(&self, node: NodeId, addr: Addr) -> LineState {
        use dirtree_core::ctx::ProtoCtx;
        self.ctx.line_state(node, addr)
    }

    /// Apply one choice. `Err` carries the violation that makes the
    /// resulting state a counterexample endpoint.
    pub fn apply(&mut self, choice: Choice) -> Result<(), String> {
        self.ctx.now += 1;
        match choice {
            Choice::Deliver { src, dst } => {
                let msg = self
                    .ctx
                    .pop_channel(src, dst)
                    .expect("Deliver choice on an empty channel");
                self.proto.handle(&mut self.ctx, dst, msg);
            }
            Choice::Local { node } => {
                let msg = self
                    .ctx
                    .pop_local(node)
                    .expect("Local choice on an empty queue");
                self.proto.handle(&mut self.ctx, node, msg);
            }
            Choice::Op { node, op } => self.issue(node, op)?,
        }
        // Retire whatever the handler completed before anything else can
        // happen (see the module docs on why this is synchronous).
        for node in 0..self.ctx.nodes() {
            if self.ctx.completion[node as usize].is_some() {
                self.retire(node)?;
            }
        }
        self.post_check()
    }

    /// Retire a completion the protocol announced — the checker's
    /// equivalent of the simulator's `OpDone` event.
    fn retire(&mut self, node: NodeId) -> Result<(), String> {
        let (addr, op) = self.ctx.completion[node as usize]
            .take()
            .expect("retire without a pending completion");
        match self.ctx.outstanding[node as usize].take() {
            Some((a, o)) if a == addr && o == op => {}
            other => {
                return Err(format!(
                    "protocol completed ({addr:#x}, {op:?}) at node {node} but the \
                     outstanding access was {other:?}"
                ))
            }
        }
        match op {
            OpKind::Read => self.ctx.verifier.on_read_fill(node, addr),
            OpKind::Write => {
                let others = self.ctx.other_holders(addr, node);
                if self.proto.is_update_for(addr) {
                    self.ctx
                        .verifier
                        .on_write_complete_update(node, addr, &others);
                } else {
                    self.ctx
                        .verifier
                        .on_write_complete(node, addr, &others)
                        .map_err(|v| v.to_string())?;
                }
            }
        }
        self.proto.note_op_retired(node, addr, op);
        Ok(())
    }

    /// A processor issues one operation, mirroring the machine's
    /// `issue_access` hit/upgrade/miss split.
    fn issue(&mut self, node: NodeId, op: ProcOp) -> Result<(), String> {
        debug_assert!(self.ctx.outstanding[node as usize].is_none());
        self.ctx.fuel[node as usize] -= 1;
        match op {
            ProcOp::Read(addr) => {
                let st = self.line_state(node, addr);
                if st.readable() {
                    if self.proto.wants_read_hits() {
                        self.proto.note_read_hit(node, addr);
                    }
                    self.ctx
                        .verifier
                        .on_read_hit(node, addr)
                        .map_err(|v| v.to_string())?;
                } else {
                    self.ctx.set_line(node, addr, LineState::RmIp);
                    self.ctx.outstanding[node as usize] = Some((addr, OpKind::Read));
                    self.proto
                        .start_miss(&mut self.ctx, node, addr, OpKind::Read);
                }
            }
            ProcOp::Write(addr) => {
                let st = self.line_state(node, addr);
                if st.writable() {
                    let others = self.ctx.other_holders(addr, node);
                    if self.proto.is_update_for(addr) {
                        self.ctx
                            .verifier
                            .on_write_complete_update(node, addr, &others);
                    } else {
                        self.ctx
                            .verifier
                            .on_write_complete(node, addr, &others)
                            .map_err(|v| v.to_string())?;
                    }
                } else {
                    // Upgrade (V) and genuine miss share the same entry
                    // point, exactly like the machine.
                    self.ctx.set_line(node, addr, LineState::WmIp);
                    self.ctx.outstanding[node as usize] = Some((addr, OpKind::Write));
                    self.proto
                        .start_miss(&mut self.ctx, node, addr, OpKind::Write);
                }
            }
            ProcOp::Evict(addr) => {
                let st = self
                    .ctx
                    .remove_line(node, addr)
                    .expect("Evict choice on a non-resident line");
                debug_assert!(matches!(st, LineState::V | LineState::E));
                self.proto.evict(&mut self.ctx, node, addr, st);
            }
        }
        Ok(())
    }

    /// Checks that run after every transition (and once on the root).
    pub fn post_check(&mut self) -> Result<(), String> {
        if let Some(e) = self.ctx.flagged.take() {
            return Err(e);
        }
        let pending = self.ctx.has_pending_event();
        let quiescent = self.ctx.quiescent();
        if !pending && !quiescent {
            let blocked: Vec<(NodeId, (Addr, OpKind))> = self
                .ctx
                .outstanding
                .iter()
                .enumerate()
                .filter_map(|(n, o)| o.map(|o| (n as NodeId, o)))
                .collect();
            return Err(format!(
                "deadlock: processors {blocked:?} blocked with no message or \
                 completion in flight anywhere"
            ));
        }
        if quiescent {
            self.ctx
                .verifier
                .on_finish(self.ctx.survivors().into_iter())
                .map_err(|v| format!("at quiescence: {v}"))?;
        }
        self.proto
            .check_invariants(&self.ctx, &self.addrs, quiescent)
            .map_err(|e| format!("invariant violation: {e}"))
    }

    /// Human-readable description of `choice` as it would apply to *this*
    /// state (peeks at channel heads to name the message involved).
    pub fn describe(&self, choice: Choice) -> String {
        match choice {
            Choice::Deliver { src, dst } => match self.ctx.peek_channel(src, dst) {
                Some(m) => format!(
                    "deliver {src} -> {dst}: {} addr {:#x}",
                    m.kind.label(),
                    m.addr
                ),
                None => format!("deliver {src} -> {dst}: <empty>"),
            },
            Choice::Local { node } => match self.ctx.peek_local(node) {
                Some(m) => format!(
                    "local wake-up at {node}: {} addr {:#x}",
                    m.kind.label(),
                    m.addr
                ),
                None => format!("local wake-up at {node}: <empty>"),
            },
            Choice::Op { node, op } => match op {
                ProcOp::Read(a) => format!("proc {node} read {a:#x}"),
                ProcOp::Write(a) => format!("proc {node} write {a:#x}"),
                ProcOp::Evict(a) => format!("proc {node} evict {a:#x}"),
            },
        }
    }
}
