//! Exhaustive breadth-first exploration of the choice graph.
//!
//! Layer-synchronous BFS over [`CheckState`]s: each layer's states expand
//! on a scoped worker pool (`jobs` threads claiming frontier indices from
//! an atomic counter, the same pattern as the sweep runner), and results
//! merge back sequentially in frontier order. Deduplication uses the
//! canonical 64-bit state digest; two states with equal digests are
//! assumed identical and one is pruned (a digest collision could in
//! principle hide a state — at the few-million-state scale of these runs
//! the probability is ~1e-7, and a collision can only cause a *missed*
//! path, never a false alarm).
//!
//! BFS + in-order merge make the result independent of `jobs` and the
//! first reported counterexample *minimal* in choice count: a violation
//! found in layer `d` has no counterexample shorter than `d` steps, and
//! ties break by the fixed frontier/choice order.

use crate::state::{CheckState, Choice};
use dirtree_core::protocol::Protocol;
use dirtree_core::types::Addr;
use dirtree_sim::FxHashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One exploration's shape and budgets.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    pub nodes: u32,
    /// Blocks in play: addresses `0..blocks` (homes interleave mod nodes).
    pub blocks: u64,
    /// Processor operations available per node.
    pub fuel: u32,
    /// State budget: exceeding it stops with a structured resource report.
    pub max_states: usize,
    /// Depth cap — the checker's bounded-step stall guard.
    pub max_depth: usize,
    /// Worker threads for frontier expansion.
    pub jobs: usize,
}

impl CheckConfig {
    /// Defaults for the small exhaustively-checkable configurations: fuel
    /// 3 per node at P=2, fuel 2 at P≥3.
    pub fn small(nodes: u32, blocks: u64) -> Self {
        Self {
            nodes,
            blocks,
            fuel: if nodes <= 2 { 3 } else { 2 },
            max_states: 4_000_000,
            max_depth: 500,
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    pub fn addrs(&self) -> Vec<Addr> {
        (0..self.blocks).collect()
    }
}

/// The shortest path to a violating state.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Choices from the initial state; applying them in order reproduces
    /// the violation on the last step.
    pub choices: Vec<Choice>,
    /// The violation message (witness, invariant, deadlock, or protocol
    /// misbehavior flagged by the context).
    pub violation: String,
    /// States visited before the violation surfaced.
    pub states: u64,
}

/// Structured exploration result.
#[derive(Clone, Debug)]
pub enum CheckOutcome {
    /// Every reachable state checked out; the graph is exhausted.
    Pass { states: u64, depth: usize },
    /// A violating state was found (shortest path attached).
    Violation(Counterexample),
    /// A budget stopped the search before exhaustion — reported as data,
    /// not a panic, so harnesses can distinguish "too big" from "broken".
    ResourceLimit {
        states: u64,
        depth: usize,
        reason: String,
    },
}

impl CheckOutcome {
    pub fn is_pass(&self) -> bool {
        matches!(self, CheckOutcome::Pass { .. })
    }

    pub fn states(&self) -> u64 {
        match self {
            CheckOutcome::Pass { states, .. } | CheckOutcome::ResourceLimit { states, .. } => {
                *states
            }
            CheckOutcome::Violation(cx) => cx.states,
        }
    }
}

/// Sentinel arena index for the initial state.
const ROOT: usize = usize::MAX;

struct Expanded {
    arena_idx: usize,
    /// First violating choice (in choice order) out of this state.
    violation: Option<(Choice, String)>,
    succs: Vec<(Choice, CheckState, u64)>,
}

fn expand(arena_idx: usize, state: &CheckState) -> Expanded {
    let choices = state.enabled_choices();
    let mut succs = Vec::with_capacity(choices.len());
    for &choice in &choices {
        let mut s = state.clone();
        match s.apply(choice) {
            Ok(()) => {
                let digest = s.digest();
                succs.push((choice, s, digest));
            }
            Err(violation) => {
                return Expanded {
                    arena_idx,
                    violation: Some((choice, violation)),
                    succs: Vec::new(),
                }
            }
        }
    }
    Expanded {
        arena_idx,
        violation: None,
        succs,
    }
}

/// Exhaustively explore every interleaving of `factory()`'s protocol
/// under `cfg`, checking coherence, deadlock-freedom, and the protocol's
/// structural invariants at every state.
pub fn explore<F>(cfg: &CheckConfig, factory: F) -> CheckOutcome
where
    F: Fn() -> Box<dyn Protocol> + Sync,
{
    let mut root = CheckState::new(cfg.nodes, cfg.fuel, cfg.addrs(), factory());
    if let Err(violation) = root.post_check() {
        return CheckOutcome::Violation(Counterexample {
            choices: Vec::new(),
            violation,
            states: 1,
        });
    }
    let mut visited: FxHashSet<u64> = FxHashSet::default();
    visited.insert(root.digest());
    // (parent arena index, producing choice) per non-root state ever put
    // on a frontier; counterexamples walk this chain back to the root.
    let mut arena: Vec<(usize, Choice)> = Vec::new();
    let mut frontier: Vec<(usize, CheckState)> = vec![(ROOT, root)];
    let mut depth = 0usize;
    loop {
        if frontier.is_empty() {
            return CheckOutcome::Pass {
                states: visited.len() as u64,
                depth,
            };
        }
        if depth >= cfg.max_depth {
            return CheckOutcome::ResourceLimit {
                states: visited.len() as u64,
                depth,
                reason: format!(
                    "no quiescence after {} steps ({} states still expanding)",
                    cfg.max_depth,
                    frontier.len()
                ),
            };
        }
        if visited.len() > cfg.max_states {
            return CheckOutcome::ResourceLimit {
                states: visited.len() as u64,
                depth,
                reason: format!("state budget of {} exceeded", cfg.max_states),
            };
        }

        // Expand the layer on the worker pool; slot per frontier index so
        // the merge below is deterministic regardless of which worker
        // finished when.
        let items = frontier.len();
        let in_slots: Vec<Mutex<Option<(usize, CheckState)>>> =
            frontier.drain(..).map(|x| Mutex::new(Some(x))).collect();
        let out_slots: Vec<Mutex<Option<Expanded>>> =
            (0..items).map(|_| Mutex::new(None)).collect();
        let jobs = cfg.jobs.clamp(1, items);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= items {
                        break;
                    }
                    let (arena_idx, state) = in_slots[t].lock().unwrap().take().unwrap();
                    *out_slots[t].lock().unwrap() = Some(expand(arena_idx, &state));
                });
            }
        });
        let expanded: Vec<Expanded> = out_slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("worker left a slot empty"))
            .collect();

        // Violations first: any hit in this layer is depth-minimal, and
        // taking the first in frontier order keeps the result independent
        // of the worker schedule.
        for exp in &expanded {
            if let Some((choice, violation)) = &exp.violation {
                let mut choices = vec![*choice];
                let mut idx = exp.arena_idx;
                while idx != ROOT {
                    let (parent, c) = arena[idx];
                    choices.push(c);
                    idx = parent;
                }
                choices.reverse();
                return CheckOutcome::Violation(Counterexample {
                    choices,
                    violation: violation.clone(),
                    states: visited.len() as u64,
                });
            }
        }
        for exp in expanded {
            for (choice, state, digest) in exp.succs {
                if visited.insert(digest) {
                    arena.push((exp.arena_idx, choice));
                    frontier.push((arena.len() - 1, state));
                }
            }
        }
        depth += 1;
    }
}
