//! Exhaustive breadth-first exploration of the choice graph.
//!
//! Layer-synchronous BFS over [`CheckState`]s: each layer's states expand
//! on a scoped worker pool (`jobs` threads claiming frontier indices from
//! an atomic counter, the same pattern as the sweep runner), and results
//! merge back sequentially in frontier order. Deduplication uses the
//! canonical 64-bit state digest; two states with equal digests are
//! assumed identical and one is pruned (a digest collision could in
//! principle hide a state — at the few-million-state scale of these runs
//! the probability is ~1e-7, and a collision can only cause a *missed*
//! path, never a false alarm).
//!
//! Two sound reductions shrink the search (both on by default, both inert
//! for protocols that do not certify the required properties):
//!
//! * **Processor-permutation symmetry.** States are deduplicated by their
//!   *canonical* digest: the minimum ordinary digest over the group of
//!   node renamings that fix every in-play home node
//!   ([`dirtree_core::fingerprint::home_fixing_perms`]). This is sound
//!   exactly when the protocol is equivariant — relabeling a state and
//!   then handling a relabeled message equals handling and then
//!   relabeling — which protocols certify via
//!   [`Protocol::relabeled`]; uncertified protocols (including the
//!   fault-injection mutants, whose bugs may be deliberately asymmetric)
//!   degrade the group to the identity.
//!
//! * **Sleep sets** (partial-order reduction in the Godefroid style).
//!   Deliveries/ops at different nodes touching different blocks commute
//!   (certified per protocol via [`Protocol::deliveries_commute`]), so of
//!   the two orders of an independent pair only one needs its second step
//!   explored. Each frontier state carries a *sleep mask* of choices whose
//!   exploration is provably redundant; masks live in canonical
//!   coordinates in the visited map and follow the classic state-matching
//!   rule (prune a revisit iff its mask is a superset of the stored one,
//!   else re-expand with the intersection — which strictly shrinks, so
//!   the loop terminates). Sleep sets prune *transitions*, never states:
//!   every reachable state is still visited, so all state predicates
//!   (witness, invariants, deadlock, quiescence sweep) are checked
//!   exactly as in the unreduced search.
//!
//! BFS + in-order merge make the result independent of `jobs`, and the
//! first reported counterexample is *minimal* in choice count (under the
//! reductions: minimal up to commuting-step reordering and node renaming,
//! both of which preserve trace length).

use crate::state::{CheckState, Choice};
use dirtree_core::fingerprint::{home_fixing_perms, invert_perm};
use dirtree_core::protocol::Protocol;
use dirtree_core::types::{Addr, NodeId};
use dirtree_sim::FxHashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One exploration's shape and budgets.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    pub nodes: u32,
    /// Blocks in play: addresses `0, stride, 2·stride, …` (homes
    /// interleave mod nodes).
    pub blocks: u64,
    /// Spacing between in-play addresses (default 1). A stride equal to
    /// `nodes` puts every block on home 0, which keeps the home-fixing
    /// symmetry group large while still giving the sleep-set reduction
    /// multiple blocks to commute across.
    pub addr_stride: u64,
    /// Processor operations available per node.
    pub fuel: u32,
    /// State budget: exceeding it stops with a structured resource report.
    pub max_states: usize,
    /// Depth cap — the checker's bounded-step stall guard.
    pub max_depth: usize,
    /// Worker threads for frontier expansion.
    pub jobs: usize,
    /// Processor-permutation symmetry reduction (inert unless the protocol
    /// certifies [`Protocol::relabeled`]).
    pub symmetry: bool,
    /// Sleep-set partial-order reduction (inert unless the protocol
    /// certifies [`Protocol::deliveries_commute`]).
    pub por: bool,
}

impl CheckConfig {
    /// Defaults for the small exhaustively-checkable configurations: fuel
    /// 3 per node at P=2, fuel 2 at P=3, fuel 1 at P≥4 (the update-family
    /// state spaces at P=4 exceed the default state budget at fuel 2 —
    /// Dir_1Tree_2U visits >4M states without exhausting — so the P≥4
    /// tier trades op depth for processor count; the deeper histories are
    /// covered by the P=2/P=3 tiers). Both reductions on.
    pub fn small(nodes: u32, blocks: u64) -> Self {
        Self {
            nodes,
            blocks,
            addr_stride: 1,
            fuel: match nodes {
                0..=2 => 3,
                3 => 2,
                _ => 1,
            },
            max_states: 4_000_000,
            max_depth: 500,
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            symmetry: true,
            por: true,
        }
    }

    pub fn addrs(&self) -> Vec<Addr> {
        let stride = self.addr_stride.max(1);
        (0..self.blocks).map(|i| i * stride).collect()
    }
}

/// Work counters for one exploration — the measure the reductions shrink.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Successor computations (`apply` calls). This is the unit of work:
    /// symmetry divides the number of expanded states, sleep sets cut
    /// choices per expansion, and both show up here.
    pub explored: u64,
    /// Successors dropped because their canonical digest was already
    /// visited with a covering sleep mask.
    pub deduped: u64,
    /// Enabled choices skipped by the sleep-set reduction.
    pub sleep_pruned: u64,
    /// Symmetry group order (1 = reduction inert for this protocol).
    pub sym_group: u64,
}

/// The shortest path to a violating state.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Choices from the initial state; applying them in order reproduces
    /// the violation on the last step.
    pub choices: Vec<Choice>,
    /// The violation message (witness, invariant, deadlock, or protocol
    /// misbehavior flagged by the context).
    pub violation: String,
    /// States visited before the violation surfaced.
    pub states: u64,
}

/// Structured exploration result.
#[derive(Clone, Debug)]
pub enum CheckOutcome {
    /// Every reachable state checked out; the graph is exhausted.
    Pass {
        states: u64,
        depth: usize,
        stats: ExploreStats,
    },
    /// A violating state was found (shortest path attached).
    Violation(Counterexample),
    /// A budget stopped the search before exhaustion — reported as data,
    /// not a panic, so harnesses can distinguish "too big" from "broken".
    ResourceLimit {
        states: u64,
        depth: usize,
        reason: String,
        stats: ExploreStats,
    },
}

impl CheckOutcome {
    pub fn is_pass(&self) -> bool {
        matches!(self, CheckOutcome::Pass { .. })
    }

    pub fn states(&self) -> u64 {
        match self {
            CheckOutcome::Pass { states, .. } | CheckOutcome::ResourceLimit { states, .. } => {
                *states
            }
            CheckOutcome::Violation(cx) => cx.states,
        }
    }

    /// Work counters (`None` for violations, which stop mid-layer).
    pub fn stats(&self) -> Option<ExploreStats> {
        match self {
            CheckOutcome::Pass { stats, .. } | CheckOutcome::ResourceLimit { stats, .. } => {
                Some(*stats)
            }
            CheckOutcome::Violation(_) => None,
        }
    }
}

/// Sentinel arena index for the initial state.
const ROOT: usize = usize::MAX;

struct Succ {
    choice: Choice,
    state: CheckState,
    /// Canonical digest (minimum over the symmetry group).
    canon: u64,
    /// Sleep mask in canonical coordinates: the intersection of the
    /// concrete mask's images under every digest-minimizing permutation,
    /// which makes it invariant under the canonical state's automorphisms
    /// and therefore consistently translatable by *any* arrival (see
    /// [`CheckState::canonicalize`]). The frontier entry expands with
    /// exactly this mask mapped back through `argmin`'s inverse, so the
    /// visited map always records what the expansion truly slept with.
    canon_mask: u64,
    /// Index into the group of the (first) canonicalizing permutation.
    argmin: usize,
}

struct Expanded {
    arena_idx: usize,
    /// First violating choice (in choice order) out of this state.
    violation: Option<(Choice, String)>,
    succs: Vec<Succ>,
    explored: u64,
    sleep_pruned: u64,
}

/// A frontier entry awaiting expansion. `argmin` is kept so a same-layer
/// duplicate arrival can shrink `mask` in place (mapping the intersected
/// canonical mask back through this state's own canonicalizing
/// permutation) instead of forcing a second expansion.
struct Pending {
    arena_idx: usize,
    state: CheckState,
    /// Sleep mask in this state's concrete coordinates.
    mask: u64,
    argmin: usize,
}

fn expand(
    arena_idx: usize,
    state: &CheckState,
    sleep: u64,
    perms: &[Vec<NodeId>],
    commute: bool,
) -> Expanded {
    let choices = state.enabled_choices();
    let mut explored = 0u64;
    let mut sleep_pruned = 0u64;
    let mut succs = Vec::with_capacity(choices.len());
    // Bit position and (node, block) footprint per enabled choice.
    let info: Vec<(u32, (NodeId, Addr))> = choices
        .iter()
        .map(|&c| (state.choice_bit(c), state.choice_footprint(c)))
        .collect();
    for (i, &choice) in choices.iter().enumerate() {
        let (bit_i, fp_i) = info[i];
        if commute && sleep & (1u64 << bit_i) != 0 {
            // Provably redundant: an equivalent trace taking this choice
            // first was (or will be) explored from an earlier sibling.
            sleep_pruned += 1;
            continue;
        }
        explored += 1;
        let mut s = state.clone();
        match s.apply(choice) {
            Ok(()) => {
                // Successor sleep set: everything already asleep here plus
                // the siblings explored before `choice`, filtered down to
                // the choices independent of `choice` (different node AND
                // different block — the certified commutation condition).
                let mut mask = 0u64;
                if commute {
                    for (j, &(bit_j, fp_j)) in info.iter().enumerate() {
                        if j == i {
                            continue;
                        }
                        let candidate = j < i || sleep & (1u64 << bit_j) != 0;
                        if candidate && fp_i.0 != fp_j.0 && fp_i.1 != fp_j.1 {
                            mask |= 1u64 << bit_j;
                        }
                    }
                }
                let (canon, argmin, canon_mask) = s.canonicalize(perms, mask);
                succs.push(Succ {
                    choice,
                    state: s,
                    canon,
                    canon_mask,
                    argmin,
                });
            }
            Err(violation) => {
                return Expanded {
                    arena_idx,
                    violation: Some((choice, violation)),
                    succs: Vec::new(),
                    explored,
                    sleep_pruned,
                }
            }
        }
    }
    Expanded {
        arena_idx,
        violation: None,
        succs,
        explored,
        sleep_pruned,
    }
}

/// Exhaustively explore every interleaving of `factory()`'s protocol
/// under `cfg`, checking coherence, deadlock-freedom, and the protocol's
/// structural invariants at every state.
pub fn explore<F>(cfg: &CheckConfig, factory: F) -> CheckOutcome
where
    F: Fn() -> Box<dyn Protocol> + Sync,
{
    let mut root = CheckState::new(cfg.nodes, cfg.fuel, cfg.addrs(), factory());
    if let Err(violation) = root.post_check() {
        return CheckOutcome::Violation(Counterexample {
            choices: Vec::new(),
            violation,
            states: 1,
        });
    }
    // Build the symmetry group. The identity probe asks the protocol
    // whether it certifies equivariance at all; `None` leaves the group
    // trivial (canonical digest = ordinary digest, zero overhead beyond
    // one comparison).
    let ident: Vec<NodeId> = (0..cfg.nodes).collect();
    let perms: Vec<Vec<NodeId>> = if cfg.symmetry && root.proto.relabeled(&ident).is_some() {
        let homes: Vec<NodeId> = cfg
            .addrs()
            .iter()
            .map(|&a| (a % cfg.nodes as u64) as NodeId)
            .collect();
        home_fixing_perms(cfg.nodes, &homes)
    } else {
        vec![ident]
    };
    let inverses: Vec<Vec<NodeId>> = perms.iter().map(|p| invert_perm(p)).collect();
    // Sleep sets need one mask bit per choice slot; huge shapes fall back
    // to the unreduced search rather than a wider mask type.
    let commute = cfg.por && root.proto.deliveries_commute() && root.sleep_bits() <= 64;
    let mut stats = ExploreStats {
        sym_group: perms.len() as u64,
        ..Default::default()
    };

    // Visited: canonical digest -> sleep mask (canonical coordinates) the
    // state was last expanded with. An empty mask means "fully expanded".
    let mut visited: FxHashMap<u64, u64> = FxHashMap::default();
    let (root_canon, _, _) = root.canonicalize(&perms, 0);
    visited.insert(root_canon, 0);
    // (parent arena index, producing choice) per non-root state ever put
    // on a frontier; counterexamples walk this chain back to the root.
    let mut arena: Vec<(usize, Choice)> = Vec::new();
    let mut frontier: Vec<Pending> = vec![Pending {
        arena_idx: ROOT,
        state: root,
        mask: 0,
        argmin: 0,
    }];
    let mut depth = 0usize;
    loop {
        if frontier.is_empty() {
            return CheckOutcome::Pass {
                states: visited.len() as u64,
                depth,
                stats,
            };
        }
        if depth >= cfg.max_depth {
            return CheckOutcome::ResourceLimit {
                states: visited.len() as u64,
                depth,
                reason: format!(
                    "no quiescence after {} steps ({} states still expanding)",
                    cfg.max_depth,
                    frontier.len()
                ),
                stats,
            };
        }
        if visited.len() > cfg.max_states {
            return CheckOutcome::ResourceLimit {
                states: visited.len() as u64,
                depth,
                reason: format!("state budget of {} exceeded", cfg.max_states),
                stats,
            };
        }

        // Expand the layer on the worker pool; slot per frontier index so
        // the merge below is deterministic regardless of which worker
        // finished when.
        let items = frontier.len();
        let in_slots: Vec<Mutex<Option<Pending>>> =
            frontier.drain(..).map(|x| Mutex::new(Some(x))).collect();
        let out_slots: Vec<Mutex<Option<Expanded>>> =
            (0..items).map(|_| Mutex::new(None)).collect();
        let jobs = cfg.jobs.clamp(1, items);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= items {
                        break;
                    }
                    let p = in_slots[t].lock().unwrap().take().unwrap();
                    *out_slots[t].lock().unwrap() =
                        Some(expand(p.arena_idx, &p.state, p.mask, &perms, commute));
                });
            }
        });
        let expanded: Vec<Expanded> = out_slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("worker left a slot empty"))
            .collect();

        // Violations first: any hit in this layer is depth-minimal, and
        // taking the first in frontier order keeps the result independent
        // of the worker schedule.
        for exp in &expanded {
            stats.explored += exp.explored;
            stats.sleep_pruned += exp.sleep_pruned;
            if let Some((choice, violation)) = &exp.violation {
                let mut choices = vec![*choice];
                let mut idx = exp.arena_idx;
                while idx != ROOT {
                    let (parent, c) = arena[idx];
                    choices.push(c);
                    idx = parent;
                }
                choices.reverse();
                return CheckOutcome::Violation(Counterexample {
                    choices,
                    violation: violation.clone(),
                    states: visited.len() as u64,
                });
            }
        }
        // Same-layer duplicate arrivals intersect their sleep masks into
        // the pending frontier entry instead of queueing a second
        // expansion of the same state — without this, convergent graphs
        // (many same-depth predecessors per state) re-expand constantly
        // and the sleep-set reduction costs more work than it saves.
        let mut layer: FxHashMap<u64, usize> = FxHashMap::default();
        for exp in expanded {
            for succ in exp.succs {
                match visited.get(&succ.canon).copied() {
                    None => {
                        visited.insert(succ.canon, succ.canon_mask);
                        arena.push((exp.arena_idx, succ.choice));
                        layer.insert(succ.canon, frontier.len());
                        let mask = succ.state.map_mask(succ.canon_mask, &inverses[succ.argmin]);
                        frontier.push(Pending {
                            arena_idx: arena.len() - 1,
                            state: succ.state,
                            mask,
                            argmin: succ.argmin,
                        });
                    }
                    Some(stored) => {
                        // State-matching sleep rule: the earlier expansion
                        // (skipping `stored`) covers this arrival iff it
                        // explored at least everything this arrival needs,
                        // i.e. stored ⊆ canon_mask. Otherwise re-expand
                        // with the intersection (strictly smaller than
                        // `stored`, so re-expansion terminates).
                        if stored & !succ.canon_mask == 0 {
                            stats.deduped += 1;
                            continue;
                        }
                        let inter = stored & succ.canon_mask;
                        visited.insert(succ.canon, inter);
                        if let Some(&pos) = layer.get(&succ.canon) {
                            // Still pending in this layer: shrink its mask
                            // in place (its own coordinates).
                            let p = &mut frontier[pos];
                            p.mask = p.state.map_mask(inter, &inverses[p.argmin]);
                            stats.deduped += 1;
                        } else {
                            let concrete = succ.state.map_mask(inter, &inverses[succ.argmin]);
                            arena.push((exp.arena_idx, succ.choice));
                            layer.insert(succ.canon, frontier.len());
                            frontier.push(Pending {
                                arena_idx: arena.len() - 1,
                                state: succ.state,
                                mask: concrete,
                                argmin: succ.argmin,
                            });
                        }
                    }
                }
            }
        }
        depth += 1;
    }
}
