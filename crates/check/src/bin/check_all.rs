//! Exhaustively model-check every protocol of the paper's figure set.
//!
//! Usage:
//!   cargo run --release -p dirtree-check --bin check_all [-- FLAGS]
//!
//! Flags:
//!   --fast          only P=2 / 1 block (the CI fast tier)
//!   --deep          additionally P=2 and P=3 with 2 blocks
//!   --jobs N        worker threads per exploration (default: all cores)
//!   --filter STR    only protocols whose name contains STR
//!   --fuel N        override operations per processor
//!
//! Exit status: 0 all pass, 1 a violation was found, 2 a resource limit
//! stopped an exploration before exhaustion.

use dirtree_check::{explore, replay, report, CheckConfig, CheckOutcome};
use dirtree_core::protocol::{build_protocol, ProtocolKind, ProtocolParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut deep = false;
    let mut jobs: Option<usize> = None;
    let mut fuel: Option<u32> = None;
    let mut filter: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--deep" => deep = true,
            "--jobs" => jobs = Some(expect_arg(&mut it, "--jobs")),
            "--fuel" => fuel = Some(expect_arg(&mut it, "--fuel")),
            "--filter" => {
                filter = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--filter needs a value"))
                        .clone(),
                )
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if fast && deep {
        usage("--fast and --deep are mutually exclusive");
    }

    let mut shapes: Vec<(u32, u64)> = vec![(2, 1)];
    if !fast {
        shapes.push((3, 1));
    }
    if deep {
        shapes.push((2, 2));
        shapes.push((3, 2));
    }

    let params = ProtocolParams::default();
    let mut passed = 0u32;
    let mut failed = 0u32;
    let mut limited = 0u32;
    for kind in ProtocolKind::figure_set() {
        let name = kind.name();
        if let Some(f) = &filter {
            if !name.to_lowercase().contains(&f.to_lowercase()) {
                continue;
            }
        }
        for &(nodes, blocks) in &shapes {
            let mut cfg = CheckConfig::small(nodes, blocks);
            if let Some(j) = jobs {
                cfg.jobs = j.max(1);
            }
            if let Some(f) = fuel {
                cfg.fuel = f;
            }
            let factory = || build_protocol(kind, params);
            let start = std::time::Instant::now();
            let outcome = explore(&cfg, factory);
            let elapsed = start.elapsed();
            let rep = match &outcome {
                CheckOutcome::Violation(cx) => {
                    failed += 1;
                    Some(replay(&cfg, factory, &cx.choices, 256))
                }
                CheckOutcome::Pass { .. } => {
                    passed += 1;
                    None
                }
                CheckOutcome::ResourceLimit { .. } => {
                    limited += 1;
                    None
                }
            };
            println!(
                "{}  [{:.2?}]",
                report::render(&name, &cfg, &outcome, rep.as_ref()).trim_end(),
                elapsed
            );
        }
    }
    println!("\n{passed} passed, {failed} violated, {limited} resource-limited");
    if failed > 0 {
        std::process::exit(1);
    }
    if limited > 0 {
        std::process::exit(2);
    }
}

fn expect_arg<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a numeric value")))
}

fn usage(err: &str) -> ! {
    eprintln!("check_all: {err}");
    eprintln!("usage: check_all [--fast | --deep] [--jobs N] [--fuel N] [--filter STR]");
    std::process::exit(64);
}
