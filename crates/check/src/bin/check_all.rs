//! Exhaustively model-check every protocol of the paper's figure set.
//!
//! Usage:
//!   cargo run --release -p dirtree-check --bin check_all [-- FLAGS]
//!
//! Flags:
//!   --fast          only P=2 / 1 block (the CI fast tier)
//!   --deep          additionally P=2/P=3 with 2 blocks and the *full*
//!                   P=4 + ternary-P=5 sweep (no time budget)
//!   --budget SECS   time budget for the default tier's P>=4 slice
//!                   (default 60; ignored under --fast/--deep)
//!   --no-sym        disable the processor-permutation symmetry reduction
//!   --no-por        disable the sleep-set partial-order reduction
//!   --jobs N        worker threads per exploration (default: all cores)
//!   --filter STR    only protocols whose name contains STR
//!   --fuel N        override operations per processor
//!
//! The default tier runs every roster entry at P=2 and P=3, then as many
//! P=4 explorations (plus the ternary i=3 entries at P=5) as fit in the
//! time budget (in roster order, so the slice is deterministic for a
//! given machine speed); `--deep` runs the whole P>=4 roster. Each line
//! reports the reduction statistics: states
//! actually explored (`apply()` calls), canonical-duplicate hits, sleep-
//! set-pruned transitions, and the symmetry group size.
//!
//! Exit status: 0 all pass, 1 a violation was found, 2 a resource limit
//! stopped an exploration before exhaustion.

use dirtree_check::{explore, replay, report, CheckConfig, CheckOutcome};
use dirtree_core::protocol::{build_protocol, ProtocolKind, ProtocolParams};
use dirtree_machine::{Driver, DriverOp, Machine, MachineConfig, ScriptDriver, StallError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut deep = false;
    let mut jobs: Option<usize> = None;
    let mut fuel: Option<u32> = None;
    let mut filter: Option<String> = None;
    let mut budget_secs: u64 = 60;
    let mut symmetry = true;
    let mut por = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--deep" => deep = true,
            "--budget" => budget_secs = expect_arg(&mut it, "--budget"),
            "--no-sym" => symmetry = false,
            "--no-por" => por = false,
            "--jobs" => jobs = Some(expect_arg(&mut it, "--jobs")),
            "--fuel" => fuel = Some(expect_arg(&mut it, "--fuel")),
            "--filter" => {
                filter = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--filter needs a value"))
                        .clone(),
                )
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if fast && deep {
        usage("--fast and --deep are mutually exclusive");
    }

    let mut shapes: Vec<(u32, u64)> = vec![(2, 1)];
    if !fast {
        shapes.push((3, 1));
    }
    if deep {
        shapes.push((2, 2));
        shapes.push((3, 2));
    }

    // The figure-set protocols under default parameters, plus the write-
    // policy shapes the figure set does not cover: the update protocol at
    // both pointer counts and the adaptive hybrid. The aggressive Schmitt
    // thresholds (flip up at +1, back down below 0) force mode flips in
    // the middle of explored histories, so the drained-transition
    // machinery itself — not just each inner protocol — is model-checked.
    let aggressive = ProtocolParams {
        adapt_flip_up: 1,
        adapt_flip_down: 0,
        ..ProtocolParams::default()
    };
    let mut roster: Vec<(String, ProtocolKind, ProtocolParams)> = ProtocolKind::figure_set()
        .into_iter()
        .map(|kind| (kind.name(), kind, ProtocolParams::default()))
        .collect();
    for pointers in [1u32, 2] {
        let kind = ProtocolKind::DirTreeUpdate { pointers, arity: 2 };
        roster.push((kind.name(), kind, ProtocolParams::default()));
    }
    let adp2 = ProtocolKind::DirTreeAdaptive {
        pointers: 2,
        arity: 2,
    };
    roster.push((adp2.name(), adp2, ProtocolParams::default()));
    roster.push((format!("{} up1/dn0", adp2.name()), adp2, aggressive));
    let adp1 = ProtocolKind::DirTreeAdaptive {
        pointers: 1,
        arity: 2,
    };
    roster.push((format!("{} up1/dn0", adp1.name()), adp1, aggressive));
    // Ternary (k=3) tree shapes. Arity only binds at the Figure-6 case-3
    // merge, which fires when all `i` pointers are full and a new
    // requester arrives — so it takes i ≥ 3 for a k=3 tree to behave
    // differently from k=2 at all (for i ≤ 2 at most two equal-height
    // roots ever merge, and the state graphs are identical). The i=3
    // entries below are the smallest shapes where a P=4 frontier adopts
    // *three* equal-height roots in one merge, covering the generalized
    // wave/adoption fan-out the arity-2 sweep cannot reach.
    let tree3 = ProtocolKind::DirTree {
        pointers: 3,
        arity: 3,
    };
    roster.push((tree3.name(), tree3, ProtocolParams::default()));
    let upd3 = ProtocolKind::DirTreeUpdate {
        pointers: 3,
        arity: 3,
    };
    roster.push((upd3.name(), upd3, ProtocolParams::default()));
    let adp3 = ProtocolKind::DirTreeAdaptive {
        pointers: 3,
        arity: 3,
    };
    roster.push((adp3.name(), adp3, ProtocolParams::default()));
    roster.push((format!("{} up1/dn0", adp3.name()), adp3, aggressive));
    // The home node holds no pointer for itself, so an i=3 merge needs
    // four *remote* requesters — the ternary entries additionally run at
    // P=5 (below), the smallest population where the three-way adoption
    // is reachable at all.
    let p5_names: Vec<String> = vec![
        tree3.name(),
        upd3.name(),
        adp3.name(),
        format!("{} up1/dn0", adp3.name()),
    ];

    let roster: Vec<(String, ProtocolKind, ProtocolParams)> = roster
        .into_iter()
        .filter(|(name, _, _)| match &filter {
            Some(f) => name.to_lowercase().contains(&f.to_lowercase()),
            None => true,
        })
        .collect();

    let mut passed = 0u32;
    let mut failed = 0u32;
    let mut limited = 0u32;
    let mut run_one = |name: &str, kind: ProtocolKind, params: ProtocolParams, nodes, blocks| {
        let mut cfg = CheckConfig::small(nodes, blocks);
        cfg.symmetry = symmetry;
        cfg.por = por;
        if let Some(j) = jobs {
            cfg.jobs = j.max(1);
        }
        if let Some(f) = fuel {
            cfg.fuel = f;
        }
        let factory = || build_protocol(kind, params);
        let start = std::time::Instant::now();
        let outcome = explore(&cfg, factory);
        let elapsed = start.elapsed();
        let rep = match &outcome {
            CheckOutcome::Violation(cx) => {
                failed += 1;
                Some(replay(&cfg, factory, &cx.choices, 256))
            }
            CheckOutcome::Pass { .. } => {
                passed += 1;
                None
            }
            CheckOutcome::ResourceLimit { .. } => {
                limited += 1;
                None
            }
        };
        println!(
            "{}  [{:.2?}]",
            report::render(name, &cfg, &outcome, rep.as_ref()).trim_end(),
            elapsed
        );
    };
    for (name, kind, params) in &roster {
        for &(nodes, blocks) in &shapes {
            run_one(name, *kind, *params, nodes, blocks);
        }
    }
    // The P≥4 tier: the order-6 (P=4) / order-24 (P=5) home-fixing
    // symmetry groups make single-block exhaustion tractable, but the
    // tier can still cost minutes on a slow machine, so the default run
    // takes the slice that fits a wall-clock budget (in roster order — a
    // stable prefix) and defers the rest to --deep. The P=5 leg covers
    // only the ternary i=3 entries: that is the smallest population
    // where a directory merge adopts three equal-height roots.
    if !fast {
        let slice_start = std::time::Instant::now();
        let budget = std::time::Duration::from_secs(budget_secs);
        let mut skipped = 0u32;
        let mut budgeted = |run: &mut dyn FnMut()| {
            if !deep && slice_start.elapsed() > budget {
                skipped += 1;
            } else {
                run();
            }
        };
        for (name, kind, params) in &roster {
            budgeted(&mut || run_one(name, *kind, *params, 4, 1));
        }
        for (name, kind, params) in &roster {
            if p5_names.contains(name) {
                budgeted(&mut || run_one(name, *kind, *params, 5, 1));
            }
        }
        if skipped > 0 {
            println!(
                "P>=4 slice: {budget_secs}s budget exhausted, {skipped} shape(s) \
                 deferred to --deep"
            );
        }
    }
    // Network-shape check: the request/reply channel deadlock is a
    // machine-level property (bounded channel buffers), invisible to the
    // protocol-state exploration above, so it gets its own timed run.
    if filter.is_none() {
        match net_shape_deadlock_check() {
            Ok(line) => {
                passed += 1;
                println!("{line}");
            }
            Err(line) => {
                failed += 1;
                println!("{line}");
            }
        }
    }

    println!("\n{passed} passed, {failed} violated, {limited} resource-limited");
    if failed > 0 {
        std::process::exit(1);
    }
    if limited > 0 {
        std::process::exit(2);
    }
}

/// Pin the request/reply cyclic wait: crossed remote reads on a 2-node
/// machine with one buffer per (node, channel) must deadlock — reported
/// structurally, not as a hang or livelock — on a single channel, and
/// must complete once request/reply/ack ride separate virtual channels.
fn net_shape_deadlock_check() -> Result<String, String> {
    let crossed_reads = || -> Box<dyn Driver> {
        Box::new(ScriptDriver::new(vec![
            vec![DriverOp::Read(1)],
            vec![DriverOp::Read(2)],
        ]))
    };
    let mut cfg = MachineConfig::test_default(2);
    cfg.net.vc_credits = 1;
    let start = std::time::Instant::now();
    let single = Machine::new(cfg, ProtocolKind::FullMap).try_run(crossed_reads().as_mut());
    let parked = match single {
        Err(StallError::Deadlock { parked_sends, .. }) if !parked_sends.is_empty() => {
            parked_sends.len()
        }
        other => {
            return Err(format!(
                "net-shape request/reply cycle    FAIL: expected a structured deadlock \
                 on one channel, got {other:?}"
            ))
        }
    };
    cfg.net.vcs = 3;
    match Machine::new(cfg, ProtocolKind::FullMap).try_run(crossed_reads().as_mut()) {
        Ok(_) => Ok(format!(
            "net-shape request/reply cycle    PASS: 1 VC deadlocks ({parked} parked \
             sends), 3 VCs complete  [{:.2?}]",
            start.elapsed()
        )),
        Err(e) => Err(format!(
            "net-shape request/reply cycle    FAIL: still stalls with 3 VCs: {e}"
        )),
    }
}

fn expect_arg<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a numeric value")))
}

fn usage(err: &str) -> ! {
    eprintln!("check_all: {err}");
    eprintln!(
        "usage: check_all [--fast | --deep] [--budget SECS] [--no-sym] [--no-por] \
         [--jobs N] [--fuel N] [--filter STR]"
    );
    std::process::exit(64);
}
