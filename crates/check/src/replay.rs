//! Deterministic counterexample replay.
//!
//! Re-executes an explorer counterexample step by step on a fresh state,
//! recording every network send into a [`MsgTrace`] and describing each
//! applied choice. The replay is pure recomputation — same initial state,
//! same choice sequence — so it must reproduce the exact violation the
//! explorer reported; a mismatch means the protocol's `boxed_clone` /
//! `fingerprint` miss state (the checker's own mutation tests assert the
//! round trip).

use crate::explore::CheckConfig;
use crate::state::{CheckState, Choice};
use dirtree_core::protocol::Protocol;
use dirtree_machine::MsgTrace;

/// The result of replaying a choice sequence.
pub struct ReplayReport {
    /// The violation the final step produced (`None` if the sequence
    /// replayed clean — which for an explorer counterexample is a bug).
    pub violation: Option<String>,
    /// Human-readable description of each applied choice, in order.
    pub steps: Vec<String>,
    /// Message-level trace of the replay, via [`MsgTrace::render`].
    pub trace: String,
    /// Events evicted from the trace ring (see [`MsgTrace::dropped`]);
    /// non-zero means `trace` shows only the tail of the traffic.
    pub trace_dropped: u64,
}

/// Replay `choices` against a fresh `factory()` protocol under `cfg`,
/// tracing up to `trace_capacity` message sends.
pub fn replay<F>(
    cfg: &CheckConfig,
    factory: F,
    choices: &[Choice],
    trace_capacity: usize,
) -> ReplayReport
where
    F: Fn() -> Box<dyn Protocol>,
{
    let mut state = CheckState::new(cfg.nodes, cfg.fuel, cfg.addrs(), factory());
    state.ctx.enable_send_log();
    let mut steps = Vec::with_capacity(choices.len());
    let mut violation = state.post_check().err();
    for &choice in choices {
        if violation.is_some() {
            break;
        }
        steps.push(state.describe(choice));
        violation = state.apply(choice).err();
    }
    let mut trace = MsgTrace::new(trace_capacity.max(1), None);
    for (at, dst, msg) in state.ctx.send_log() {
        trace.record(*at, *dst, msg);
    }
    ReplayReport {
        violation,
        steps,
        trace: trace.render(),
        trace_dropped: trace.dropped(),
    }
}
