//! Injected protocol bugs — mutation tests for the checker itself.
//!
//! Each mutant wraps a correct protocol and corrupts exactly one behavior
//! via a [`ProtoCtx`] shim, the first time the opportunity arises. The
//! model checker must find every one of them with a minimal
//! counterexample; if a mutant ever survives exploration, the checker has
//! lost its teeth (the same philosophy as `tests/witness_catches_bugs.rs`
//! for the simulator witness).

use dirtree_core::ctx::{ProtoCtx, ProtoEvent};
use dirtree_core::msg::{Msg, MsgKind};
use dirtree_core::protocol::{build_protocol, Protocol, ProtocolKind, ProtocolParams};
use dirtree_core::types::{Addr, LineState, NodeId, OpKind};
use dirtree_sim::Cycle;

/// Which single behavior to corrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutantKind {
    /// Swallow the first directory-originated `Inv` and forge its
    /// `InvAck`: the sharer's copy survives the write.
    DropInv,
    /// The first invalidation a cache handles is acknowledged without
    /// actually killing the copy (the line stays readable).
    PrematureAck,
    /// Truncate the first non-empty `ReadReply` adopt list: a subtree is
    /// orphaned from the directory's recorded forest.
    StaleTreePointer,
    /// Alias the directory's invalidation-wave scratch buffer across two
    /// waves: the second wave's first invalidation is redirected to a
    /// target *recorded during the first wave*, as if `wave_scratch` in
    /// `dir_tree` were reused without being cleared. The real target's
    /// copy survives the write.
    StaleWaveScratch,
    /// Swallow (and forge the ack for) every directory-originated `Inv`
    /// addressed to processor 2 *specifically*; other targets invalidate
    /// normally. The bug keys on a node id's magnitude, so it is
    /// deliberately **asymmetric**: relabeling processors moves it. It
    /// exists to pin the soundness contract of the checker's symmetry
    /// reduction — [`Mutated`] does not implement `Protocol::relabeled`,
    /// so the group must degenerate to the identity and exploration with
    /// reductions enabled must still report this bug (a checker that
    /// wrongly canonicalized over uncertified protocols could merge the
    /// buggy orbit member with a clean one and mask it).
    AsymmetricDropInv,
}

/// A correct protocol with one injected bug.
pub struct Mutated {
    inner: Box<dyn Protocol>,
    kind: MutantKind,
    tripped: bool,
    /// Targets of the first directory-originated invalidation wave — the
    /// "stale scratch contents" `StaleWaveScratch` replays on the second
    /// wave. Explored state, so it participates in `fingerprint`.
    first_wave: Vec<NodeId>,
    /// Directory invalidation waves observed so far (a wave = all
    /// `Inv { from_dir: true }` sends within one handler call).
    waves_seen: u32,
}

impl Mutated {
    pub fn new(inner: Box<dyn Protocol>, kind: MutantKind) -> Self {
        Self {
            inner,
            kind,
            tripped: false,
            first_wave: Vec::new(),
            waves_seen: 0,
        }
    }

    /// Factory for the explorer: a fresh mutant around `build_protocol`.
    pub fn factory(
        proto: ProtocolKind,
        params: ProtocolParams,
        kind: MutantKind,
    ) -> impl Fn() -> Box<dyn Protocol> + Sync {
        move || Box::new(Mutated::new(build_protocol(proto, params), kind))
    }
}

/// The sabotaging context shim. `active` gates mutations that must only
/// fire while handling a specific message kind.
struct MutCtx<'a> {
    inner: &'a mut dyn ProtoCtx,
    kind: MutantKind,
    tripped: &'a mut bool,
    active: bool,
    first_wave: &'a mut Vec<NodeId>,
    waves_seen: &'a mut u32,
    /// Whether *this* handler call has already emitted a directory-wave
    /// invalidation (the shim lives for one call, so this groups one
    /// call's `from_dir` sends into one wave).
    wave_started: bool,
}

impl ProtoCtx for MutCtx<'_> {
    fn now(&self) -> Cycle {
        self.inner.now()
    }
    fn num_nodes(&self) -> u32 {
        self.inner.num_nodes()
    }
    fn home_of(&self, addr: Addr) -> NodeId {
        self.inner.home_of(addr)
    }

    fn send(&mut self, dst: NodeId, msg: Msg) {
        if !*self.tripped {
            match (self.kind, &msg.kind) {
                (MutantKind::DropInv, MsgKind::Inv { from_dir: true, .. })
                | (MutantKind::AsymmetricDropInv, MsgKind::Inv { from_dir: true, .. })
                    if self.kind == MutantKind::DropInv || dst == 2 =>
                {
                    // Swallow the invalidation; forge the ack to its sender.
                    *self.tripped = true;
                    let src = msg.src;
                    self.inner.redeliver(
                        src,
                        Msg {
                            addr: msg.addr,
                            src: dst,
                            kind: MsgKind::InvAck { dir: true },
                        },
                        1,
                    );
                    return;
                }
                (MutantKind::StaleTreePointer, MsgKind::ReadReply { adopt })
                    if !adopt.is_empty() =>
                {
                    *self.tripped = true;
                    let mut adopt = adopt.clone();
                    adopt.pop();
                    self.inner.send(
                        dst,
                        Msg {
                            addr: msg.addr,
                            src: msg.src,
                            kind: MsgKind::ReadReply { adopt },
                        },
                    );
                    return;
                }
                _ => {}
            }
        }
        if self.kind == MutantKind::StaleWaveScratch {
            if let MsgKind::Inv { from_dir: true, .. } = msg.kind {
                if !self.wave_started {
                    self.wave_started = true;
                    *self.waves_seen += 1;
                }
                if *self.waves_seen == 1 {
                    self.first_wave.push(dst);
                } else if !*self.tripped {
                    // Second wave: replay a stale target from the first
                    // wave's "scratch" instead of the real one (only a
                    // *different* target models an aliasing bug).
                    if let Some(&stale) = self.first_wave.iter().find(|&&t| t != dst) {
                        *self.tripped = true;
                        self.inner.send(stale, msg);
                        return;
                    }
                }
            }
        }
        self.inner.send(dst, msg);
    }

    fn broadcast(&mut self, msg: Msg) -> Cycle {
        self.inner.broadcast(msg)
    }
    fn redeliver(&mut self, node: NodeId, msg: Msg, delay: Cycle) {
        self.inner.redeliver(node, msg, delay);
    }
    fn occupy(&mut self, node: NodeId, cycles: Cycle) {
        self.inner.occupy(node, cycles);
    }
    fn line_state(&self, node: NodeId, addr: Addr) -> LineState {
        self.inner.line_state(node, addr)
    }

    fn set_line_state(&mut self, node: NodeId, addr: Addr, state: LineState) {
        if self.active
            && !*self.tripped
            && self.kind == MutantKind::PrematureAck
            && state == LineState::Iv
            && self.inner.line_state(node, addr).readable()
        {
            // Ack flows, copy survives.
            *self.tripped = true;
            return;
        }
        self.inner.set_line_state(node, addr, state);
    }

    fn complete(&mut self, node: NodeId, addr: Addr, op: OpKind) {
        self.inner.complete(node, addr, op);
    }
    fn note(&mut self, event: ProtoEvent) {
        self.inner.note(event);
    }
}

impl Protocol for Mutated {
    fn kind(&self) -> ProtocolKind {
        self.inner.kind()
    }

    fn start_miss(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, op: OpKind) {
        let mut shim = MutCtx {
            inner: ctx,
            kind: self.kind,
            tripped: &mut self.tripped,
            active: self.kind != MutantKind::PrematureAck,
            first_wave: &mut self.first_wave,
            waves_seen: &mut self.waves_seen,
            wave_started: false,
        };
        self.inner.start_miss(&mut shim, node, addr, op);
    }

    fn handle(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, msg: Msg) {
        // PrematureAck only corrupts line-state writes made while handling
        // an invalidation — not fills, downgrades, or replacements.
        let active = match self.kind {
            MutantKind::PrematureAck => matches!(msg.kind, MsgKind::Inv { .. }),
            _ => true,
        };
        let mut shim = MutCtx {
            inner: ctx,
            kind: self.kind,
            tripped: &mut self.tripped,
            active,
            first_wave: &mut self.first_wave,
            waves_seen: &mut self.waves_seen,
            wave_started: false,
        };
        self.inner.handle(&mut shim, node, msg);
    }

    fn evict(&mut self, ctx: &mut dyn ProtoCtx, node: NodeId, addr: Addr, state: LineState) {
        let mut shim = MutCtx {
            inner: ctx,
            kind: self.kind,
            tripped: &mut self.tripped,
            active: self.kind != MutantKind::PrematureAck,
            first_wave: &mut self.first_wave,
            waves_seen: &mut self.waves_seen,
            wave_started: false,
        };
        self.inner.evict(&mut shim, node, addr, state);
    }

    fn dir_bits_per_mem_block(&self, nodes: u32) -> u64 {
        self.inner.dir_bits_per_mem_block(nodes)
    }
    fn cache_bits_per_line(&self, nodes: u32) -> u64 {
        self.inner.cache_bits_per_line(nodes)
    }
    fn is_update(&self) -> bool {
        self.inner.is_update()
    }
    fn is_update_for(&self, addr: Addr) -> bool {
        self.inner.is_update_for(addr)
    }
    fn wants_read_hits(&self) -> bool {
        self.inner.wants_read_hits()
    }
    fn note_read_hit(&mut self, node: NodeId, addr: Addr) {
        self.inner.note_read_hit(node, addr);
    }
    fn note_op_retired(&mut self, node: NodeId, addr: Addr, op: OpKind) {
        self.inner.note_op_retired(node, addr, op);
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(Mutated {
            inner: self.inner.boxed_clone(),
            kind: self.kind,
            tripped: self.tripped,
            first_wave: self.first_wave.clone(),
            waves_seen: self.waves_seen,
        })
    }

    fn fingerprint(&self, h: &mut dyn std::hash::Hasher) {
        self.inner.fingerprint(h);
        h.write_u8(self.tripped as u8);
        h.write_u32(self.waves_seen);
        for &t in &self.first_wave {
            h.write_u32(t);
        }
    }

    fn check_invariants(
        &self,
        ctx: &dyn ProtoCtx,
        addrs: &[Addr],
        quiescent: bool,
    ) -> Result<(), String> {
        self.inner.check_invariants(ctx, addrs, quiescent)
    }
}
