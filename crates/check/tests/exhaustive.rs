//! Integration tests for the model checker: the figure-set protocols are
//! exhaustively clean at the smallest configuration, exploration is
//! deterministic regardless of worker count, and budgets come back as
//! structured resource reports instead of hangs.

use dirtree_check::{
    explore, replay, CheckConfig, CheckOutcome, CheckState, Choice, MutantKind, Mutated,
};
use dirtree_core::protocol::{build_protocol, ProtocolKind, ProtocolParams};
use dirtree_core::types::NodeId;

/// Every protocol of the paper's figure set survives exhaustive
/// exploration at P = 2, one block (the CI fast tier; `check_all` covers
/// the larger shapes).
#[test]
fn figure_set_is_exhaustively_clean_at_p2() {
    let params = ProtocolParams::default();
    for kind in ProtocolKind::figure_set() {
        let cfg = CheckConfig::small(2, 1);
        let outcome = explore(&cfg, || build_protocol(kind, params));
        assert!(
            outcome.is_pass(),
            "{} failed exhaustive exploration: {outcome:?}",
            kind.name()
        );
        assert!(
            outcome.states() > 1000,
            "{} explored suspiciously few states ({})",
            kind.name(),
            outcome.states()
        );
    }
}

/// The BFS result — including the counterexample, when there is one — is
/// independent of the worker count.
#[test]
fn exploration_is_deterministic_across_jobs() {
    let factory = Mutated::factory(
        ProtocolKind::FullMap,
        ProtocolParams::default(),
        MutantKind::DropInv,
    );
    let mut cfg = CheckConfig::small(2, 1);
    cfg.jobs = 1;
    let CheckOutcome::Violation(serial) = explore(&cfg, &factory) else {
        panic!("mutant survived serial exploration");
    };
    cfg.jobs = 4;
    let CheckOutcome::Violation(parallel) = explore(&cfg, &factory) else {
        panic!("mutant survived parallel exploration");
    };
    assert_eq!(serial.choices, parallel.choices);
    assert_eq!(serial.violation, parallel.violation);
    assert_eq!(serial.states, parallel.states);
}

/// An exhausted depth budget is a structured report, not a hang or a
/// panic — the checker's bounded-step stall guard.
#[test]
fn depth_budget_reports_a_resource_limit() {
    let mut cfg = CheckConfig::small(2, 1);
    cfg.max_depth = 3;
    let outcome = explore(&cfg, || {
        build_protocol(ProtocolKind::FullMap, ProtocolParams::default())
    });
    let CheckOutcome::ResourceLimit { reason, depth, .. } = outcome else {
        panic!("expected a resource limit, got {outcome:?}");
    };
    assert_eq!(depth, 3);
    assert!(
        reason.contains("no quiescence after"),
        "unexpected reason: {reason}"
    );
}

/// Same guard for the state budget.
#[test]
fn state_budget_reports_a_resource_limit() {
    let mut cfg = CheckConfig::small(2, 1);
    cfg.max_states = 50;
    let outcome = explore(&cfg, || {
        build_protocol(ProtocolKind::FullMap, ProtocolParams::default())
    });
    let CheckOutcome::ResourceLimit { reason, .. } = outcome else {
        panic!("expected a resource limit, got {outcome:?}");
    };
    assert!(
        reason.contains("state budget"),
        "unexpected reason: {reason}"
    );
}

/// A replayed counterexample narrates every step and renders a message
/// trace with an explicit dropped-event count.
#[test]
fn replay_renders_steps_and_trace() {
    let factory = Mutated::factory(
        ProtocolKind::FullMap,
        ProtocolParams::default(),
        MutantKind::DropInv,
    );
    let cfg = CheckConfig::small(2, 1);
    let CheckOutcome::Violation(cx) = explore(&cfg, &factory) else {
        panic!("mutant survived exploration");
    };
    let rep = replay(&cfg, &factory, &cx.choices, 256);
    assert_eq!(rep.violation.as_deref(), Some(cx.violation.as_str()));
    assert_eq!(rep.steps.len(), cx.choices.len());
    assert!(!rep.trace.is_empty());
    assert_eq!(rep.trace_dropped, 0, "256-entry ring should hold it all");

    // A one-entry ring must drop traffic and say so.
    let tiny = replay(&cfg, &factory, &cx.choices, 1);
    assert!(tiny.trace_dropped > 0);
}

/// The silent-replacement / write-grant race the checker found in
/// Dir_1Tree_2 (fixed by zombie edges): the exact 12-step interleaving —
/// both processors read, the ex-root evicts and immediately rewrites
/// while its `ReplaceInv` is still in flight — must stay clean.
#[test]
fn dir1tree2_evict_then_write_race_stays_closed() {
    let cfg = CheckConfig::small(2, 1);
    let outcome = explore(&cfg, || {
        build_protocol(
            ProtocolKind::DirTree {
                pointers: 1,
                arity: 2,
            },
            ProtocolParams::default(),
        )
    });
    assert!(
        outcome.is_pass(),
        "Dir_1Tree_2 regressed (the PR-2 replacement race?): {outcome:?}"
    );
}

/// Symmetry-soundness mutant: `AsymmetricDropInv` keys on a processor
/// id's magnitude (it only swallows invalidations aimed at node 2), so
/// canonicalizing over node renamings would be *unsound* for it.
/// [`Mutated`] deliberately does not certify `Protocol::relabeled`; the
/// group must degenerate to the identity and exploration with both
/// reductions enabled must report the bug — with exactly the
/// counterexample the unreduced search finds.
#[test]
fn asymmetric_mutant_is_caught_with_reductions_enabled() {
    let factory = Mutated::factory(
        ProtocolKind::FullMap,
        ProtocolParams::default(),
        MutantKind::AsymmetricDropInv,
    );
    let cfg = CheckConfig::small(3, 1);
    assert!(cfg.symmetry && cfg.por, "reductions must default on");
    let CheckOutcome::Violation(reduced) = explore(&cfg, &factory) else {
        panic!("asymmetric mutant survived exploration with reductions on");
    };
    let mut off = cfg.clone();
    off.symmetry = false;
    off.por = false;
    let CheckOutcome::Violation(unreduced) = explore(&off, &factory) else {
        panic!("asymmetric mutant survived unreduced exploration");
    };
    assert_eq!(reduced.choices, unreduced.choices);
    assert_eq!(reduced.violation, unreduced.violation);
    assert_eq!(reduced.states, unreduced.states);
    let rep = replay(&cfg, &factory, &reduced.choices, 256);
    assert_eq!(rep.violation.as_deref(), Some(reduced.violation.as_str()));
}

/// Sleep sets prune *transitions*, never states: with symmetry off, the
/// POR-reduced search must visit exactly the unreduced reachable-state
/// set (same count, same verdict) while doing strictly less successor
/// work.
#[test]
fn sleep_sets_preserve_the_reachable_state_set() {
    let factory = || build_protocol(ProtocolKind::FullMap, ProtocolParams::default());
    let mut cfg = CheckConfig::small(2, 2);
    cfg.fuel = 2;
    cfg.symmetry = false;
    let por = explore(&cfg, factory);
    cfg.por = false;
    let full = explore(&cfg, factory);
    assert!(por.is_pass(), "{por:?}");
    assert!(full.is_pass(), "{full:?}");
    assert_eq!(por.states(), full.states());
    let (ps, fs) = (por.stats().unwrap(), full.stats().unwrap());
    assert!(
        ps.sleep_pruned > 0,
        "two blocks must give POR something to prune"
    );
    assert!(ps.explored < fs.explored);
    assert_eq!(fs.sleep_pruned, 0);
}

/// The symmetry reduction visits one representative per orbit: the
/// verdict is unchanged and the unreduced state count is bounded by the
/// group order times the reduced count.
#[test]
fn symmetry_quotients_states_without_changing_the_verdict() {
    let factory = || build_protocol(ProtocolKind::FullMap, ProtocolParams::default());
    let mut cfg = CheckConfig::small(3, 1);
    cfg.por = false;
    let sym = explore(&cfg, factory);
    cfg.symmetry = false;
    let full = explore(&cfg, factory);
    assert!(sym.is_pass(), "{sym:?}");
    assert!(full.is_pass(), "{full:?}");
    let ss = sym.stats().unwrap();
    assert_eq!(ss.sym_group, 2, "P=3, home 0 fixed: {{id, swap(1,2)}}");
    assert!(sym.states() < full.states());
    assert!(full.states() <= ss.sym_group * sym.states());
}

/// The acceptance bar for the reductions: on a shape where both the
/// reduced and unreduced searches can run to exhaustion — P = 5 with one
/// block homed at node 0, so the home-fixing group is the full S₄ on the
/// other processors (order 24) — the search with both reductions enabled
/// must do at least 10× fewer successor computations than the unreduced
/// one, with the same verdict. (With a single block every pair of
/// choices shares a footprint, so the sleep sets are inert here; their
/// pruning and state-set preservation are pinned by the two tests
/// above.)
#[test]
fn reductions_cut_explored_work_by_an_order_of_magnitude() {
    let factory = || build_protocol(ProtocolKind::FullMap, ProtocolParams::default());
    let mut cfg = CheckConfig::small(5, 1);
    assert!(cfg.symmetry && cfg.por, "reductions must default on");
    let on = explore(&cfg, factory);
    cfg.symmetry = false;
    cfg.por = false;
    let off = explore(&cfg, factory);
    assert!(on.is_pass(), "{on:?}");
    assert!(off.is_pass(), "{off:?}");
    let (s_on, s_off) = (on.stats().unwrap(), off.stats().unwrap());
    assert_eq!(s_on.sym_group, 24, "P=5, home 0 fixed: S4 on nodes 1..=4");
    assert!(
        s_off.explored >= 10 * s_on.explored,
        "expected >=10x: unreduced explored {} vs reduced {}",
        s_off.explored,
        s_on.explored
    );
}

/// The ternary (k=3) roster entries are not vacuous: arity only binds at
/// the Figure-6 case-3 merge, which needs all `i` pointers full plus a
/// new *remote* requester — with i=3 that takes four remotes, i.e. P=5.
/// There, an arity-3 tree must genuinely diverge from the arity-2 tree
/// (three equal-height roots adopted in one merge), and both must stay
/// exhaustively clean.
#[test]
fn ternary_merge_diverges_from_binary_at_p5() {
    let cfg = CheckConfig::small(5, 1);
    let run = |arity| {
        explore(&cfg, || {
            build_protocol(
                ProtocolKind::DirTree { pointers: 3, arity },
                ProtocolParams::default(),
            )
        })
    };
    let ternary = run(3);
    let binary = run(2);
    assert!(ternary.is_pass(), "{ternary:?}");
    assert!(binary.is_pass(), "{binary:?}");
    assert_ne!(
        ternary.states(),
        binary.states(),
        "arity never bound: the k=3 sweep would be re-checking the k=2 graphs"
    );
}

/// With both reductions enabled, the layer-synchronous merge keeps the
/// P=4 exploration bit-identical regardless of worker count: verdict,
/// state count, and every work counter must match between 1 and 8 jobs.
#[test]
fn p4_reduced_exploration_is_deterministic_across_jobs() {
    let factory = || build_protocol(ProtocolKind::FullMap, ProtocolParams::default());
    let mut cfg = CheckConfig::small(4, 1);
    assert!(cfg.symmetry && cfg.por, "reductions must default on");
    cfg.jobs = 1;
    let serial = explore(&cfg, factory);
    cfg.jobs = 8;
    let parallel = explore(&cfg, factory);
    assert!(serial.is_pass(), "{serial:?}");
    assert_eq!(serial.states(), parallel.states());
    assert_eq!(serial.stats(), parallel.stats());
}

/// Empirical equivariance check behind the symmetry reduction's soundness
/// argument: running a choice sequence and then relabeling the state must
/// equal relabeling first and running the renamed sequence. Walked over a
/// deterministic pseudo-random path through Dir_1Tree_2's choice graph,
/// comparing full state digests at every step.
#[test]
fn relabeling_commutes_with_execution() {
    let params = ProtocolParams::default();
    let kind = ProtocolKind::DirTree {
        pointers: 1,
        arity: 2,
    };
    let perm: Vec<NodeId> = vec![0, 2, 1];
    let map_choice = |c: Choice| match c {
        Choice::Deliver { src, dst } => Choice::Deliver {
            src: perm[src as usize],
            dst: perm[dst as usize],
        },
        Choice::Local { node } => Choice::Local {
            node: perm[node as usize],
        },
        Choice::Op { node, op } => Choice::Op {
            node: perm[node as usize],
            op,
        },
    };
    let mut a = CheckState::new(3, 2, vec![0], build_protocol(kind, params));
    let mut b = CheckState::new(3, 2, vec![0], build_protocol(kind, params));
    for step in 0..60usize {
        let choices = a.enabled_choices();
        if choices.is_empty() {
            assert!(step > 10, "walk quiesced suspiciously early");
            break;
        }
        // A deterministic scramble so the walk leaves the lockstep paths.
        let c = choices[(step * 7 + 3) % choices.len()];
        a.apply(c)
            .unwrap_or_else(|v| panic!("walk hit a violation: {v}"));
        b.apply(map_choice(c))
            .unwrap_or_else(|v| panic!("renamed walk diverged into a violation: {v}"));
        let ra = a
            .relabeled(&perm)
            .expect("DirTree certifies Protocol::relabeled");
        assert_eq!(
            ra.digest(),
            b.digest(),
            "relabel(run(s)) != run(relabel(s)) at step {step}"
        );
    }
}
