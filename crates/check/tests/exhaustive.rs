//! Integration tests for the model checker: the figure-set protocols are
//! exhaustively clean at the smallest configuration, exploration is
//! deterministic regardless of worker count, and budgets come back as
//! structured resource reports instead of hangs.

use dirtree_check::{explore, replay, CheckConfig, CheckOutcome, MutantKind, Mutated};
use dirtree_core::protocol::{build_protocol, ProtocolKind, ProtocolParams};

/// Every protocol of the paper's figure set survives exhaustive
/// exploration at P = 2, one block (the CI fast tier; `check_all` covers
/// the larger shapes).
#[test]
fn figure_set_is_exhaustively_clean_at_p2() {
    let params = ProtocolParams::default();
    for kind in ProtocolKind::figure_set() {
        let cfg = CheckConfig::small(2, 1);
        let outcome = explore(&cfg, || build_protocol(kind, params));
        assert!(
            outcome.is_pass(),
            "{} failed exhaustive exploration: {outcome:?}",
            kind.name()
        );
        assert!(
            outcome.states() > 1000,
            "{} explored suspiciously few states ({})",
            kind.name(),
            outcome.states()
        );
    }
}

/// The BFS result — including the counterexample, when there is one — is
/// independent of the worker count.
#[test]
fn exploration_is_deterministic_across_jobs() {
    let factory = Mutated::factory(
        ProtocolKind::FullMap,
        ProtocolParams::default(),
        MutantKind::DropInv,
    );
    let mut cfg = CheckConfig::small(2, 1);
    cfg.jobs = 1;
    let CheckOutcome::Violation(serial) = explore(&cfg, &factory) else {
        panic!("mutant survived serial exploration");
    };
    cfg.jobs = 4;
    let CheckOutcome::Violation(parallel) = explore(&cfg, &factory) else {
        panic!("mutant survived parallel exploration");
    };
    assert_eq!(serial.choices, parallel.choices);
    assert_eq!(serial.violation, parallel.violation);
    assert_eq!(serial.states, parallel.states);
}

/// An exhausted depth budget is a structured report, not a hang or a
/// panic — the checker's bounded-step stall guard.
#[test]
fn depth_budget_reports_a_resource_limit() {
    let mut cfg = CheckConfig::small(2, 1);
    cfg.max_depth = 3;
    let outcome = explore(&cfg, || {
        build_protocol(ProtocolKind::FullMap, ProtocolParams::default())
    });
    let CheckOutcome::ResourceLimit { reason, depth, .. } = outcome else {
        panic!("expected a resource limit, got {outcome:?}");
    };
    assert_eq!(depth, 3);
    assert!(
        reason.contains("no quiescence after"),
        "unexpected reason: {reason}"
    );
}

/// Same guard for the state budget.
#[test]
fn state_budget_reports_a_resource_limit() {
    let mut cfg = CheckConfig::small(2, 1);
    cfg.max_states = 50;
    let outcome = explore(&cfg, || {
        build_protocol(ProtocolKind::FullMap, ProtocolParams::default())
    });
    let CheckOutcome::ResourceLimit { reason, .. } = outcome else {
        panic!("expected a resource limit, got {outcome:?}");
    };
    assert!(
        reason.contains("state budget"),
        "unexpected reason: {reason}"
    );
}

/// A replayed counterexample narrates every step and renders a message
/// trace with an explicit dropped-event count.
#[test]
fn replay_renders_steps_and_trace() {
    let factory = Mutated::factory(
        ProtocolKind::FullMap,
        ProtocolParams::default(),
        MutantKind::DropInv,
    );
    let cfg = CheckConfig::small(2, 1);
    let CheckOutcome::Violation(cx) = explore(&cfg, &factory) else {
        panic!("mutant survived exploration");
    };
    let rep = replay(&cfg, &factory, &cx.choices, 256);
    assert_eq!(rep.violation.as_deref(), Some(cx.violation.as_str()));
    assert_eq!(rep.steps.len(), cx.choices.len());
    assert!(!rep.trace.is_empty());
    assert_eq!(rep.trace_dropped, 0, "256-entry ring should hold it all");

    // A one-entry ring must drop traffic and say so.
    let tiny = replay(&cfg, &factory, &cx.choices, 1);
    assert!(tiny.trace_dropped > 0);
}

/// The silent-replacement / write-grant race the checker found in
/// Dir_1Tree_2 (fixed by zombie edges): the exact 12-step interleaving —
/// both processors read, the ex-root evicts and immediately rewrites
/// while its `ReplaceInv` is still in flight — must stay clean.
#[test]
fn dir1tree2_evict_then_write_race_stays_closed() {
    let cfg = CheckConfig::small(2, 1);
    let outcome = explore(&cfg, || {
        build_protocol(
            ProtocolKind::DirTree {
                pointers: 1,
                arity: 2,
            },
            ProtocolParams::default(),
        )
    });
    assert!(
        outcome.is_pass(),
        "Dir_1Tree_2 regressed (the PR-2 replacement race?): {outcome:?}"
    );
}
