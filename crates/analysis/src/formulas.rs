//! Analytic models: Table 1 message counts and the §2 directory-memory
//! formulas.

use dirtree_core::protocol::ProtocolKind;

/// Table 1's analytic message count for a read miss, as a `(lo, hi)`
/// range (single numbers are `(n, n)`), for `p` processors sharing the
/// block. Counts are critical-path messages.
pub fn read_miss_messages(kind: ProtocolKind, p: u64) -> (u64, u64) {
    let logp = (p.max(2) as f64).log2().ceil() as u64;
    match kind {
        ProtocolKind::FullMap
        | ProtocolKind::LimitedNB { .. }
        | ProtocolKind::LimitedB { .. }
        | ProtocolKind::LimitLess { .. }
        | ProtocolKind::DirTree { .. }
        | ProtocolKind::DirTreeUpdate { .. }
        | ProtocolKind::DirTreeAdaptive { .. } => (2, 2),
        // Snooping: request + broadcast + data = 3 bus transactions.
        ProtocolKind::Snoop => (3, 3),
        ProtocolKind::SinglyList => (3, 3),
        ProtocolKind::Sci => (4, 4),
        ProtocolKind::Stp { .. } => (4, 8),
        ProtocolKind::SciTree => (4, 2 * logp.max(2)),
    }
}

/// Table 1's analytic message count for a write miss invalidating `p`
/// sharers. Values are critical-path messages; the LimitLESS software
/// delay and Dir_iNB extra invalidations are modeled in the simulator,
/// not in this count.
pub fn write_miss_messages(kind: ProtocolKind, p: u64) -> (u64, u64) {
    match kind {
        ProtocolKind::FullMap
        | ProtocolKind::LimitedNB { .. }
        | ProtocolKind::LimitedB { .. }
        | ProtocolKind::LimitLess { .. } => (2 * p + 2, 2 * p + 2),
        ProtocolKind::SinglyList => (p + 2, p + 3),
        ProtocolKind::Sci => (2 * p + 2, 2 * p + 4),
        // Tree protocols: one inv + one ack per sharer (each copy is
        // touched twice), plus request and grant — the win is latency
        // (logarithmic depth), not raw message count.
        ProtocolKind::Stp { .. }
        | ProtocolKind::SciTree
        | ProtocolKind::DirTree { .. }
        | ProtocolKind::DirTreeUpdate { .. }
        | ProtocolKind::DirTreeAdaptive { .. } => (2 * p + 2, 2 * p + 2),
        // One broadcast invalidates everyone: constant bus transactions.
        ProtocolKind::Snoop => (3, 3),
    }
}

/// Machine timing constants for the latency models (defaults = Table 5
/// with the average hypercube hop distance for 32 nodes).
#[derive(Clone, Copy, Debug)]
pub struct LatencyParams {
    /// Average one-way network hops.
    pub hops: f64,
    /// Per-hop switch delay.
    pub switch: f64,
    /// Control-message serialization cycles (header / link width).
    pub ser_ctrl: f64,
    /// Data-message serialization cycles (header + block).
    pub ser_data: f64,
    /// Memory (directory) access latency.
    pub mem: f64,
    /// Cache controller latency.
    pub cache: f64,
}

impl Default for LatencyParams {
    fn default() -> Self {
        Self {
            hops: 2.5, // mean distance in a 32-node hypercube
            switch: 1.0,
            ser_ctrl: 8.0,
            ser_data: 16.0,
            mem: 5.0,
            cache: 1.0,
        }
    }
}

impl LatencyParams {
    fn ctrl_flight(&self) -> f64 {
        self.hops * self.switch + self.ser_ctrl
    }

    fn data_flight(&self) -> f64 {
        self.hops * self.switch + self.ser_data
    }
}

/// Analytic critical-path latency of a write miss over `p` sharers — the
/// model behind the paper's Θ(P) vs Θ(log P) invalidation claim.
///
/// Approximations: request + directory access up front, grant at the end;
/// in between,
/// * the bit-map family serializes `p` invalidation injections at the home
///   NIC and `p` acknowledgement receptions at the home controller;
/// * SCI purges one successor per round trip (`p` serial round trips);
/// * the singly linked list walks the chain (`p` serial hops);
/// * the tree protocols pay tree-depth hops down and up plus a constant
///   number of home acknowledgements.
pub fn write_miss_latency_model(kind: ProtocolKind, p: u64, lp: &LatencyParams) -> f64 {
    let pf = p as f64;
    let request = lp.ctrl_flight() + lp.mem;
    let grant = lp.data_flight() + lp.cache;
    let body = match kind {
        ProtocolKind::FullMap
        | ProtocolKind::LimitedNB { .. }
        | ProtocolKind::LimitedB { .. }
        | ProtocolKind::LimitLess { .. } => {
            // p serialized injections, flight, invalidate, flight back,
            // p serialized ack receptions (5-cycle directory each).
            pf * lp.ser_ctrl + lp.hops * lp.switch + lp.cache + lp.ctrl_flight() + pf * lp.mem
        }
        ProtocolKind::SinglyList => pf * (lp.ctrl_flight() + lp.cache) + lp.ctrl_flight(),
        ProtocolKind::Sci => 2.0 * pf * (lp.ctrl_flight() + lp.cache) + lp.ctrl_flight(),
        ProtocolKind::Stp { arity } => {
            let depth = (pf.max(2.0)).log(arity.max(2) as f64).ceil();
            2.0 * depth * (lp.ctrl_flight() + lp.cache) + lp.ctrl_flight() + lp.mem
        }
        ProtocolKind::SciTree => {
            let depth = pf.max(2.0).log2().ceil();
            2.0 * depth * (lp.ctrl_flight() + lp.cache) + lp.ctrl_flight() + lp.mem
        }
        ProtocolKind::Snoop => {
            // Broadcast + snoop window + data: constant in P.
            lp.ctrl_flight() + 4.0 + lp.cache
        }
        ProtocolKind::DirTree { pointers, .. }
        | ProtocolKind::DirTreeUpdate { pointers, .. }
        | ProtocolKind::DirTreeAdaptive { pointers, .. } => {
            // Depth of the tallest tree in an i-pointer forest of p nodes
            // (~log2 of the biggest tree) + pairing hop + ceil(i/2) acks.
            let per_tree = (pf / pointers.max(1) as f64).max(1.0);
            let depth = (per_tree + 1.0).log2().ceil().max(1.0);
            let pairs = (pointers.min(p as u32) as f64 / 2.0).ceil();
            2.0 * depth * (lp.ctrl_flight() + lp.cache)
                + lp.ctrl_flight() // even -> odd pairing hop
                + pairs * lp.mem
        }
    };
    request + body + grant
}

/// §2: total directory memory in **bits** for an `n`-node machine with
/// `mem_blocks` shared-memory blocks and `cache_blocks` cache lines per
/// node, for the given protocol.
pub fn directory_bits(
    kind: ProtocolKind,
    n: u32,
    mem_blocks_per_node: u64,
    cache_blocks_per_node: u64,
) -> u64 {
    let params = dirtree_core::protocol::ProtocolParams::default();
    let proto = dirtree_core::protocol::build_protocol(kind, params);
    let per_mem = proto.dir_bits_per_mem_block(n);
    let per_cache = proto.cache_bits_per_line(n);
    n as u64 * (mem_blocks_per_node * per_mem + cache_blocks_per_node * per_cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_read_column() {
        assert_eq!(read_miss_messages(ProtocolKind::FullMap, 16), (2, 2));
        assert_eq!(
            read_miss_messages(
                ProtocolKind::DirTree {
                    pointers: 4,
                    arity: 2
                },
                16
            ),
            (2, 2)
        );
        assert_eq!(read_miss_messages(ProtocolKind::SinglyList, 16), (3, 3));
        assert_eq!(read_miss_messages(ProtocolKind::Sci, 16), (4, 4));
        assert_eq!(
            read_miss_messages(ProtocolKind::Stp { arity: 2 }, 16),
            (4, 8)
        );
        let (lo, hi) = read_miss_messages(ProtocolKind::SciTree, 16);
        assert_eq!((lo, hi), (4, 8)); // 2·log₂16 = 8
    }

    #[test]
    fn table1_write_column() {
        assert_eq!(write_miss_messages(ProtocolKind::FullMap, 5), (12, 12));
        let (lo, hi) = write_miss_messages(ProtocolKind::SinglyList, 5);
        assert!(lo <= 7 && hi >= 7);
    }

    #[test]
    fn latency_model_shapes_are_the_papers() {
        let lp = LatencyParams::default();
        let fm = |p| write_miss_latency_model(ProtocolKind::FullMap, p, &lp);
        let sci = |p| write_miss_latency_model(ProtocolKind::Sci, p, &lp);
        let tree = |p| {
            write_miss_latency_model(
                ProtocolKind::DirTree {
                    pointers: 4,
                    arity: 2,
                },
                p,
                &lp,
            )
        };
        // Linear growth for full-map and SCI: doubling P roughly doubles
        // the invalidation body.
        assert!(fm(16) > fm(8) * 1.3);
        assert!(sci(16) > sci(8) * 1.5);
        // Logarithmic for the tree: doubling P adds ~one level.
        assert!(tree(16) < tree(8) * 1.3);
        // The tree wins at high sharing degrees.
        assert!(tree(24) < fm(24));
        assert!(tree(24) < sci(24));
        // Snooping is flat.
        let snp = |p| write_miss_latency_model(ProtocolKind::Snoop, p, &lp);
        assert_eq!(snp(2), snp(24));
    }

    #[test]
    fn full_map_memory_is_quadratic() {
        // B·n² presence bits dominate.
        let n = 64;
        let b = 1024;
        let bits = directory_bits(ProtocolKind::FullMap, n, b, 0);
        assert!(bits >= n as u64 * b * n as u64);
    }

    #[test]
    fn dir_tree_memory_is_n_log_n() {
        // B·n·2i·log n + C·k·log n (§3).
        let n = 64;
        let b = 1024;
        let c = 2048;
        let bits = directory_bits(
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
            n,
            b,
            c,
        );
        let expected = n as u64 * (b * (2 * 4 * 6 + 1) + c * (2 * 6 + 3));
        assert_eq!(bits, expected);
    }

    #[test]
    fn dir_tree_directory_beats_full_map_at_scale() {
        // The §2/§3 claim is about the memory-side directory (B·n² vs
        // B·n·2i·log n); the cache-side pointers are the constant price.
        for n in [64u32, 256, 1024] {
            let fm = directory_bits(ProtocolKind::FullMap, n, 1024, 0);
            let dt = directory_bits(
                ProtocolKind::DirTree {
                    pointers: 4,
                    arity: 2,
                },
                n,
                1024,
                0,
            );
            assert!(dt < fm, "Dir4Tree2 directory must be smaller at n={n}");
        }
        // Including cache metadata, the crossover still favours the tree
        // for large machines.
        let fm = directory_bits(ProtocolKind::FullMap, 1024, 1024, 2048);
        let dt = directory_bits(
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
            1024,
            1024,
            2048,
        );
        assert!(dt < fm);
    }
}
