//! # dirtree-analysis — analytic models and the experiment harness
//!
//! Everything needed to regenerate the paper's tables and figures:
//!
//! * [`formulas`] — Table 1 message-count models and the §2 directory
//!   memory-requirement formulas;
//! * [`tree_capacity`] — the Table 3 recurrences and the Table 4
//!   insertion replay for Dir<sub>i</sub>Tree₂ forests;
//! * [`experiments`] — machine construction, workload runs, and the
//!   normalized-execution-time grids of Figures 8–11;
//! * [`tables`] — aligned ASCII table rendering for the bench binaries.

pub mod experiments;
pub mod formulas;
pub mod report;
pub mod tables;
pub mod tree_capacity;
