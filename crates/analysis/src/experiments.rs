//! Machine construction and the figure-style experiment grids.

use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::{Machine, MachineConfig, RunOutcome};
use dirtree_workloads::WorkloadKind;

/// Run one workload on one protocol at one machine size.
pub fn run_workload(
    config: &MachineConfig,
    protocol: ProtocolKind,
    workload: WorkloadKind,
) -> RunOutcome {
    let mut machine = Machine::new(*config, protocol);
    let mut driver = workload.build(config.nodes);
    machine.run(&mut driver)
}

/// One cell of a Figures 8–11 grid.
#[derive(Clone, Debug)]
pub struct GridCell {
    pub protocol: ProtocolKind,
    pub nodes: u32,
    pub cycles: u64,
    /// Execution time relative to full-map at the same node count.
    pub normalized: f64,
    pub outcome: RunOutcome,
}

/// The full grid for one application: `protocols × node counts`, with
/// execution times normalized to the full-map protocol per node count
/// (the paper's Figures 8–11 presentation).
pub fn figure_grid(
    workload: WorkloadKind,
    node_counts: &[u32],
    protocols: &[ProtocolKind],
    configure: impl Fn(u32) -> MachineConfig,
) -> Vec<GridCell> {
    let mut cells = Vec::new();
    for &nodes in node_counts {
        let config = configure(nodes);
        let baseline = run_workload(&config, ProtocolKind::FullMap, workload);
        let base_cycles = baseline.cycles.max(1);
        for &protocol in protocols {
            let outcome = if protocol == ProtocolKind::FullMap {
                baseline.clone()
            } else {
                run_workload(&config, protocol, workload)
            };
            cells.push(GridCell {
                protocol,
                nodes,
                cycles: outcome.cycles,
                normalized: outcome.cycles as f64 / base_cycles as f64,
                outcome,
            });
        }
    }
    cells
}

/// Render a figure grid as the paper presents it: one row per protocol,
/// one column per machine size, normalized execution time.
pub fn render_grid(title: &str, cells: &[GridCell], node_counts: &[u32]) -> String {
    use crate::tables::{norm, AsciiTable};
    let mut header: Vec<String> = vec!["protocol".into()];
    header.extend(node_counts.iter().map(|n| format!("{n} procs")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = AsciiTable::new(&header_refs);
    let mut protocols: Vec<ProtocolKind> = Vec::new();
    for c in cells {
        if !protocols.contains(&c.protocol) {
            protocols.push(c.protocol);
        }
    }
    for p in protocols {
        let mut row = vec![p.name()];
        for &n in node_counts {
            let cell = cells
                .iter()
                .find(|c| c.protocol == p && c.nodes == n)
                .expect("missing grid cell");
            row.push(norm(cell.normalized));
        }
        t.row(&row);
    }
    format!("{title}\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_normalizes_to_full_map() {
        let cells = figure_grid(
            WorkloadKind::Floyd {
                vertices: 8,
                seed: 3,
            },
            &[4],
            &[
                ProtocolKind::FullMap,
                ProtocolKind::DirTree {
                    pointers: 2,
                    arity: 2,
                },
            ],
            MachineConfig::test_default,
        );
        assert_eq!(cells.len(), 2);
        let fm = &cells[0];
        assert_eq!(fm.protocol, ProtocolKind::FullMap);
        assert!((fm.normalized - 1.0).abs() < 1e-12);
        assert!(cells[1].normalized > 0.0);
    }

    #[test]
    fn render_contains_all_protocols() {
        let cells = figure_grid(
            WorkloadKind::Sharing {
                blocks: 2,
                rounds: 2,
            },
            &[4],
            &[
                ProtocolKind::FullMap,
                ProtocolKind::LimitedNB { pointers: 1 },
            ],
            MachineConfig::test_default,
        );
        let s = render_grid("demo", &cells, &[4]);
        assert!(s.contains("FullMap"));
        assert!(s.contains("Dir1NB"));
        assert!(s.contains("4 procs"));
    }

    #[test]
    fn deterministic_across_grid_invocations() {
        let go = || {
            figure_grid(
                WorkloadKind::Migratory {
                    blocks: 2,
                    rounds: 4,
                },
                &[4],
                &[ProtocolKind::FullMap],
                MachineConfig::test_default,
            )[0]
            .cycles
        };
        assert_eq!(go(), go());
    }
}
