//! CSV export of experiment results (for external plotting).

use crate::experiments::GridCell;

/// Escape one CSV field (quotes fields containing separators).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render a figure grid as CSV: one row per (protocol, node count) cell
/// with the headline metrics.
pub fn grid_to_csv(cells: &[GridCell]) -> String {
    let mut out = String::from(
        "protocol,figure_label,nodes,cycles,normalized,messages,fill_acks,\
         invalidations,replacement_invalidations,read_misses,write_misses,\
         read_miss_latency_mean,write_miss_latency_mean,net_bytes,\
         max_controller_busy\n",
    );
    for c in cells {
        let s = &c.outcome.stats;
        out.push_str(&format!(
            "{},{},{},{},{:.6},{},{},{},{},{},{},{:.3},{:.3},{},{}\n",
            field(&c.protocol.name()),
            field(&c.protocol.figure_label()),
            c.nodes,
            c.cycles,
            c.normalized,
            s.messages,
            s.fill_acks,
            s.invalidations,
            s.replacement_invalidations,
            s.read_misses,
            s.write_misses,
            s.read_miss_latency.mean(),
            s.write_miss_latency.mean(),
            c.outcome.net.bytes,
            s.max_controller_busy,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::figure_grid;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::MachineConfig;
    use dirtree_workloads::WorkloadKind;

    #[test]
    fn csv_has_header_and_one_row_per_cell() {
        let cells = figure_grid(
            WorkloadKind::Migratory {
                blocks: 2,
                rounds: 3,
            },
            &[4],
            &[
                ProtocolKind::FullMap,
                ProtocolKind::DirTree {
                    pointers: 2,
                    arity: 2,
                },
            ],
            MachineConfig::test_default,
        );
        let csv = grid_to_csv(&cells);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + cells.len());
        assert!(lines[0].starts_with("protocol,figure_label,nodes,cycles"));
        assert!(lines[1].starts_with("FullMap,fm,4,"));
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
