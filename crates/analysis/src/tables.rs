//! Aligned ASCII tables for the experiment binaries.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                let _ = write!(out, "+{}", "-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, "| {:width$} ", h, width = widths[i]);
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &self.rows {
            for i in 0..cols {
                let _ = write!(out, "| {:>width$} ", row[i], width = widths[i]);
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }
}

/// Format a ratio as the paper's normalized execution time (1.00 = the
/// full-map baseline).
pub fn norm(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = AsciiTable::new(&["proto", "cycles"]);
        t.row(&["fm".into(), "123456".into()]);
        t.row(&["L1".into(), "9".into()]);
        let s = t.render();
        assert!(s.contains("proto"));
        assert!(s.contains("cycles"));
        assert!(s.contains("| 123456 |"));
        let widths: Vec<usize> = s.lines().map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table:\n{s}"
        );
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut t = AsciiTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn norm_formats_three_decimals() {
        assert_eq!(norm(1.0), "1.000");
        assert_eq!(norm(0.97312), "0.973");
    }
}
