//! Tables 3 and 4: how many sharers fit in a Dir<sub>i</sub>Tree₂ forest
//! of a given height.
//!
//! Two independent models:
//!
//! * [`TreeBuilder`] replays the paper's Figure 6 insertion algorithm
//!   (the same rules as `dirtree_core::dir::dir_tree`, reimplemented here
//!   so the two can be cross-checked against each other);
//! * [`n1`], [`n2`] and [`n_i`] evaluate the closed recurrences of
//!   Table 3 and §3.

/// A replay of the directory pointer state under continuous insertion.
#[derive(Clone, Debug)]
pub struct TreeBuilder {
    /// `(root, level, subtree_size)` per pointer.
    ptrs: Vec<Option<(u32, u32, u64)>>,
    next_id: u32,
}

impl TreeBuilder {
    pub fn new(pointers: u32) -> Self {
        Self {
            ptrs: vec![None; pointers as usize],
            next_id: 1,
        }
    }

    /// Insert the next requester; returns its id.
    pub fn insert(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        // Case 2: free pointer.
        if let Some(slot) = self.ptrs.iter().position(Option::is_none) {
            self.ptrs[slot] = Some((id, 1, 1));
            return id;
        }
        // Case 3: merge the maximal equal-level pair (lowest indices).
        let mut best: Option<(u32, usize, usize)> = None;
        for a in 0..self.ptrs.len() {
            for b in (a + 1)..self.ptrs.len() {
                let (la, lb) = (self.ptrs[a].unwrap().1, self.ptrs[b].unwrap().1);
                if la == lb && best.is_none_or(|(l, ..)| la > l) {
                    best = Some((la, a, b));
                }
            }
        }
        if let Some((level, a, b)) = best {
            let sa = self.ptrs[a].unwrap().2;
            let sb = self.ptrs[b].unwrap().2;
            self.ptrs[a] = Some((id, level + 1, sa + sb + 1));
            self.ptrs[b] = None;
            return id;
        }
        // Case 4: push down the smallest-level tree.
        let (slot, (_, level, size)) = self
            .ptrs
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p)))
            .min_by_key(|&(_, (_, l, _))| l)
            .unwrap();
        self.ptrs[slot] = Some((id, level + 1, size + 1));
        id
    }

    /// Maximum tree level across pointers.
    pub fn max_level(&self) -> u32 {
        self.ptrs.iter().flatten().map(|p| p.1).max().unwrap_or(0)
    }

    /// Total sharers recorded.
    pub fn total(&self) -> u64 {
        self.ptrs.iter().flatten().map(|p| p.2).sum()
    }

    /// `(root, level, size)` per pointer.
    pub fn pointers(&self) -> &[Option<(u32, u32, u64)>] {
        &self.ptrs
    }
}

/// Table 4: the maximum number of sharers recordable while the tallest
/// tree is at most `level`, for a `pointers`-pointer directory, obtained
/// by replaying insertions.
pub fn max_nodes_at_level(pointers: u32, level: u32) -> u64 {
    let mut b = TreeBuilder::new(pointers);
    // Insert until the tallest tree would exceed `level`; the forest grows
    // monotonically, so the capacity is the total just before that insert.
    for _ in 0..2_000_000u64 {
        let before = b.total();
        b.insert();
        if b.max_level() > level {
            return before;
        }
    }
    unreachable!("capacity bound not reached within 2M inserts");
}

/// Table 3 / §3 recurrences for Dir₂Tree₂:
/// `N₁(j) = j` — the first pointer's tree is a chain.
pub fn n1(j: u64) -> u64 {
    j
}

/// `N₂(j) = 3 + Σ_{k=2}^{j−1} (N₁(k) + 1) = j(j+1)/2` for `j ≥ 2`
/// (`N₂(1) = 1`).
pub fn n2(j: u64) -> u64 {
    match j {
        0 => 0,
        1 => 1,
        _ => 3 + (2..j).map(|k| n1(k) + 1).sum::<u64>(),
    }
}

/// §3 general recurrence for Dir_iTree₂:
/// `N_i(j) = 2^i − 1 + Σ_{k=i}^{j−1} (N_{i−1}(k) + 1)` with `N₁(j) = j`.
pub fn n_i(i: u32, j: u64) -> u64 {
    if i == 1 {
        return n1(j);
    }
    if j < i as u64 {
        // Below the base height the tree is still being assembled; the
        // recurrence's base case covers j = i.
        return if j == 0 { 0 } else { (1u64 << j) - 1 };
    }
    let base = (1u64 << i) - 1;
    base + (i as u64..j).map(|k| n_i(i - 1, k) + 1).sum::<u64>()
}

/// The paper's Table 4 reference column for a balanced binary tree
/// (SCI tree extension / binary STP): `2^level − 1`.
pub fn binary_tree_nodes(level: u32) -> u64 {
    (1u64 << level) - 1
}

/// The published Table 4 rows: `(level, Dir2Tree2, Dir4Tree2, binary)`.
pub const PAPER_TABLE4: [(u32, u64, u64, u64); 10] = [
    (3, 9, 16, 7),
    (4, 14, 43, 15),
    (5, 20, 75, 31),
    (6, 27, 99, 63),
    (7, 35, 163, 127),
    (8, 44, 256, 255),
    (9, 54, 386, 511),
    (10, 65, 562, 1023),
    (11, 77, 794, 2047),
    (12, 90, 1093, 4095),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_n2_simplifies_to_triangular() {
        for j in 2..50u64 {
            assert_eq!(n2(j), j * (j + 1) / 2, "N2({j})");
        }
    }

    #[test]
    fn table3_first_row_values() {
        // Table 3: N1(1)=1, N1(2)=2, N1(3)=3; N2(1)=1, N2(2)=3, N2(3)=6.
        assert_eq!(n1(1), 1);
        assert_eq!(n1(2), 2);
        assert_eq!(n1(3), 3);
        assert_eq!(n2(1), 1);
        assert_eq!(n2(2), 3);
        assert_eq!(n2(3), 6);
    }

    #[test]
    fn dir2tree2_capacity_matches_table4() {
        for (level, d2, _, _) in PAPER_TABLE4 {
            assert_eq!(
                max_nodes_at_level(2, level),
                d2,
                "Dir2Tree2 capacity at level {level}"
            );
        }
    }

    #[test]
    fn dir2tree2_replay_matches_recurrence_sum() {
        // Total capacity at level j = N1(j) + N2(j) once both trees are at
        // height j.
        for j in 3..12u64 {
            assert_eq!(max_nodes_at_level(2, j as u32), n1(j) + n2(j));
        }
    }

    #[test]
    fn replay_small_sequence_matches_hand_trace() {
        // The Dir2Tree2 trace behind Table 3: ids arrive 1,2,3,...
        let mut b = TreeBuilder::new(2);
        for _ in 0..3 {
            b.insert();
        }
        // After 3 inserts: ptr0 = (3, level 2, size 3), ptr1 = None.
        assert_eq!(b.pointers()[0], Some((3, 2, 3)));
        assert_eq!(b.pointers()[1], None);
        b.insert(); // 4 -> free slot
        assert_eq!(b.pointers()[1], Some((4, 1, 1)));
        b.insert(); // 5 -> push down (levels 2 vs 1 differ)
        assert_eq!(b.pointers()[1], Some((5, 2, 2)));
        b.insert(); // 6 -> merge (levels 2, 2)
        assert_eq!(b.pointers()[0], Some((6, 3, 6)));
        assert_eq!(b.pointers()[1], None);
    }

    #[test]
    fn figure5_fifteenth_insert_merges_11_and_13() {
        let mut b = TreeBuilder::new(4);
        for _ in 0..14 {
            b.insert();
        }
        let roots: Vec<u32> = b.pointers().iter().flatten().map(|p| p.0).collect();
        assert!(roots.contains(&9), "after 14 inserts 9 roots the big tree");
        assert!(roots.contains(&11) && roots.contains(&13));
        let id = b.insert();
        assert_eq!(id, 15);
        // 15 merged the maximal equal pair (11, 13).
        let roots: Vec<(u32, u32)> = b.pointers().iter().flatten().map(|p| (p.0, p.1)).collect();
        assert!(roots.iter().any(|&(r, l)| r == 15 && l == 3));
        assert!(!roots.iter().any(|&(r, _)| r == 11 || r == 13));
    }

    #[test]
    fn binary_reference_column() {
        for (level, _, _, bin) in PAPER_TABLE4 {
            assert_eq!(binary_tree_nodes(level), bin);
        }
    }

    #[test]
    fn deeper_forests_hold_more() {
        for i in [1u32, 2, 4, 8] {
            let mut prev = 0;
            for level in 2..10 {
                let cap = max_nodes_at_level(i, level);
                assert!(cap > prev, "capacity must grow with level (i={i})");
                prev = cap;
            }
        }
    }

    #[test]
    fn more_pointers_hold_more() {
        for level in 3..10 {
            assert!(max_nodes_at_level(4, level) > max_nodes_at_level(2, level));
            assert!(max_nodes_at_level(8, level) > max_nodes_at_level(4, level));
        }
    }
}
