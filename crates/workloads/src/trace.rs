//! Record-once / replay-many operation traces.
//!
//! The execution-driven rendezvous ([`ThreadedWorkload`]) pays two OS
//! context switches per operation — on a sweep that runs the *same*
//! application under nine protocols, that thread ping-pong dominates
//! wall-clock while contributing nothing after the first run. This module
//! exploits a structural property of the bundled applications: a
//! [`DriverOp`] carries addresses and sync ids but never data values, and
//! every app's control flow and addressing depend only on values ordered
//! by barriers (data-race-free), never on lock-grant order — MP3D's
//! lock-protected occupancy increment is commutative and the value it
//! reads back feeds no branch or address. Each node's operation stream is
//! therefore independent of the machine's interleaving, so a stream
//! recorded once under *any* correct schedule drives every protocol
//! config to a bit-identical simulation.
//!
//! [`record_ops`] drains a workload through a deterministic round-robin
//! scheduler (no machine, no simulated timing) and returns the per-node
//! streams; [`ReplayDriver`] feeds them back with zero context switches.
//! The `replay_matches_execution_driven` tests below pin the equivalence
//! for every application family, including the lock-heavy MP3D.

use crate::rendezvous::ThreadedWorkload;
use dirtree_core::types::NodeId;
use dirtree_machine::{Driver, DriverOp};
use dirtree_sim::Cycle;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Per-node operation streams recorded from one workload run.
pub type OpTrace = Vec<Vec<DriverOp>>;

/// Run `w`'s application threads to completion under a deterministic
/// round-robin scheduler, recording each node's operation stream.
///
/// Sync semantics mirror the machine's: barriers release when every
/// node has arrived, locks grant FIFO. The schedule differs from any
/// simulated one, but per-node streams do not (see module docs), and the
/// round-robin is fixed, so the returned trace is a pure function of the
/// workload — safe to share across protocol configs and `--jobs` levels.
pub fn record_ops(w: &mut ThreadedWorkload) -> OpTrace {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Run,
        AtBarrier,
        WaitLock,
        Done,
    }
    let n = w.nprocs();
    let mut st = vec![St::Run; n];
    let mut ops: OpTrace = vec![Vec::new(); n];
    // Lock id → (owner, FIFO waiters); matches the machine's grant order.
    let mut locks: HashMap<u32, (Option<usize>, VecDeque<usize>)> = HashMap::new();
    let (mut at_barrier, mut done) = (0usize, 0usize);
    while done < n {
        let mut progressed = false;
        for i in 0..n {
            while st[i] == St::Run {
                progressed = true;
                let op = w.next_op(i as NodeId, 0);
                if op != DriverOp::Done {
                    ops[i].push(op);
                }
                match op {
                    DriverOp::Read(_) | DriverOp::Write(_) | DriverOp::Work(_) => {}
                    DriverOp::Barrier(_) => {
                        st[i] = St::AtBarrier;
                        at_barrier += 1;
                    }
                    DriverOp::Lock(id) => {
                        let l = locks.entry(id).or_default();
                        if l.0.is_none() {
                            l.0 = Some(i);
                        } else {
                            l.1.push_back(i);
                            st[i] = St::WaitLock;
                        }
                    }
                    DriverOp::Unlock(id) => {
                        let l = locks.get_mut(&id).expect("unlock of unknown lock");
                        debug_assert_eq!(l.0, Some(i), "unlock by non-owner");
                        l.0 = l.1.pop_front();
                        if let Some(next) = l.0 {
                            st[next] = St::Run;
                        }
                    }
                    DriverOp::Done => {
                        st[i] = St::Done;
                        done += 1;
                    }
                }
            }
        }
        // A barrier releases only when every node has arrived (the
        // machine's rule: finished processors never satisfy a barrier).
        if at_barrier > 0 && at_barrier == n - done {
            at_barrier = 0;
            for s in st.iter_mut() {
                if *s == St::AtBarrier {
                    *s = St::Run;
                }
            }
            progressed = true;
        }
        assert!(
            progressed || done == n,
            "workload deadlocked during trace recording \
             ({done}/{n} done, {at_barrier} at barrier)"
        );
    }
    ops
}

/// Replays a recorded [`OpTrace`]. The trace is behind an `Arc` so a
/// sweep replays one recording across many protocol configs without
/// cloning megabytes of ops per simulation — and without spawning a
/// single application thread.
pub struct ReplayDriver {
    trace: Arc<OpTrace>,
    pos: Vec<usize>,
}

impl ReplayDriver {
    pub fn new(trace: Arc<OpTrace>) -> Self {
        let n = trace.len();
        Self {
            trace,
            pos: vec![0; n],
        }
    }
}

impl Driver for ReplayDriver {
    fn next_op(&mut self, node: NodeId, _now: Cycle) -> DriverOp {
        let n = node as usize;
        match self.trace[n].get(self.pos[n]) {
            Some(&op) => {
                self.pos[n] += 1;
                op
            }
            None => DriverOp::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadKind;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::{Machine, MachineConfig, RunOutcome};

    fn run_threaded(kind: WorkloadKind, nodes: u32, proto: ProtocolKind) -> RunOutcome {
        let mut w = kind.build(nodes);
        let mut m = Machine::new(MachineConfig::test_default(nodes), proto);
        m.run(&mut w)
    }

    fn run_replayed(kind: WorkloadKind, nodes: u32, proto: ProtocolKind) -> RunOutcome {
        let trace = {
            let mut w = kind.build(nodes);
            Arc::new(record_ops(&mut w))
        };
        let mut d = ReplayDriver::new(trace);
        let mut m = Machine::new(MachineConfig::test_default(nodes), proto);
        m.run(&mut d)
    }

    /// The load-bearing property: a replayed trace produces the same
    /// simulation — cycles, stats, histograms, network counters — as the
    /// live application threads, for every application family.
    #[test]
    fn replay_matches_execution_driven() {
        let cases = [
            // Lock-heavy, migratory sharing: exercises the recorder's
            // FIFO lock grant against the machine's.
            WorkloadKind::Mp3d {
                particles: 60,
                steps: 3,
            },
            WorkloadKind::Lu { n: 12 },
            WorkloadKind::LuBlocked { n: 12, block: 4 },
            WorkloadKind::Floyd {
                vertices: 10,
                seed: 1996,
            },
            WorkloadKind::Fft { points: 64 },
            WorkloadKind::Jacobi {
                grid: 10,
                sweeps: 2,
            },
            WorkloadKind::Sharing {
                blocks: 8,
                rounds: 4,
            },
            WorkloadKind::Migratory {
                blocks: 4,
                rounds: 6,
            },
            WorkloadKind::Storm {
                words: 96,
                passes: 2,
            },
        ];
        for kind in cases {
            for proto in [
                ProtocolKind::FullMap,
                ProtocolKind::DirTree {
                    pointers: 2,
                    arity: 2,
                },
                ProtocolKind::LimitedNB { pointers: 1 },
            ] {
                let live = run_threaded(kind, 4, proto);
                let replay = run_replayed(kind, 4, proto);
                assert_eq!(
                    format!("{live:?}"),
                    format!("{replay:?}"),
                    "{} under {proto:?}: replay diverged from execution-driven",
                    kind.name()
                );
            }
        }
    }

    /// Recording is a pure function of the workload: two recordings of
    /// the same app are identical op-for-op.
    #[test]
    fn recording_is_deterministic() {
        let kind = WorkloadKind::Mp3d {
            particles: 80,
            steps: 2,
        };
        let a = record_ops(&mut kind.build(8));
        let b = record_ops(&mut kind.build(8));
        assert_eq!(a, b);
    }

    /// The recorder's lock queue must not starve or deadlock when every
    /// node hammers one lock.
    #[test]
    fn contended_lock_records_and_replays() {
        let kind = WorkloadKind::Migratory {
            blocks: 1,
            rounds: 8,
        };
        let trace = record_ops(&mut kind.build(8));
        let locks = trace
            .iter()
            .flatten()
            .filter(|op| matches!(op, DriverOp::Lock(_)))
            .count();
        assert!(locks > 0 || trace.iter().flatten().count() > 0);
        let live = run_threaded(kind, 8, ProtocolKind::FullMap);
        let replay = run_replayed(kind, 8, ProtocolKind::FullMap);
        assert_eq!(format!("{live:?}"), format!("{replay:?}"));
    }

    /// A node finishing while others still run must not wedge the
    /// recorder (sparse work distributions at large P).
    #[test]
    fn early_finishers_do_not_block_recording() {
        // 10 vertices on 16 nodes: nodes 10..15 own no rows and issue
        // only barriers; every node still arrives at every barrier.
        let kind = WorkloadKind::Floyd {
            vertices: 10,
            seed: 7,
        };
        let trace = record_ops(&mut kind.build(16));
        assert_eq!(trace.len(), 16);
        let live = run_threaded(kind, 16, ProtocolKind::FullMap);
        let replay = run_replayed(kind, 16, ProtocolKind::FullMap);
        assert_eq!(format!("{live:?}"), format!("{replay:?}"));
    }
}
