//! Shared address-space layout helpers.
//!
//! The machine's shared memory is block-granular (8-byte blocks = one
//! 64-bit word per block, Table 5), so an address is a word index. The
//! [`Alloc`] bump allocator hands out contiguous word ranges; home nodes
//! are interleaved word-by-word across the machine (`addr % nodes`), like
//! the paper's address-determined home modules.

use dirtree_core::types::Addr;

/// A bump allocator over the shared word-addressed space.
#[derive(Debug, Default)]
pub struct Alloc {
    next: Addr,
}

impl Alloc {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `words` consecutive shared words.
    pub fn array(&mut self, words: u64) -> SharedArray {
        let base = self.next;
        self.next += words;
        SharedArray { base, len: words }
    }

    /// Allocate a 2-D row-major matrix.
    pub fn matrix(&mut self, rows: u64, cols: u64) -> SharedMatrix {
        SharedMatrix {
            data: self.array(rows * cols),
            cols,
        }
    }

    /// Words allocated so far.
    pub fn used(&self) -> u64 {
        self.next
    }
}

/// A contiguous range of shared words.
#[derive(Clone, Copy, Debug)]
pub struct SharedArray {
    pub base: Addr,
    pub len: u64,
}

impl SharedArray {
    #[inline]
    pub fn at(&self, i: u64) -> Addr {
        debug_assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base + i
    }
}

/// A row-major 2-D view.
#[derive(Clone, Copy, Debug)]
pub struct SharedMatrix {
    pub data: SharedArray,
    pub cols: u64,
}

impl SharedMatrix {
    #[inline]
    pub fn at(&self, r: u64, c: u64) -> Addr {
        debug_assert!(c < self.cols);
        self.data.at(r * self.cols + c)
    }

    pub fn rows(&self) -> u64 {
        self.data.len / self.cols
    }
}

/// Fixed-point helpers: the machine stores raw `u64` words, applications
/// compute on `f64`. Bit-casting keeps exact roundtrips.
#[inline]
pub fn f2w(x: f64) -> u64 {
    x.to_bits()
}

#[inline]
pub fn w2f(w: u64) -> f64 {
    f64::from_bits(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_contiguous_and_disjoint() {
        let mut a = Alloc::new();
        let x = a.array(10);
        let y = a.array(5);
        assert_eq!(x.base, 0);
        assert_eq!(y.base, 10);
        assert_eq!(a.used(), 15);
        assert_eq!(x.at(9), 9);
        assert_eq!(y.at(0), 10);
    }

    #[test]
    fn matrix_is_row_major() {
        let mut a = Alloc::new();
        let m = a.matrix(3, 4);
        assert_eq!(m.at(0, 0), 0);
        assert_eq!(m.at(0, 3), 3);
        assert_eq!(m.at(1, 0), 4);
        assert_eq!(m.at(2, 3), 11);
        assert_eq!(m.rows(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn array_bounds_checked_in_debug() {
        let mut a = Alloc::new();
        let x = a.array(3);
        let _ = x.at(3);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.0, -1.5, std::f64::consts::PI, 1e300, -0.0] {
            assert_eq!(w2f(f2w(x)).to_bits(), x.to_bits());
        }
    }
}
