//! MP3D-style rarefied-flow particle simulation (§4 of the paper; the
//! paper runs the SPLASH MP3D with 3000 particles for 10 steps).
//!
//! We reproduce the *sharing structure* that makes MP3D notorious for low
//! speedups: particles are partitioned across processors, but every
//! particle move performs a read-modify-write on a shared 3-D space-cell
//! array — fine-grained write sharing with essentially random cell owners,
//! plus per-step global phases. Collisions read the *previous* step's cell
//! occupancy (ping-pong arrays), which keeps results deterministic across
//! protocols while still exercising migratory data.
//!
//! Positions and velocities use a fixed-point representation (1/1024
//! units) stored in shared words.

use crate::layout::Alloc;
use crate::rendezvous::{AppFn, ThreadedWorkload};
use dirtree_sim::SimRng;

/// Fixed-point scale: 1024 units per cell side.
const FP: i64 = 1024;

/// Parameters for the MP3D-style workload.
#[derive(Clone, Copy, Debug)]
pub struct Mp3d {
    pub particles: u64,
    pub steps: u64,
    /// Space is a `grid × grid × grid` torus of unit cells.
    pub grid: u64,
    pub seed: u64,
}

/// One particle's state: position and velocity in fixed point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Particle {
    pub pos: [i64; 3],
    pub vel: [i64; 3],
}

impl Mp3d {
    /// The paper's configuration: 3000 particles, 10 steps.
    pub fn paper() -> Self {
        Self {
            particles: 3000,
            steps: 10,
            grid: 8,
            seed: 1996,
        }
    }

    fn extent(&self) -> i64 {
        self.grid as i64 * FP
    }

    /// Deterministic initial particle state.
    pub fn initial(&self, id: u64) -> Particle {
        let mut rng = SimRng::new(self.seed ^ id.wrapping_mul(0x9e37_79b9));
        let mut pos = [0i64; 3];
        for d in &mut pos {
            *d = rng.gen_range(self.extent() as u64) as i64;
        }
        let mut vel = [0i64; 3];
        for d in &mut vel {
            *d = (rng.gen_range(2 * FP as u64) as i64) - FP;
        }
        Particle { pos, vel }
    }

    fn cell_of(&self, pos: &[i64; 3]) -> u64 {
        let g = self.grid as i64;
        let cx = pos[0] / FP;
        let cy = pos[1] / FP;
        let cz = pos[2] / FP;
        ((cx * g + cy) * g + cz) as u64
    }

    fn cells(&self) -> u64 {
        self.grid * self.grid * self.grid
    }

    /// Advance one particle one step, given the previous-step occupancy of
    /// its cell (the deterministic collision surrogate: dense cells
    /// scatter the particle).
    pub fn advance(&self, p: &mut Particle, prev_occupancy: u64) {
        let ext = self.extent();
        if prev_occupancy >= 3 {
            // "Collision": reflect and damp, deterministically.
            for v in p.vel.iter_mut() {
                *v = -*v + (*v >> 3);
            }
        }
        for d in 0..3 {
            p.pos[d] = (p.pos[d] + p.vel[d]).rem_euclid(ext);
        }
    }

    /// Sequential reference: final particle states.
    pub fn reference(&self) -> Vec<Particle> {
        let mut parts: Vec<Particle> = (0..self.particles).map(|i| self.initial(i)).collect();
        let mut prev = vec![0u64; self.cells() as usize];
        for _ in 0..self.steps {
            let mut cur = vec![0u64; self.cells() as usize];
            for p in parts.iter_mut() {
                let cell = self.cell_of(&p.pos) as usize;
                cur[cell] += 1;
                self.advance(p, prev[cell]);
            }
            prev = cur;
        }
        parts
    }

    /// Layout: 6 words per particle, then two cell arrays (ping-pong).
    pub fn shared_words(&self) -> u64 {
        6 * self.particles + 2 * self.cells()
    }

    pub fn particle_base(&self, id: u64) -> u64 {
        6 * id
    }

    fn enc(v: i64) -> u64 {
        v as u64
    }

    fn dec(w: u64) -> i64 {
        w as i64
    }

    /// Build the execution-driven workload (particles block-partitioned).
    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        let params = *self;
        let mut alloc = Alloc::new();
        let pstate = alloc.array(6 * self.particles);
        let cells = [alloc.array(self.cells()), alloc.array(self.cells())];
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                let p = nprocs as u64;
                let me = tid as u64;
                let per = params.particles.div_ceil(p);
                let lo = me * per;
                let hi = ((me + 1) * per).min(params.particles);
                let ncells = params.cells();

                // Initialize owned particles.
                for id in lo..hi {
                    let st = params.initial(id);
                    let base = pstate.at(6 * id);
                    for d in 0..3 {
                        env.write(base + d as u64, Mp3d::enc(st.pos[d]));
                        env.write(base + 3 + d as u64, Mp3d::enc(st.vel[d]));
                    }
                }
                // Zero owned slice of both cell arrays.
                for c in (0..ncells).filter(|c| c % p == me) {
                    env.write(cells[0].at(c), 0);
                    env.write(cells[1].at(c), 0);
                }
                env.barrier();

                let mut cur = 0usize;
                for _step in 0..params.steps {
                    let prev = cur ^ 1;
                    for id in lo..hi {
                        let base = pstate.at(6 * id);
                        let mut part = Particle {
                            pos: [0; 3],
                            vel: [0; 3],
                        };
                        for d in 0..3 {
                            part.pos[d] = Mp3d::dec(env.read(base + d as u64));
                            part.vel[d] = Mp3d::dec(env.read(base + 3 + d as u64));
                        }
                        let cell = params.cell_of(&part.pos);
                        // The notorious shared read-modify-write, locked
                        // per cell as in the original MP3D.
                        env.lock(cell as u32);
                        let occ = env.read(cells[cur].at(cell));
                        env.write(cells[cur].at(cell), occ + 1);
                        env.unlock(cell as u32);
                        let prev_occ = env.read(cells[prev].at(cell));
                        params.advance(&mut part, prev_occ);
                        for d in 0..3 {
                            env.write(base + d as u64, Mp3d::enc(part.pos[d]));
                            env.write(base + 3 + d as u64, Mp3d::enc(part.vel[d]));
                        }
                        env.work(4);
                    }
                    env.barrier();
                    // Clear the previous-step array for reuse next step.
                    for c in (0..ncells).filter(|c| c % p == me) {
                        env.write(cells[prev].at(c), 0);
                    }
                    env.barrier();
                    cur = prev;
                }
            });
            program
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::{Machine, MachineConfig};

    fn small() -> Mp3d {
        Mp3d {
            particles: 60,
            steps: 4,
            grid: 4,
            seed: 11,
        }
    }

    fn run(params: Mp3d, nodes: u32, kind: ProtocolKind) -> Vec<Particle> {
        let mut w = params.build(nodes);
        let mut m = Machine::new(MachineConfig::test_default(nodes), kind);
        m.run(&mut w);
        (0..params.particles)
            .map(|id| {
                let b = params.particle_base(id);
                Particle {
                    pos: [
                        Mp3d::dec(w.value_at(b)),
                        Mp3d::dec(w.value_at(b + 1)),
                        Mp3d::dec(w.value_at(b + 2)),
                    ],
                    vel: [
                        Mp3d::dec(w.value_at(b + 3)),
                        Mp3d::dec(w.value_at(b + 4)),
                        Mp3d::dec(w.value_at(b + 5)),
                    ],
                }
            })
            .collect()
    }

    #[test]
    fn positions_stay_in_the_torus() {
        let p = small();
        for part in p.reference() {
            for d in 0..3 {
                assert!(part.pos[d] >= 0 && part.pos[d] < p.extent());
            }
        }
    }

    #[test]
    fn parallel_matches_reference_fullmap() {
        let p = small();
        assert_eq!(run(p, 4, ProtocolKind::FullMap), p.reference());
    }

    #[test]
    fn parallel_matches_reference_dirtree() {
        let p = small();
        assert_eq!(
            run(
                p,
                4,
                ProtocolKind::DirTree {
                    pointers: 4,
                    arity: 2
                }
            ),
            p.reference()
        );
    }

    #[test]
    fn initial_state_is_deterministic() {
        let p = small();
        assert_eq!(p.initial(5), p.initial(5));
        assert_ne!(p.initial(5), p.initial(6));
    }

    #[test]
    fn collisions_change_trajectories() {
        // A dense configuration must trigger the collision branch.
        let p = Mp3d {
            particles: 40,
            steps: 3,
            grid: 2,
            seed: 2,
        };
        let with = p.reference();
        // Rerun with collision disabled by spreading over a huge grid
        // (same velocities, no dense cells).
        let sparse = Mp3d { grid: 16, ..p };
        let without = sparse.reference();
        let changed = with
            .iter()
            .zip(without.iter())
            .filter(|(a, b)| a.vel != b.vel)
            .count();
        assert!(changed > 0, "no collision ever fired in the dense case");
    }
}
