//! 1-D radix-2 FFT (§4 of the paper).
//!
//! A Stockham autosort formulation: every stage reads two (possibly
//! remote) source elements and writes one *owned* destination element into
//! a ping-pong buffer, with a barrier between stages — the classic
//! binary-exchange parallel FFT. Early stages pull data from distant
//! processors (cross-machine read sharing); late stages are local. No
//! bit-reversal pass is needed.

use crate::layout::Alloc;
use crate::rendezvous::{AppFn, ThreadedWorkload};

/// One butterfly assignment: `dst[o] = src[a] ± src[b]`, the `-` branch
/// additionally multiplied by the twiddle `w`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ButterflyMap {
    pub a: u64,
    pub b: u64,
    pub w: (f64, f64),
    pub subtract: bool,
}

/// Stockham decimation-in-frequency stage mapping: where output index `o`
/// of stage `stage` (0-based) comes from. Pure so the parallel program and
/// the sequential reference share it exactly.
pub fn stockham_map(n: u64, stage: u32, o: u64) -> ButterflyMap {
    let s = 1u64 << stage; // stride (already-combined sub-transforms)
    let nt = n >> stage; // remaining transform size
    let m = nt / 2;
    let q = o % s;
    let r = o / s;
    let p = r / 2;
    let a = q + s * p;
    let b = q + s * (p + m);
    if r.is_multiple_of(2) {
        ButterflyMap {
            a,
            b,
            w: (1.0, 0.0),
            subtract: false,
        }
    } else {
        let theta = -2.0 * std::f64::consts::PI * p as f64 / nt as f64;
        ButterflyMap {
            a,
            b,
            w: (theta.cos(), theta.sin()),
            subtract: true,
        }
    }
}

/// Apply one stage sequentially (reference path).
fn stage_seq(n: u64, stage: u32, src: &[(f64, f64)], dst: &mut [(f64, f64)]) {
    for o in 0..n {
        let m = stockham_map(n, stage, o);
        let (ar, ai) = src[m.a as usize];
        let (br, bi) = src[m.b as usize];
        dst[o as usize] = if m.subtract {
            let (dr, di) = (ar - br, ai - bi);
            (dr * m.w.0 - di * m.w.1, dr * m.w.1 + di * m.w.0)
        } else {
            (ar + br, ai + bi)
        };
    }
}

/// Parameters for the FFT workload.
#[derive(Clone, Copy, Debug)]
pub struct Fft {
    pub points: u64,
}

impl Fft {
    /// A 1024-point transform (the paper does not state its size; 1K is
    /// representative of mid-90s shared-memory FFT studies).
    pub fn paper() -> Self {
        Self { points: 1024 }
    }

    fn stages(&self) -> u32 {
        self.points.trailing_zeros()
    }

    /// Deterministic input signal.
    pub fn input(&self, i: u64) -> (f64, f64) {
        let x = i as f64;
        (
            (x * 0.37).sin() + 0.5 * (x * 0.11).cos(),
            0.25 * (x * 0.53).sin(),
        )
    }

    /// Sequential reference FFT via the same Stockham stages.
    pub fn reference(&self) -> Vec<(f64, f64)> {
        let n = self.points;
        let mut a: Vec<(f64, f64)> = (0..n).map(|i| self.input(i)).collect();
        let mut b = vec![(0.0, 0.0); n as usize];
        for stage in 0..self.stages() {
            stage_seq(n, stage, &a, &mut b);
            std::mem::swap(&mut a, &mut b);
        }
        a
    }

    /// Naive O(n²) DFT, for validating the Stockham formulation itself.
    pub fn naive_dft(&self) -> Vec<(f64, f64)> {
        let n = self.points;
        (0..n)
            .map(|k| {
                let mut acc = (0.0, 0.0);
                for t in 0..n {
                    let (xr, xi) = self.input(t);
                    let th = -2.0 * std::f64::consts::PI * (k * t % n) as f64 / n as f64;
                    let (c, s) = (th.cos(), th.sin());
                    acc.0 += xr * c - xi * s;
                    acc.1 += xr * s + xi * c;
                }
                acc
            })
            .collect()
    }

    /// Shared layout: two ping-pong complex buffers (re and im planes).
    pub fn shared_words(&self) -> u64 {
        4 * self.points
    }

    /// Build the execution-driven workload (block-distributed outputs).
    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        assert!(self.points.is_power_of_two());
        assert!(self.points >= nprocs as u64 * 2);
        let params = *self;
        let mut alloc = Alloc::new();
        let re = [alloc.array(self.points), alloc.array(self.points)];
        let im = [alloc.array(self.points), alloc.array(self.points)];
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                let n = params.points;
                let p = nprocs as u64;
                let chunk = n / p;
                let me = tid as u64;
                let lo = me * chunk;
                let hi = if me + 1 == p { n } else { lo + chunk };

                // Initialize owned slice of buffer 0.
                for i in lo..hi {
                    let (xr, xi) = params.input(i);
                    env.write_f(re[0].at(i), xr);
                    env.write_f(im[0].at(i), xi);
                }
                env.barrier();

                let mut cur = 0usize;
                for stage in 0..params.stages() {
                    let nxt = cur ^ 1;
                    for o in lo..hi {
                        let m = stockham_map(n, stage, o);
                        let ar = env.read_f(re[cur].at(m.a));
                        let ai = env.read_f(im[cur].at(m.a));
                        let br = env.read_f(re[cur].at(m.b));
                        let bi = env.read_f(im[cur].at(m.b));
                        let (or_, oi) = if m.subtract {
                            let (dr, di) = (ar - br, ai - bi);
                            (dr * m.w.0 - di * m.w.1, dr * m.w.1 + di * m.w.0)
                        } else {
                            (ar + br, ai + bi)
                        };
                        env.write_f(re[nxt].at(o), or_);
                        env.write_f(im[nxt].at(o), oi);
                        env.work(2);
                    }
                    cur = nxt;
                    env.barrier();
                }
            });
            program
        })
    }

    /// Which ping-pong buffer holds the result (0 or 1).
    pub fn result_buffer(&self) -> usize {
        (self.stages() % 2) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::w2f;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::{Machine, MachineConfig};

    fn close(a: (f64, f64), b: (f64, f64), tol: f64) -> bool {
        (a.0 - b.0).abs() < tol && (a.1 - b.1).abs() < tol
    }

    #[test]
    fn stockham_matches_naive_dft() {
        for n in [8u64, 16, 64] {
            let f = Fft { points: n };
            let fast = f.reference();
            let slow = f.naive_dft();
            for (i, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
                assert!(
                    close(*a, *b, 1e-6 * n as f64),
                    "n={n} bin {i}: {a:?} vs {b:?}"
                );
            }
        }
    }

    fn run_parallel(points: u64, nodes: u32, kind: ProtocolKind) -> Vec<(f64, f64)> {
        let f = Fft { points };
        let mut w = f.build(nodes);
        let mut m = Machine::new(MachineConfig::test_default(nodes), kind);
        m.run(&mut w);
        let buf = f.result_buffer() as u64;
        (0..points)
            .map(|i| {
                (
                    w2f(w.value_at(buf * points + i)),
                    w2f(w.value_at(2 * points + buf * points + i)),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_reference_fullmap() {
        let f = Fft { points: 64 };
        let want = f.reference();
        let got = run_parallel(64, 4, ProtocolKind::FullMap);
        for (i, (a, b)) in got.iter().zip(want.iter()).enumerate() {
            assert!(close(*a, *b, 1e-9), "bin {i}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn parallel_matches_reference_dirtree() {
        let f = Fft { points: 64 };
        let want = f.reference();
        let got = run_parallel(
            64,
            8,
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
        );
        for (i, (a, b)) in got.iter().zip(want.iter()).enumerate() {
            assert!(close(*a, *b, 1e-9), "bin {i}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn stage_mapping_is_a_permutation_of_sources() {
        // Every stage must read each source index exactly twice (each
        // element feeds two butterflies) and write each output once.
        let n = 32u64;
        for stage in 0..5 {
            let mut reads = vec![0u32; n as usize];
            for o in 0..n {
                let m = stockham_map(n, stage, o);
                reads[m.a as usize] += 1;
                reads[m.b as usize] += 1;
            }
            assert!(
                reads.iter().all(|&c| c == 2),
                "stage {stage}: uneven source fan-out {reads:?}"
            );
        }
    }
}
