//! Floyd-Warshall all-pairs shortest paths (§4 of the paper).
//!
//! The paper runs a 32-vertex random graph. The distance matrix is a
//! shared 2-D array; each processor owns an interleaved set of rows. In
//! iteration `k` every processor reads the whole of row `k` — the *entire
//! matrix is read by everyone over the run*, the "large degree of data
//! sharing" the paper highlights for this workload.

use crate::layout::Alloc;
use crate::rendezvous::{AppFn, ThreadedWorkload};
use dirtree_sim::SimRng;

/// Edge-absent marker (saturating adds keep it below overflow).
pub const INF: u64 = 1 << 40;

/// Parameters for the Floyd-Warshall workload.
#[derive(Clone, Copy, Debug)]
pub struct Floyd {
    pub vertices: u64,
    pub seed: u64,
}

impl Floyd {
    /// The paper's configuration: a 32-vertex random graph.
    pub fn paper() -> Self {
        Self {
            vertices: 32,
            seed: 1996,
        }
    }

    /// Deterministic random adjacency matrix (row-major, `INF` = absent).
    pub fn graph(&self) -> Vec<u64> {
        let v = self.vertices as usize;
        let mut rng = SimRng::new(self.seed);
        let mut g = vec![INF; v * v];
        for i in 0..v {
            g[i * v + i] = 0;
            for j in 0..v {
                if i != j && rng.gen_bool(0.3) {
                    g[i * v + j] = 1 + rng.gen_range(9);
                }
            }
        }
        g
    }

    /// Sequential reference solution.
    pub fn reference(&self) -> Vec<u64> {
        let v = self.vertices as usize;
        let mut d = self.graph();
        for k in 0..v {
            for i in 0..v {
                let dik = d[i * v + k];
                for j in 0..v {
                    let alt = dik.saturating_add(d[k * v + j]);
                    if alt < d[i * v + j] {
                        d[i * v + j] = alt;
                    }
                }
            }
        }
        d
    }

    /// Base address of the shared distance matrix.
    pub fn dist_base(&self) -> u64 {
        0
    }

    /// Total shared words.
    pub fn shared_words(&self) -> u64 {
        self.vertices * self.vertices
    }

    /// Build the execution-driven workload for `nprocs` processors.
    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        let params = *self;
        let graph = std::sync::Arc::new(self.graph());
        let mut alloc = Alloc::new();
        let dist = alloc.matrix(self.vertices, self.vertices);
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let graph = graph.clone();
            let program: AppFn = Box::new(move |env| {
                let v = params.vertices;
                let p = nprocs as u64;
                let mine = |row: u64| row % p == tid as u64;

                // Initialize owned rows.
                for i in (0..v).filter(|&i| mine(i)) {
                    for j in 0..v {
                        env.write(dist.at(i, j), graph[(i * v + j) as usize]);
                    }
                }
                env.barrier();

                for k in 0..v {
                    // The classic triple loop: row k is re-read through the
                    // cache for every owned row — cache hits normally, but
                    // repeated misses when a limited directory keeps
                    // victim-invalidating the sharers (the paper's "large
                    // degree of data sharing" stressor).
                    for i in (0..v).filter(|&i| mine(i)) {
                        let dik = if i == k { 0 } else { env.read(dist.at(i, k)) };
                        for j in 0..v {
                            let dij = env.read(dist.at(i, j));
                            let dkj = env.read(dist.at(k, j));
                            let alt = dik.saturating_add(dkj);
                            if alt < dij {
                                env.write(dist.at(i, j), alt);
                            }
                        }
                        env.work(v / 4 + 1);
                    }
                    env.barrier();
                }
            });
            program
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::{Machine, MachineConfig};

    fn run(params: Floyd, nodes: u32, kind: ProtocolKind) -> Vec<u64> {
        let mut w = params.build(nodes);
        let mut m = Machine::new(MachineConfig::test_default(nodes), kind);
        m.run(&mut w);
        w.values().to_vec()
    }

    #[test]
    fn matches_sequential_reference_fullmap() {
        let p = Floyd {
            vertices: 12,
            seed: 7,
        };
        assert_eq!(run(p, 4, ProtocolKind::FullMap), p.reference());
    }

    #[test]
    fn matches_sequential_reference_dirtree() {
        let p = Floyd {
            vertices: 12,
            seed: 7,
        };
        assert_eq!(
            run(
                p,
                4,
                ProtocolKind::DirTree {
                    pointers: 4,
                    arity: 2
                }
            ),
            p.reference()
        );
    }

    #[test]
    fn matches_reference_under_pointer_thrashing() {
        // Dir1NB constantly steals pointers at this sharing degree.
        let p = Floyd {
            vertices: 10,
            seed: 3,
        };
        assert_eq!(
            run(p, 8, ProtocolKind::LimitedNB { pointers: 1 }),
            p.reference()
        );
    }

    #[test]
    fn reference_satisfies_triangle_inequality() {
        let p = Floyd {
            vertices: 16,
            seed: 5,
        };
        let v = p.vertices as usize;
        let d = p.reference();
        for i in 0..v {
            for j in 0..v {
                for k in 0..v {
                    assert!(
                        d[i * v + j] <= d[i * v + k].saturating_add(d[k * v + j]),
                        "triangle inequality violated at ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn graph_is_deterministic_per_seed() {
        let p = Floyd {
            vertices: 8,
            seed: 42,
        };
        assert_eq!(p.graph(), p.graph());
        let q = Floyd {
            vertices: 8,
            seed: 43,
        };
        assert_ne!(p.graph(), q.graph());
    }
}
