//! The paper's four applications plus synthetic microbenchmarks.
//!
//! Each application module provides a parameter struct with:
//! * `build(nprocs) -> ThreadedWorkload` — the execution-driven parallel
//!   program,
//! * a sequential reference used by tests to validate the parallel result,
//! * unit tests running the app on small configurations under several
//!   protocols with coherence verification enabled.

pub mod fft;
pub mod floyd;
pub mod jacobi;
pub mod lu;
pub mod lu_blocked;
pub mod mp3d;
pub mod patterns;
pub mod synthetic;
