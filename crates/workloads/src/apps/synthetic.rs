//! Synthetic microbenchmarks: controlled sharing patterns used by the
//! ablation experiments and stress tests.

use crate::layout::Alloc;
use crate::rendezvous::{AppFn, ThreadedWorkload};

/// `readers` processors repeatedly read a window of shared blocks; one
/// writer periodically overwrites them. Controls the sharing degree seen
/// by write invalidations (the knob behind Table 1's `P`).
#[derive(Clone, Copy, Debug)]
pub struct Sharing {
    pub blocks: u64,
    pub rounds: u64,
}

impl Sharing {
    pub fn shared_words(&self) -> u64 {
        self.blocks
    }

    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        let params = *self;
        let mut alloc = Alloc::new();
        let data = alloc.array(self.blocks);
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                for round in 0..params.rounds {
                    if tid == 0 {
                        // The writer invalidates every reader each round.
                        for b in 0..params.blocks {
                            env.write(data.at(b), round * params.blocks + b);
                        }
                    }
                    env.barrier();
                    let mut acc = 0u64;
                    for b in 0..params.blocks {
                        acc = acc.wrapping_add(env.read(data.at(b)));
                    }
                    env.work(1 + acc % 3); // keep `acc` live
                    env.barrier();
                }
            });
            program
        })
    }
}

/// Migratory pattern: a token of blocks is read-modified-written by each
/// processor in turn. Exercises dirty-block recalls (`WbReq`/`WbData`).
#[derive(Clone, Copy, Debug)]
pub struct Migratory {
    pub blocks: u64,
    pub rounds: u64,
}

impl Migratory {
    pub fn shared_words(&self) -> u64 {
        self.blocks
    }

    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        let params = *self;
        let mut alloc = Alloc::new();
        let data = alloc.array(self.blocks);
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                let p = nprocs as u64;
                for round in 0..params.rounds {
                    // Token passing by turn: proc (round % p) owns this round.
                    if round % p == tid as u64 {
                        for b in 0..params.blocks {
                            let v = env.read(data.at(b));
                            env.write(data.at(b), v + 1);
                        }
                    }
                    env.barrier();
                }
            });
            program
        })
    }
}

/// Replacement storm: every processor streams over a working set far
/// larger than its cache, forcing continuous evictions — the worst case
/// for Dir_iTree_k's silent subtree replacement.
#[derive(Clone, Copy, Debug)]
pub struct Storm {
    pub words: u64,
    pub passes: u64,
}

impl Storm {
    pub fn shared_words(&self) -> u64 {
        self.words
    }

    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        let params = *self;
        let mut alloc = Alloc::new();
        let data = alloc.array(self.words);
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                let stride = 1 + tid as u64;
                for pass in 0..params.passes {
                    for i in 0..params.words {
                        let a = (i * stride + pass) % params.words;
                        if (i + pass) % 13 == 0 {
                            let v = env.read(data.at(a));
                            env.write(data.at(a), v ^ 1);
                        } else {
                            env.read(data.at(a));
                        }
                    }
                    env.barrier();
                }
            });
            program
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::{Machine, MachineConfig, RunOutcome};

    fn run<BuildFn: FnOnce(u32) -> ThreadedWorkload>(
        nodes: u32,
        kind: ProtocolKind,
        build: BuildFn,
    ) -> (RunOutcome, ThreadedWorkload) {
        let mut w = build(nodes);
        let mut m = Machine::new(MachineConfig::test_default(nodes), kind);
        let out = m.run(&mut w);
        (out, w)
    }

    #[test]
    fn sharing_invalidates_readers_every_round() {
        let s = Sharing {
            blocks: 4,
            rounds: 3,
        };
        let (out, w) = run(8, ProtocolKind::FullMap, |n| s.build(n));
        // 7 readers × 4 blocks × (rounds-1) writes-after-share at least.
        assert!(out.stats.invalidations >= 7 * 4 * 2);
        assert_eq!(w.value_at(3), 2 * 4 + 3);
    }

    #[test]
    fn migratory_counts_exactly() {
        let mg = Migratory {
            blocks: 3,
            rounds: 8,
        };
        let (_, w) = run(
            4,
            ProtocolKind::DirTree {
                pointers: 2,
                arity: 2,
            },
            |n| mg.build(n),
        );
        for b in 0..3 {
            assert_eq!(w.value_at(b), 8, "block {b} missed an increment");
        }
    }

    #[test]
    fn storm_forces_evictions_under_tiny_cache() {
        let st = Storm {
            words: 512,
            passes: 2,
        };
        let (out, _) = run(
            4,
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
            |n| st.build(n),
        );
        assert!(
            out.stats.evictions > 100,
            "storm failed to thrash the cache"
        );
    }

    #[test]
    fn storm_passes_verification_on_every_family() {
        // The storm's writes race intentionally (values are not compared);
        // what matters is that the coherence witness stays silent.
        let st = Storm {
            words: 256,
            passes: 2,
        };
        for kind in [
            ProtocolKind::FullMap,
            ProtocolKind::LimitedB { pointers: 2 },
            ProtocolKind::LimitLess { pointers: 2 },
            ProtocolKind::DirTree {
                pointers: 1,
                arity: 2,
            },
        ] {
            let (out, _) = run(4, kind, |n| st.build(n));
            assert!(out.stats.writes > 0, "{kind:?} made no progress");
        }
    }
}
