//! Sharing-pattern microbenchmarks for the adaptive update/invalidate
//! protocol: each workload exhibits one canonical pattern in pure form, so
//! the `adaptive_ablation` experiment can measure how close the adaptive
//! policy gets to the better static protocol on each — and how far the
//! worse static protocol falls behind.
//!
//! | workload      | pattern           | best static policy |
//! |---------------|-------------------|--------------------|
//! | [`PcPipeline`]| producer–consumer | update             |
//! | [`TokenRing`] | migratory         | invalidate         |
//! | [`Broadcast`] | read-mostly       | update             |
//! | [`FalseShare`]| write-shared      | invalidate         |

use crate::layout::Alloc;
use crate::rendezvous::{AppFn, ThreadedWorkload};

/// Producer–consumer pipeline: processor `s` publishes into buffer `s`
/// each round, and processor `s+1` consumes it. One stable writer and one
/// stable (non-migrating) reader per block: invalidation makes every
/// consume a remote miss; updates turn them all into hits.
#[derive(Clone, Copy, Debug)]
pub struct PcPipeline {
    /// Pipeline stages (buffers); capped at the processor count.
    pub buffers: u64,
    pub rounds: u64,
}

impl PcPipeline {
    pub fn shared_words(&self) -> u64 {
        self.buffers
    }

    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        let params = *self;
        let stages = self.buffers.min(nprocs as u64);
        let mut alloc = Alloc::new();
        let bufs = alloc.array(self.buffers);
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                let t = tid as u64;
                for round in 0..params.rounds {
                    if t < stages {
                        env.write(bufs.at(t), round * stages + t + 1);
                    }
                    env.barrier();
                    if t < stages {
                        // Consume the upstream stage's buffer.
                        let up = (t + stages - 1) % stages;
                        let v = env.read(bufs.at(up));
                        env.work(1 + v % 3);
                    }
                    env.barrier();
                }
            });
            program
        })
    }
}

/// Migratory token ring: each token block is read-modified-written by
/// every processor in turn. Exactly one copy is ever useful; updates to
/// the previous holders are pure waste, so invalidation wins.
#[derive(Clone, Copy, Debug)]
pub struct TokenRing {
    pub tokens: u64,
    /// Full trips of every token around the ring.
    pub laps: u64,
}

impl TokenRing {
    pub fn shared_words(&self) -> u64 {
        self.tokens
    }

    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        let params = *self;
        let mut alloc = Alloc::new();
        let toks = alloc.array(self.tokens);
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                for lap in 0..params.laps {
                    for holder in 0..nprocs as u64 {
                        if tid as u64 == holder {
                            for t in 0..params.tokens {
                                let v = env.read(toks.at(t));
                                env.write(toks.at(t), v + 1);
                            }
                        }
                        env.barrier();
                    }
                    let _ = lap;
                }
            });
            program
        })
    }
}

/// Read-mostly broadcast table: every processor re-reads the whole table
/// several times per round; a single writer refreshes it between rounds.
/// The strongest case for updates — one write wave keeps `P` copies warm.
#[derive(Clone, Copy, Debug)]
pub struct Broadcast {
    pub blocks: u64,
    pub rounds: u64,
    /// Table scans per processor per round (re-reads after the first scan
    /// hit in update mode but miss after each invalidation).
    pub scans: u64,
}

impl Broadcast {
    pub fn shared_words(&self) -> u64 {
        self.blocks
    }

    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        let params = *self;
        let mut alloc = Alloc::new();
        let table = alloc.array(self.blocks);
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                for round in 0..params.rounds {
                    if tid == 0 {
                        for b in 0..params.blocks {
                            env.write(table.at(b), round * params.blocks + b);
                        }
                    }
                    env.barrier();
                    let mut acc = 0u64;
                    for _ in 0..params.scans {
                        for b in 0..params.blocks {
                            acc = acc.wrapping_add(env.read(table.at(b)));
                        }
                    }
                    env.work(1 + acc % 3); // keep `acc` live
                    env.barrier();
                }
            });
            program
        })
    }
}

/// Write-shared stress (the update protocol's pathology): every processor
/// reads the table once — seeding `P` sharers — then writers ping-pong
/// over it with no intervening reads. An update protocol pushes every
/// write to `P` stale copies forever; invalidation pays one wave and then
/// writes locally. (With the paper's one-word blocks true false sharing
/// cannot occur, so this models the same stale-sharer cost directly.)
#[derive(Clone, Copy, Debug)]
pub struct FalseShare {
    pub blocks: u64,
    pub rounds: u64,
}

impl FalseShare {
    pub fn shared_words(&self) -> u64 {
        self.blocks
    }

    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        let params = *self;
        let mut alloc = Alloc::new();
        let data = alloc.array(self.blocks);
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                // Seed wide sharing once.
                let mut acc = 0u64;
                for b in 0..params.blocks {
                    acc = acc.wrapping_add(env.read(data.at(b)));
                }
                env.work(1 + acc % 3);
                env.barrier();
                // Then pure writer ping-pong: round r's writer rewrites the
                // whole table, nobody reads it again.
                for round in 0..params.rounds {
                    if tid as u64 == round % nprocs.min(4) as u64 {
                        for b in 0..params.blocks {
                            env.write(data.at(b), round * params.blocks + b);
                        }
                    }
                    env.barrier();
                }
            });
            program
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::{Machine, MachineConfig, RunOutcome};

    fn run(
        nodes: u32,
        kind: ProtocolKind,
        build: impl FnOnce(u32) -> ThreadedWorkload,
    ) -> RunOutcome {
        let mut w = build(nodes);
        let mut m = Machine::new(MachineConfig::test_default(nodes), kind);
        m.run(&mut w)
    }

    const KINDS: [ProtocolKind; 3] = [
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::DirTreeUpdate {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::DirTreeAdaptive {
            pointers: 4,
            arity: 2,
        },
    ];

    #[test]
    fn pipeline_runs_verified_under_all_three_policies() {
        for kind in KINDS {
            let out = run(8, kind, |n| {
                PcPipeline {
                    buffers: 8,
                    rounds: 6,
                }
                .build(n)
            });
            assert_eq!(out.stats.writes, 8 * 6, "{kind:?}");
        }
    }

    #[test]
    fn token_ring_counts_every_hop() {
        for kind in KINDS {
            let mut w = TokenRing { tokens: 3, laps: 2 }.build(4);
            let mut m = Machine::new(MachineConfig::test_default(4), kind);
            m.run(&mut w);
            for t in 0..3 {
                assert_eq!(w.value_at(t), 2 * 4, "{kind:?}: token {t} lost a hop");
            }
        }
    }

    #[test]
    fn broadcast_reads_dominate() {
        for kind in KINDS {
            let out = run(8, kind, |n| {
                Broadcast {
                    blocks: 6,
                    rounds: 4,
                    scans: 3,
                }
                .build(n)
            });
            assert!(out.stats.reads > 10 * out.stats.writes, "{kind:?}");
        }
    }

    #[test]
    fn false_share_verifies_and_update_pays_more_traffic() {
        let inv = run(8, KINDS[0], |n| {
            FalseShare {
                blocks: 6,
                rounds: 12,
            }
            .build(n)
        });
        let upd = run(8, KINDS[1], |n| {
            FalseShare {
                blocks: 6,
                rounds: 12,
            }
            .build(n)
        });
        let _ = run(8, KINDS[2], |n| {
            FalseShare {
                blocks: 6,
                rounds: 12,
            }
            .build(n)
        });
        assert!(
            upd.stats.messages > inv.stats.messages,
            "update ({}) must out-message invalidate ({}) on writer ping-pong",
            upd.stats.messages,
            inv.stats.messages
        );
    }

    #[test]
    fn adaptive_flips_where_it_should() {
        // Broadcast should push blocks to update mode; the token ring and
        // the write-shared stress should leave (or bring) them invalidate.
        let b = run(8, KINDS[2], |n| {
            Broadcast {
                blocks: 6,
                rounds: 6,
                scans: 2,
            }
            .build(n)
        });
        assert!(
            b.stats.mode_flips_to_update >= 1,
            "broadcast produced no update flips"
        );
        assert!(b.stats.pattern_read_mostly > 0);
        let t = run(8, KINDS[2], |n| TokenRing { tokens: 3, laps: 4 }.build(n));
        assert_eq!(t.stats.mode_flips_to_update, 0, "migratory must not flip");
        assert!(t.stats.pattern_migratory > 0);
    }
}
