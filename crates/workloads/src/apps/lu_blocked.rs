//! SPLASH-style *blocked* dense LU factorization (§4: "a parallel version
//! of dense blocked LU factorization without pivoting. The data structure
//! includes two dimensional arrays in which the first dimension is the
//! block to be operated on").
//!
//! The matrix is partitioned into B×B blocks, each owned by a processor
//! (2-D scatter). Step k: the owner factorizes the diagonal block; owners
//! of perimeter blocks solve against it (reading the diagonal block —
//! read-shared); owners of interior blocks update against their row/column
//! perimeter blocks (read-shared along rows and columns). This is the
//! working-set- and sharing-faithful version of the kernel; `lu.rs` keeps
//! the simpler column variant.

use crate::layout::Alloc;
use crate::rendezvous::{AppFn, ThreadedWorkload};

/// Parameters for the blocked LU workload.
#[derive(Clone, Copy, Debug)]
pub struct LuBlocked {
    /// Matrix dimension (multiple of `block`).
    pub n: u64,
    /// Block side length.
    pub block: u64,
}

impl LuBlocked {
    /// The paper's 128×128 with SPLASH's canonical 16×16 blocks.
    pub fn paper() -> Self {
        Self { n: 128, block: 16 }
    }

    fn nb(&self) -> u64 {
        self.n / self.block
    }

    /// Deterministic diagonally-dominant input.
    pub fn input(&self, i: u64, j: u64) -> f64 {
        let base = ((i * 7 + j * 13) % 17) as f64 / 17.0 - 0.5;
        if i == j {
            base + self.n as f64
        } else {
            base
        }
    }

    /// Sequential reference (identical operation order to the parallel
    /// version: unblocked elimination is arithmetic-identical to blocked
    /// elimination done in the k, i, j order used below).
    pub fn reference(&self) -> Vec<f64> {
        let n = self.n as usize;
        let mut a: Vec<f64> = (0..n * n)
            .map(|x| self.input((x / n) as u64, (x % n) as u64))
            .collect();
        for k in 0..n {
            let pivot = a[k * n + k];
            for i in k + 1..n {
                a[i * n + k] /= pivot;
            }
            for i in k + 1..n {
                let l = a[i * n + k];
                for j in k + 1..n {
                    a[i * n + j] -= l * a[k * n + j];
                }
            }
        }
        a
    }

    pub fn shared_words(&self) -> u64 {
        self.n * self.n
    }

    /// 2-D scatter ownership of blocks.
    fn owner(&self, bi: u64, bj: u64, nprocs: u64) -> u64 {
        (bi * self.nb() + bj) % nprocs
    }

    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        assert_eq!(self.n % self.block, 0, "n must be a multiple of block");
        let params = *self;
        let mut alloc = Alloc::new();
        let a = alloc.matrix(self.n, self.n);
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                let _n = params.n;
                let b = params.block;
                let nb = params.nb();
                let p = nprocs as u64;
                let me = tid as u64;
                let mine = |bi: u64, bj: u64| params.owner(bi, bj, p) == me;

                // Initialize owned blocks.
                for bi in 0..nb {
                    for bj in 0..nb {
                        if mine(bi, bj) {
                            for i in bi * b..(bi + 1) * b {
                                for j in bj * b..(bj + 1) * b {
                                    env.write_f(a.at(i, j), params.input(i, j));
                                }
                            }
                        }
                    }
                }
                env.barrier();

                for bk in 0..nb {
                    let k0 = bk * b;
                    // Phase 1: factorize the diagonal block (its owner).
                    if mine(bk, bk) {
                        for k in k0..k0 + b {
                            let pivot = env.read_f(a.at(k, k));
                            for i in k + 1..k0 + b {
                                let v = env.read_f(a.at(i, k));
                                env.write_f(a.at(i, k), v / pivot);
                            }
                            for i in k + 1..k0 + b {
                                let l = env.read_f(a.at(i, k));
                                for j in k + 1..k0 + b {
                                    let akj = env.read_f(a.at(k, j));
                                    let v = env.read_f(a.at(i, j));
                                    env.write_f(a.at(i, j), v - l * akj);
                                }
                            }
                            env.work(b / 2 + 1);
                        }
                    }
                    env.barrier();
                    // Phase 2: perimeter blocks solve against the diagonal
                    // block (read-shared by every perimeter owner).
                    for bi in bk + 1..nb {
                        if mine(bi, bk) {
                            // Column perimeter: A(bi,bk) := A(bi,bk) U⁻¹,
                            // with the division by the pivot folded in.
                            for k in k0..k0 + b {
                                let pivot = env.read_f(a.at(k, k));
                                for i in bi * b..(bi + 1) * b {
                                    let v = env.read_f(a.at(i, k));
                                    env.write_f(a.at(i, k), v / pivot);
                                }
                                for i in bi * b..(bi + 1) * b {
                                    let l = env.read_f(a.at(i, k));
                                    for j in k + 1..k0 + b {
                                        let akj = env.read_f(a.at(k, j));
                                        let v = env.read_f(a.at(i, j));
                                        env.write_f(a.at(i, j), v - l * akj);
                                    }
                                }
                            }
                            env.work(b + 1);
                        }
                        if mine(bk, bi) {
                            // Row perimeter: A(bk,bi) := L⁻¹ A(bk,bi).
                            for k in k0..k0 + b {
                                for i in k + 1..k0 + b {
                                    let l = env.read_f(a.at(i, k));
                                    for j in bi * b..(bi + 1) * b {
                                        let akj = env.read_f(a.at(k, j));
                                        let v = env.read_f(a.at(i, j));
                                        env.write_f(a.at(i, j), v - l * akj);
                                    }
                                }
                            }
                            env.work(b + 1);
                        }
                    }
                    env.barrier();
                    // Phase 3: interior update — each interior owner reads
                    // its row and column perimeter blocks (read-shared).
                    for bi in bk + 1..nb {
                        for bj in bk + 1..nb {
                            if mine(bi, bj) {
                                for k in k0..k0 + b {
                                    for i in bi * b..(bi + 1) * b {
                                        let l = env.read_f(a.at(i, k));
                                        for j in bj * b..(bj + 1) * b {
                                            let akj = env.read_f(a.at(k, j));
                                            let v = env.read_f(a.at(i, j));
                                            env.write_f(a.at(i, j), v - l * akj);
                                        }
                                    }
                                }
                                env.work(b + 1);
                            }
                        }
                    }
                    env.barrier();
                }
            });
            program
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::w2f;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::{Machine, MachineConfig};

    fn run(params: LuBlocked, nodes: u32, kind: ProtocolKind) -> Vec<f64> {
        let mut w = params.build(nodes);
        let mut m = Machine::new(MachineConfig::test_default(nodes), kind);
        m.run(&mut w);
        w.values().iter().map(|&v| w2f(v)).collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= 1e-8 * (1.0 + y.abs()),
                "element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_sequential_reference_fullmap() {
        let p = LuBlocked { n: 12, block: 4 };
        assert_close(&run(p, 4, ProtocolKind::FullMap), &p.reference());
    }

    #[test]
    fn matches_sequential_reference_dirtree() {
        let p = LuBlocked { n: 12, block: 4 };
        assert_close(
            &run(
                p,
                4,
                ProtocolKind::DirTree {
                    pointers: 4,
                    arity: 2,
                },
            ),
            &p.reference(),
        );
    }

    #[test]
    fn blocked_and_unblocked_references_agree() {
        let blocked = LuBlocked { n: 16, block: 4 };
        let plain = crate::apps::lu::Lu { n: 16 };
        // Same input function => same factorization.
        for i in 0..16u64 {
            for j in 0..16u64 {
                assert_eq!(blocked.input(i, j), plain.input(i, j));
            }
        }
        let a = blocked.reference();
        let b = plain.reference();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn single_block_degenerates_to_sequential() {
        let p = LuBlocked { n: 8, block: 8 };
        assert_close(&run(p, 2, ProtocolKind::FullMap), &p.reference());
    }
}
