//! Dense LU factorization without pivoting (§4 of the paper, after the
//! SPLASH LU kernel; the paper uses a 128×128 matrix).
//!
//! Columns are interleaved across processors (owner-computes). At step
//! `k` the owner of column `k` scales the subcolumn, then every processor
//! reads that pivot column to update its own columns — the pivot column is
//! the read-shared hot data.

use crate::layout::Alloc;
use crate::rendezvous::{AppFn, ThreadedWorkload};

/// Parameters for the LU workload.
#[derive(Clone, Copy, Debug)]
pub struct Lu {
    pub n: u64,
}

impl Lu {
    /// The paper's configuration (128×128). Large for unit tests; the
    /// figure harness uses it in release builds.
    pub fn paper() -> Self {
        Self { n: 128 }
    }

    /// Deterministic diagonally-dominant input matrix.
    pub fn input(&self, i: u64, j: u64) -> f64 {
        let n = self.n as f64;
        let base = ((i * 7 + j * 13) % 17) as f64 / 17.0 - 0.5;
        if i == j {
            base + n
        } else {
            base
        }
    }

    /// Sequential in-place LU (no pivoting): returns the factored matrix
    /// (L below the diagonal, U on and above).
    pub fn reference(&self) -> Vec<f64> {
        let n = self.n as usize;
        let mut a: Vec<f64> = (0..n * n)
            .map(|x| self.input((x / n) as u64, (x % n) as u64))
            .collect();
        for k in 0..n {
            let pivot = a[k * n + k];
            for i in k + 1..n {
                a[i * n + k] /= pivot;
            }
            for j in k + 1..n {
                let akj = a[k * n + j];
                for i in k + 1..n {
                    let l = a[i * n + k];
                    a[i * n + j] -= l * akj;
                }
            }
        }
        a
    }

    pub fn shared_words(&self) -> u64 {
        self.n * self.n
    }

    /// Build the execution-driven workload (column-interleaved ownership).
    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        let params = *self;
        let mut alloc = Alloc::new();
        let a = alloc.matrix(self.n, self.n);
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                let n = params.n;
                let p = nprocs as u64;
                let me = tid as u64;
                let mine = |col: u64| col % p == me;

                // Initialize owned columns.
                for j in (0..n).filter(|&j| mine(j)) {
                    for i in 0..n {
                        env.write_f(a.at(i, j), params.input(i, j));
                    }
                }
                env.barrier();

                for k in 0..n {
                    if mine(k) {
                        // Scale the pivot subcolumn.
                        let pivot = env.read_f(a.at(k, k));
                        for i in k + 1..n {
                            let v = env.read_f(a.at(i, k));
                            env.write_f(a.at(i, k), v / pivot);
                        }
                    }
                    env.barrier();
                    // Everyone reads the pivot column once (read-shared),
                    // then updates its own trailing columns.
                    let owned_trailing: Vec<u64> = (k + 1..n).filter(|&j| mine(j)).collect();
                    if !owned_trailing.is_empty() {
                        let mut col_k = Vec::with_capacity((n - k - 1) as usize);
                        for i in k + 1..n {
                            col_k.push(env.read_f(a.at(i, k)));
                        }
                        for &j in &owned_trailing {
                            let akj = env.read_f(a.at(k, j));
                            for i in k + 1..n {
                                let aij = env.read_f(a.at(i, j));
                                env.write_f(a.at(i, j), aij - col_k[(i - k - 1) as usize] * akj);
                            }
                            env.work((n - k) / 8 + 1);
                        }
                    }
                    env.barrier();
                }
            });
            program
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::w2f;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::{Machine, MachineConfig};

    fn run(params: Lu, nodes: u32, kind: ProtocolKind) -> Vec<f64> {
        let mut w = params.build(nodes);
        let mut m = Machine::new(MachineConfig::test_default(nodes), kind);
        m.run(&mut w);
        w.values().iter().map(|&v| w2f(v)).collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + y.abs()),
                "element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_sequential_reference_fullmap() {
        let p = Lu { n: 12 };
        assert_close(&run(p, 4, ProtocolKind::FullMap), &p.reference());
    }

    #[test]
    fn matches_sequential_reference_dirtree() {
        let p = Lu { n: 12 };
        assert_close(
            &run(
                p,
                4,
                ProtocolKind::DirTree {
                    pointers: 2,
                    arity: 2,
                },
            ),
            &p.reference(),
        );
    }

    #[test]
    fn factorization_reconstructs_input() {
        // Multiply L*U back and compare to the input matrix.
        let p = Lu { n: 10 };
        let n = p.n as usize;
        let lu = p.reference();
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * n + k] };
                    sum += l * lu[k * n + j];
                }
                let want = p.input(i as u64, j as u64);
                assert!(
                    (sum - want).abs() < 1e-8 * (1.0 + want.abs()),
                    "A[{i}][{j}] = {want}, L·U = {sum}"
                );
            }
        }
    }

    #[test]
    fn single_processor_degenerate_case() {
        let p = Lu { n: 8 };
        assert_close(&run(p, 2, ProtocolKind::FullMap), &p.reference());
    }
}
